//! The one-round Prisoner's Dilemma and the 5-bit single-round-memory
//! strategy.

use ahn_bitstr::BitStr;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A move in the Prisoner's Dilemma.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Move {
    /// Defect (`D`).
    Defect,
    /// Cooperate (`C`).
    Cooperate,
}

impl Move {
    /// Builds from a strategy bit (1 = cooperate).
    #[inline]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Move::Cooperate
        } else {
            Move::Defect
        }
    }
}

/// PD payoff matrix; must satisfy `T > R > P > S` and `2R > T + S`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PdPayoffs {
    /// Temptation (defect vs cooperator).
    pub t: f64,
    /// Reward (mutual cooperation).
    pub r: f64,
    /// Punishment (mutual defection).
    pub p: f64,
    /// Sucker (cooperate vs defector).
    pub s: f64,
}

impl Default for PdPayoffs {
    fn default() -> Self {
        // The canonical Axelrod values.
        PdPayoffs {
            t: 5.0,
            r: 3.0,
            p: 1.0,
            s: 0.0,
        }
    }
}

impl PdPayoffs {
    /// Checks the dilemma conditions.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.t > self.r && self.r > self.p && self.p > self.s) {
            return Err(format!("need T > R > P > S, got {self:?}"));
        }
        if 2.0 * self.r <= self.t + self.s {
            return Err("need 2R > T + S (alternation must not beat cooperation)".into());
        }
        Ok(())
    }
}

/// Payoffs `(mine, theirs)` for one round.
pub fn payoff(payoffs: &PdPayoffs, mine: Move, theirs: Move) -> (f64, f64) {
    match (mine, theirs) {
        (Move::Cooperate, Move::Cooperate) => (payoffs.r, payoffs.r),
        (Move::Cooperate, Move::Defect) => (payoffs.s, payoffs.t),
        (Move::Defect, Move::Cooperate) => (payoffs.t, payoffs.s),
        (Move::Defect, Move::Defect) => (payoffs.p, payoffs.p),
    }
}

/// A 5-bit single-round-memory strategy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IpdrpStrategy {
    bits: BitStr,
}

/// Number of bits in an IPDRP strategy.
pub const IPDRP_BITS: usize = 5;

impl IpdrpStrategy {
    /// Wraps a 5-bit genome.
    ///
    /// # Panics
    /// Panics unless `bits.len() == 5`.
    pub fn from_bits(bits: BitStr) -> Self {
        assert_eq!(bits.len(), IPDRP_BITS, "an IPDRP strategy has 5 bits");
        IpdrpStrategy { bits }
    }

    /// A uniformly random strategy.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        IpdrpStrategy::from_bits(BitStr::random(rng, IPDRP_BITS))
    }

    /// Tit-for-Tat: cooperate first, then mirror the opponent.
    pub fn tit_for_tat() -> Self {
        "11010".parse().unwrap()
    }

    /// Always cooperate.
    pub fn all_c() -> Self {
        IpdrpStrategy::from_bits(BitStr::ones(IPDRP_BITS))
    }

    /// Always defect.
    pub fn all_d() -> Self {
        IpdrpStrategy::from_bits(BitStr::zeros(IPDRP_BITS))
    }

    /// The underlying genome.
    pub fn bits(&self) -> &BitStr {
        &self.bits
    }

    /// First-round move (bit 0).
    pub fn first_move(&self) -> Move {
        Move::from_bit(self.bits.get(0))
    }

    /// Move given the previous round's outcome.
    pub fn next_move(&self, my_last: Move, their_last: Move) -> Move {
        // Bits 1-4 cover (mine, theirs) = CC, CD, DC, DD.
        let idx = match (my_last, their_last) {
            (Move::Cooperate, Move::Cooperate) => 1,
            (Move::Cooperate, Move::Defect) => 2,
            (Move::Defect, Move::Cooperate) => 3,
            (Move::Defect, Move::Defect) => 4,
        };
        Move::from_bit(self.bits.get(idx))
    }

    /// Move given an optional memory (first round = `None`).
    pub fn decide(&self, memory: Option<(Move, Move)>) -> Move {
        match memory {
            None => self.first_move(),
            Some((m, t)) => self.next_move(m, t),
        }
    }
}

impl std::str::FromStr for IpdrpStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bits: BitStr = s.parse().map_err(|e| format!("{e}"))?;
        if bits.len() != IPDRP_BITS {
            return Err(format!(
                "an IPDRP strategy needs 5 bits, got {}",
                bits.len()
            ));
        }
        Ok(IpdrpStrategy::from_bits(bits))
    }
}

impl std::fmt::Display for IpdrpStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.bits.get(0) as u8, {
            let mut s = String::new();
            for i in 1..5 {
                s.push(if self.bits.get(i) { '1' } else { '0' });
            }
            s
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_payoffs_form_a_dilemma() {
        PdPayoffs::default().validate().unwrap();
    }

    #[test]
    fn degenerate_payoffs_are_rejected() {
        let bad = PdPayoffs {
            t: 1.0,
            r: 3.0,
            p: 1.0,
            s: 0.0,
        };
        assert!(bad.validate().is_err());
        let alternation = PdPayoffs {
            t: 6.0,
            r: 3.0,
            p: 1.0,
            s: 0.0,
        };
        assert!(alternation.validate().is_err());
    }

    #[test]
    fn payoff_matrix_cells() {
        let p = PdPayoffs::default();
        assert_eq!(payoff(&p, Move::Cooperate, Move::Cooperate), (3.0, 3.0));
        assert_eq!(payoff(&p, Move::Cooperate, Move::Defect), (0.0, 5.0));
        assert_eq!(payoff(&p, Move::Defect, Move::Cooperate), (5.0, 0.0));
        assert_eq!(payoff(&p, Move::Defect, Move::Defect), (1.0, 1.0));
    }

    #[test]
    fn tit_for_tat_behavior() {
        let tft = IpdrpStrategy::tit_for_tat();
        assert_eq!(tft.first_move(), Move::Cooperate);
        assert_eq!(
            tft.next_move(Move::Cooperate, Move::Cooperate),
            Move::Cooperate
        );
        assert_eq!(tft.next_move(Move::Cooperate, Move::Defect), Move::Defect);
        assert_eq!(
            tft.next_move(Move::Defect, Move::Cooperate),
            Move::Cooperate
        );
        assert_eq!(tft.next_move(Move::Defect, Move::Defect), Move::Defect);
    }

    #[test]
    fn all_c_and_all_d() {
        for memory in [
            None,
            Some((Move::Cooperate, Move::Defect)),
            Some((Move::Defect, Move::Defect)),
        ] {
            assert_eq!(IpdrpStrategy::all_c().decide(memory), Move::Cooperate);
            assert_eq!(IpdrpStrategy::all_d().decide(memory), Move::Defect);
        }
    }

    #[test]
    fn parse_display_roundtrip() {
        let s: IpdrpStrategy = "10110".parse().unwrap();
        assert_eq!(s.to_string(), "1 0110");
        assert!("101".parse::<IpdrpStrategy>().is_err());
        assert!("1011x".parse::<IpdrpStrategy>().is_err());
    }

    #[test]
    #[should_panic(expected = "5 bits")]
    fn wrong_width_panics() {
        let _ = IpdrpStrategy::from_bits(BitStr::zeros(13));
    }
}
