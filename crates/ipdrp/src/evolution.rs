//! Evolution of IPDRP populations (experiment X3).
//!
//! Each generation: every player is randomly paired `rounds` times; each
//! pairing plays one PD round with single-round memory (players remember
//! only their own previous encounter, which — under random pairing — was
//! almost surely against someone else). Fitness is the average payoff
//! per round. The GA uses roulette selection as in the reference \[12\].

use crate::game::{payoff, IpdrpStrategy, Move, PdPayoffs, IPDRP_BITS};
use ahn_bitstr::BitStr;
use ahn_ga::{next_generation, GaParams, GenStats, Selection};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// IPDRP experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpdrpConfig {
    /// Population size (must be even for pairing).
    pub population: usize,
    /// Pairing rounds per generation.
    pub rounds: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Payoff matrix.
    pub payoffs: PdPayoffs,
    /// GA parameters (reference \[12\] uses roulette selection).
    pub ga: GaParams,
}

impl Default for IpdrpConfig {
    fn default() -> Self {
        IpdrpConfig {
            population: 100,
            rounds: 100,
            generations: 100,
            payoffs: PdPayoffs::default(),
            ga: GaParams {
                selection: Selection::Roulette,
                ..GaParams::paper()
            },
        }
    }
}

/// Per-generation record of an IPDRP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpdrpGeneration {
    /// Generation index.
    pub generation: usize,
    /// Fraction of moves that were Cooperate this generation.
    pub cooperation: f64,
    /// Fitness statistics.
    pub stats: GenStats,
}

/// Runs one IPDRP evolution, returning one record per generation.
///
/// # Panics
/// Panics unless the population is even and ≥ 2 and the payoff matrix is
/// a valid dilemma.
pub fn run_ipdrp<R: Rng + ?Sized>(rng: &mut R, config: &IpdrpConfig) -> Vec<IpdrpGeneration> {
    assert!(
        config.population >= 2 && config.population.is_multiple_of(2),
        "random pairing needs an even population of at least 2"
    );
    config.payoffs.validate().expect("invalid PD payoffs");

    let mut population: Vec<BitStr> = (0..config.population)
        .map(|_| BitStr::random(rng, IPDRP_BITS))
        .collect();
    let mut history = Vec::with_capacity(config.generations);
    let mut order: Vec<usize> = (0..config.population).collect();

    for generation in 0..config.generations {
        let strategies: Vec<IpdrpStrategy> = population
            .iter()
            .map(|b| IpdrpStrategy::from_bits(b.clone()))
            .collect();
        let mut totals = vec![0.0f64; config.population];
        let mut memory: Vec<Option<(Move, Move)>> = vec![None; config.population];
        let mut cooperations = 0u64;
        let mut moves = 0u64;

        for _round in 0..config.rounds {
            order.shuffle(rng);
            for pair in order.chunks_exact(2) {
                let (a, b) = (pair[0], pair[1]);
                let move_a = strategies[a].decide(memory[a]);
                let move_b = strategies[b].decide(memory[b]);
                let (pa, pb) = payoff(&config.payoffs, move_a, move_b);
                totals[a] += pa;
                totals[b] += pb;
                memory[a] = Some((move_a, move_b));
                memory[b] = Some((move_b, move_a));
                cooperations += (move_a == Move::Cooperate) as u64;
                cooperations += (move_b == Move::Cooperate) as u64;
                moves += 2;
            }
        }

        let fitnesses: Vec<f64> = totals.iter().map(|t| t / config.rounds as f64).collect();
        history.push(IpdrpGeneration {
            generation,
            cooperation: cooperations as f64 / moves as f64,
            stats: GenStats::from_fitnesses(&fitnesses),
        });
        if generation + 1 < config.generations {
            population = next_generation(rng, &config.ga, &population, &fitnesses);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn small(generations: usize) -> IpdrpConfig {
        IpdrpConfig {
            population: 20,
            rounds: 30,
            generations,
            ..IpdrpConfig::default()
        }
    }

    #[test]
    fn produces_one_record_per_generation() {
        let h = run_ipdrp(&mut rng(0), &small(12));
        assert_eq!(h.len(), 12);
        for (i, g) in h.iter().enumerate() {
            assert_eq!(g.generation, i);
            assert!((0.0..=1.0).contains(&g.cooperation));
            // Fitness is bounded by the payoff matrix.
            assert!(g.stats.best <= 5.0 && g.stats.worst >= 0.0);
        }
    }

    #[test]
    fn defection_pressure_under_random_pairing() {
        // Namikawa & Ishibuchi's headline observation: under purely
        // random pairing with single-round memory, reciprocity cannot be
        // targeted at the defector, so cooperation collapses well below
        // the initial ~50%.
        let h = run_ipdrp(
            &mut rng(1),
            &IpdrpConfig {
                population: 60,
                rounds: 60,
                generations: 60,
                ..IpdrpConfig::default()
            },
        );
        let first = h.first().unwrap().cooperation;
        let last = h.last().unwrap().cooperation;
        assert!(first > 0.3, "random start should be mixed, got {first}");
        assert!(
            last < first * 0.6,
            "cooperation should collapse: {first} -> {last}"
        );
    }

    #[test]
    fn mean_fitness_approaches_punishment_when_defection_wins() {
        let h = run_ipdrp(
            &mut rng(2),
            &IpdrpConfig {
                population: 40,
                rounds: 40,
                generations: 80,
                ..IpdrpConfig::default()
            },
        );
        let last = h.last().unwrap();
        assert!(
            last.stats.mean < 2.0,
            "defecting population should earn near P=1, got {}",
            last.stats.mean
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_ipdrp(&mut rng(3), &small(5));
        let b = run_ipdrp(&mut rng(3), &small(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "even population")]
    fn odd_population_panics() {
        let cfg = IpdrpConfig {
            population: 7,
            ..small(2)
        };
        run_ipdrp(&mut rng(4), &cfg);
    }
}
