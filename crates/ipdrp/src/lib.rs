//! The Iterated Prisoner's Dilemma under Random Pairing (IPDRP).
//!
//! This is the model of Namikawa & Ishibuchi (CEC'05), the paper's
//! reference \[12\]: "each player plays against a different randomly chosen
//! opponent at every round. Each player has a single round memory
//! strategy represented by a binary string of the length five." The
//! paper's evolutionary setup is explicitly "similar ... as in IPDRP
//! except that we use a tournament selection instead of a roulette one"
//! (§5), so this crate doubles as a validation target for the GA engine
//! and as the conceptual baseline (experiment X3 in DESIGN.md).
//!
//! Strategy encoding (5 bits):
//!
//! * bit 0 — the move of the very first round (1 = cooperate);
//! * bits 1–4 — the move given the previous round's outcome
//!   `(my move, opponent move)` ∈ {CC, CD, DC, DD} in that order.
//!
//! Classic strategies are expressible: Tit-for-Tat is `1 1010`
//! (cooperate first; repeat the opponent's last move), Always-Defect is
//! `0 0000`.

#![deny(missing_docs)]

pub mod evolution;
pub mod game;

pub use evolution::{run_ipdrp, IpdrpConfig, IpdrpGeneration};
pub use game::{payoff, IpdrpStrategy, Move, PdPayoffs};
