//! Property and stress tests for [`ahn_obs::AtomicHistogram`]: merge
//! order and thread count must never change bucket totals or reported
//! percentiles, and percentiles must respect the log2 error bound.

use ahn_obs::{AtomicHistogram, HistogramSnapshot};
use proptest::prelude::*;

/// The reference readout: record everything into one histogram,
/// single-threaded, in the given order.
fn direct_snapshot(values: &[u64]) -> HistogramSnapshot {
    let h = AtomicHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The exact `q`-quantile of `values` (the rank-`ceil(q*n)` order
/// statistic), for bounding the histogram's bucketed answer.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    // Sharding values across any number of histograms, with shards and
    // merges in any order, reads back identical to one serial pass.
    #[test]
    fn merge_order_and_sharding_never_change_the_snapshot(
        values in proptest::collection::vec(0u64..1_000_000, 1..300),
        shards in 1usize..6,
        rotate in 0usize..300,
    ) {
        let parts: Vec<AtomicHistogram> =
            (0..shards).map(|_| AtomicHistogram::new()).collect();
        // Deal values round-robin starting at an arbitrary offset, so
        // shard contents shift with `rotate`.
        for (i, &v) in values.iter().enumerate() {
            parts[(i + rotate) % shards].record(v);
        }
        // Merge in rotated order into a fresh histogram.
        let merged = AtomicHistogram::new();
        for i in 0..shards {
            merged.merge_from(&parts[(i + rotate) % shards]);
        }
        prop_assert_eq!(merged.snapshot(), direct_snapshot(&values));
    }

    // Reported percentiles never undershoot the exact order statistic,
    // never exceed twice it (log2 buckets), and never exceed the max.
    #[test]
    fn percentiles_respect_the_log2_error_bound(
        values in proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let snapshot = direct_snapshot(&values);
        for (q, reported) in [(0.50, snapshot.p50), (0.90, snapshot.p90), (0.99, snapshot.p99)] {
            let exact = exact_quantile(&values, q);
            prop_assert!(reported >= exact,
                "q={q}: reported {reported} < exact {exact}");
            prop_assert!(reported <= (2 * exact.max(1)).min(snapshot.max),
                "q={q}: reported {reported} breaks the 2x bound on exact {exact}");
        }
        prop_assert_eq!(snapshot.max, *values.iter().max().unwrap());
        prop_assert_eq!(snapshot.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snapshot.count, values.len() as u64);
        prop_assert!(snapshot.p50 <= snapshot.p90 && snapshot.p90 <= snapshot.p99);
    }

    // The full-distribution dump always accounts for every record.
    #[test]
    fn bucket_dump_totals_match_the_count(
        values in proptest::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let snapshot = direct_snapshot(&values);
        let bucket_total: u64 = snapshot.buckets.iter().map(|b| b.count).sum();
        prop_assert_eq!(bucket_total, snapshot.count);
        // Bounds are strictly increasing (buckets come out in order).
        for pair in snapshot.buckets.windows(2) {
            prop_assert!(pair[0].le < pair[1].le);
        }
    }
}

/// Concurrent-record stress: eight threads hammering one histogram
/// must read back exactly like one thread recording the same multiset.
#[test]
fn concurrent_records_match_a_serial_pass() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    let shared = AtomicHistogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = &shared;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // A deterministic spread over several decades.
                    shared.record((t * PER_THREAD + i) % 100_000);
                }
            });
        }
    });
    let serial = AtomicHistogram::new();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            serial.record((t * PER_THREAD + i) % 100_000);
        }
    }
    assert_eq!(shared.snapshot(), serial.snapshot());
    assert_eq!(shared.count(), THREADS * PER_THREAD);
}
