//! Structured trace spans: a checksummed JSON-lines event log plus the
//! joiner that reconstructs one cell's cross-node lifecycle from any
//! set of log files.
//!
//! Every process in a distributed run can carry its own trace file
//! (`serve --trace`, `worker --trace`, `ahn-exp sweep --trace`). Each
//! appended line is independently verifiable — the same
//! `<fnv1a-64 hex> <compact JSON>` discipline as the completion
//! journal — so a SIGKILLed writer corrupts at most its torn tail, and
//! [`read_trace`] skips invalid lines instead of aborting (trace events
//! are independent records, unlike journal state, so a mid-file skip is
//! safe).
//!
//! Cross-node correlation rides on a `trace_id` minted once per
//! submission/cell and propagated through the claim/complete protocol:
//! the server derives it from the cell's cache key via
//! [`trace_id_of_key`] (a pure function, so a resumed server and the
//! coordinator agree on the id without coordination), hands it to
//! workers inside the work grant, and workers echo it back with the
//! completion and tag their own compute/retry spans with it.
//! `trace_id == 0` marks node-local events with no cell context (e.g.
//! a worker backing off before it holds a lease); the joiner reports
//! them separately instead of flagging them as orphans.
//!
//! ## Span vocabulary
//!
//! | span | node | meaning |
//! |------|------|---------|
//! | `submit` | server, coordinator | a submission arrived / was sent |
//! | `enqueue` | server | a new job entered the queue |
//! | `coalesce` | server | a duplicate submission joined an in-flight job |
//! | `lease` | server | a work claim leased the job out |
//! | `claim` | worker | the worker received the grant (dur = claim RTT) |
//! | `compute` | worker, server | one `run_job` execution (dur, ok) |
//! | `deliver` | worker | the completion was acknowledged |
//! | `retry` | worker | a transport error triggered a backoff sleep |
//! | `breaker_open` | worker | the circuit breaker tripped open |
//! | `complete` | server | a completion was accepted (ok = result vs error) |
//! | `duplicate` | server | a completion lost the first-completion race |
//! | `merge` | coordinator | the cell folded into the merged report |
//! | `cell_start`/`cell_done` | local runs | one sweep cell's lifecycle |
//! | `generation` | local runs | one hot-loop generation (coop + phase timings) |

use crate::recorder::GenSample;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// SplitMix64 — the same mixer the fault harness uses, duplicated here
/// so this crate stays dependency-free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mints the trace id for a cell from its result-cache key. Pure and
/// stable: every process that knows the key (server, resumed server,
/// coordinator) derives the same id, and workers just echo the one in
/// their grant. Never returns 0 (the "no cell context" sentinel).
pub fn trace_id_of_key(key: u64) -> u64 {
    splitmix64(key ^ 0x0B5E_55AB_1E5E_ED07).max(1)
}

/// FNV-1a 64 over raw bytes — same family as the journal's checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One trace record. Field meaning depends on `span` (see the module
/// docs); absent options simply don't apply to that span kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cell correlation id (0 = node-local, no cell context).
    pub trace_id: u64,
    /// Span kind, from the vocabulary in the module docs.
    pub span: String,
    /// Emitting node, e.g. `serve:127.0.0.1:7191` or `worker:4411`.
    pub node: String,
    /// Per-writer sequence number: a total order within one file.
    pub seq: u64,
    /// Wall-clock microseconds since the Unix epoch (ordering hint for
    /// cross-file rendering only; never used for correctness).
    pub ts_us: u64,
    /// Span duration in microseconds, where one is measurable.
    pub dur_us: Option<u64>,
    /// Server job id.
    pub job_id: Option<u64>,
    /// Work lease id (links a worker's spans to the server's lease).
    pub lease_id: Option<u64>,
    /// Result-cache key of the cell.
    pub key: Option<u64>,
    /// Generation index (`generation` spans).
    pub generation: Option<u64>,
    /// Cooperation level of that generation (`generation` spans).
    pub cooperation: Option<f64>,
    /// Success flag, where the span has an outcome.
    pub ok: Option<bool>,
    /// Free-form context (error text, cell spec, ...).
    pub detail: Option<String>,
}

impl TraceEvent {
    /// A bare event; `node`, `seq` and `ts_us` are stamped by
    /// [`TraceLog::emit`].
    pub fn new(trace_id: u64, span: &str) -> TraceEvent {
        TraceEvent {
            trace_id,
            span: span.to_owned(),
            node: String::new(),
            seq: 0,
            ts_us: 0,
            dur_us: None,
            job_id: None,
            lease_id: None,
            key: None,
            generation: None,
            cooperation: None,
            ok: None,
            detail: None,
        }
    }

    /// Sets the server job id.
    pub fn job(mut self, job_id: u64) -> TraceEvent {
        self.job_id = Some(job_id);
        self
    }

    /// Sets the lease id.
    pub fn lease(mut self, lease_id: u64) -> TraceEvent {
        self.lease_id = Some(lease_id);
        self
    }

    /// Sets the result-cache key.
    pub fn key(mut self, key: u64) -> TraceEvent {
        self.key = Some(key);
        self
    }

    /// Sets the span duration in microseconds.
    pub fn dur_us(mut self, dur_us: u64) -> TraceEvent {
        self.dur_us = Some(dur_us);
        self
    }

    /// Sets the outcome flag.
    pub fn outcome(mut self, ok: bool) -> TraceEvent {
        self.ok = Some(ok);
        self
    }

    /// Attaches one hot-loop generation sample (index, cooperation and
    /// the three phase timings folded into `dur_us`).
    pub fn sample(mut self, s: &GenSample) -> TraceEvent {
        self.generation = Some(s.generation);
        self.cooperation = Some(s.cooperation);
        self.dur_us = Some((s.schedule_ns + s.play_ns + s.evolve_ns) / 1_000);
        self.detail = Some(format!(
            "schedule_ns={} play_ns={} evolve_ns={}",
            s.schedule_ns, s.play_ns, s.evolve_ns
        ));
        self
    }

    /// Attaches free-form context.
    pub fn detail(mut self, detail: String) -> TraceEvent {
        self.detail = Some(detail);
        self
    }
}

/// Encodes one event as its checksummed log line (terminator included).
pub fn encode_event(event: &TraceEvent) -> String {
    let payload = serde_json::to_string(event).expect("trace events always serialize");
    format!("{:016x} {payload}\n", fnv1a64(payload.as_bytes()))
}

/// Decodes one log line (without its terminator); `None` marks a torn
/// or corrupted record.
pub fn decode_event(line: &str) -> Option<TraceEvent> {
    let (checksum_hex, payload) = line.split_once(' ')?;
    if checksum_hex.len() != 16 {
        return None;
    }
    let checksum = u64::from_str_radix(checksum_hex, 16).ok()?;
    if checksum != fnv1a64(payload.as_bytes()) {
        return None;
    }
    serde_json::from_str(payload).ok()
}

struct TraceLogInner {
    file: File,
    seq: u64,
}

/// An open trace appender: shared by reference across threads, one
/// checksummed line per [`TraceLog::emit`], flushed per event so a
/// dying process loses at most its torn tail.
pub struct TraceLog {
    node: String,
    inner: Mutex<TraceLogInner>,
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("node", &self.node)
            .finish()
    }
}

impl TraceLog {
    /// Opens (creating if needed) the trace log at `path`, stamping
    /// every event with `node` as its origin.
    pub fn open(path: &Path, node: &str) -> std::io::Result<TraceLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(TraceLog {
            node: node.to_owned(),
            inner: Mutex::new(TraceLogInner { file, seq: 0 }),
        })
    }

    /// The node name this log stamps on its events.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Stamps `event` with this log's node, the next sequence number
    /// and the wall clock, then appends and flushes it. Best-effort by
    /// design: telemetry I/O errors are swallowed — tracing must never
    /// take down the serving path.
    pub fn emit(&self, mut event: TraceEvent) {
        event.node = self.node.clone();
        event.ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_micros() as u64;
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        event.seq = inner.seq;
        inner.seq += 1;
        let line = encode_event(&event);
        let _ = inner
            .file
            .write_all(line.as_bytes())
            .and_then(|()| inner.file.flush());
    }
}

/// What [`read_trace`] recovered from one log file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceRead {
    /// The valid events, in file order.
    pub events: Vec<TraceEvent>,
    /// Lines that failed the checksum or the parse (torn tails,
    /// corruption) — skipped, not fatal.
    pub discarded: usize,
}

/// Reads one trace file, skipping corrupted lines. A missing file is an
/// empty trace, not an error (a worker killed before its first event
/// may never have created its file).
pub fn read_trace(path: &Path) -> std::io::Result<TraceRead> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(TraceRead::default()),
        Err(e) => return Err(e),
    };
    let mut out = TraceRead::default();
    for line in BufReader::new(file).lines() {
        let line = line?;
        match decode_event(&line) {
            Some(event) => out.events.push(event),
            None if line.is_empty() => {}
            None => out.discarded += 1,
        }
    }
    Ok(out)
}

/// One cell's joined lifecycle across every log it appears in.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTrace {
    /// The correlation id shared by all of this cell's spans.
    pub trace_id: u64,
    /// The cell's cache key, if any span carried it.
    pub key: Option<u64>,
    /// All spans of the cell, ordered by (timestamp, node, seq).
    pub events: Vec<TraceEvent>,
    /// The cell has a root span (`submit`/`enqueue`/`cell_start`) *and*
    /// a successful terminal span (`complete`/`cell_done`/`merge` not
    /// marked failed).
    pub complete: bool,
    /// The cell has lifecycle spans but no root: its spans are orphans
    /// (a log file is missing from the join, or propagation broke).
    pub orphaned: bool,
}

/// The joined view of one or more trace files.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceTree {
    /// Per-cell lifecycles, ordered by first timestamp.
    pub cells: Vec<CellTrace>,
    /// Events with `trace_id == 0` (node-local, no cell context).
    pub node_events: usize,
    /// Total spans belonging to orphaned cells.
    pub orphan_spans: usize,
    /// Lines discarded while reading the input files.
    pub discarded: usize,
}

impl TraceTree {
    /// Number of complete cells.
    pub fn complete_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.complete).count()
    }
}

fn is_root(span: &str) -> bool {
    matches!(span, "submit" | "enqueue" | "cell_start")
}

fn is_success_terminal(event: &TraceEvent) -> bool {
    matches!(event.span.as_str(), "complete" | "cell_done" | "merge") && event.ok != Some(false)
}

/// Joins events (from any number of files) into per-cell span trees,
/// flagging cells whose spans have no root as orphaned.
pub fn join_traces(events: Vec<TraceEvent>, discarded: usize) -> TraceTree {
    let mut by_cell: std::collections::BTreeMap<u64, Vec<TraceEvent>> =
        std::collections::BTreeMap::new();
    let mut node_events = 0usize;
    for event in events {
        if event.trace_id == 0 {
            node_events += 1;
            continue;
        }
        by_cell.entry(event.trace_id).or_default().push(event);
    }
    let mut cells: Vec<CellTrace> = by_cell
        .into_iter()
        .map(|(trace_id, mut events)| {
            events.sort_by(|a, b| (a.ts_us, &a.node, a.seq).cmp(&(b.ts_us, &b.node, b.seq)));
            let has_root = events.iter().any(|e| is_root(&e.span));
            let has_success = events.iter().any(is_success_terminal);
            CellTrace {
                trace_id,
                key: events.iter().find_map(|e| e.key),
                complete: has_root && has_success,
                orphaned: !has_root,
                events,
            }
        })
        .collect();
    cells.sort_by_key(|c| c.events.first().map(|e| e.ts_us).unwrap_or(0));
    let orphan_spans = cells
        .iter()
        .filter(|c| c.orphaned)
        .map(|c| c.events.len())
        .sum();
    TraceTree {
        cells,
        node_events,
        orphan_spans,
        discarded,
    }
}

/// Pretty-prints the joined tree: one block per cell, spans indented
/// under their lease where they carry one, timestamps relative to the
/// cell's first span, plus a final machine-greppable summary line.
pub fn render_tree(tree: &TraceTree) -> String {
    let mut out = String::new();
    for cell in &tree.cells {
        let status = if cell.orphaned {
            "ORPHANED"
        } else if cell.complete {
            "complete"
        } else {
            "incomplete"
        };
        let key = cell
            .key
            .map(|k| format!(" key {k:016x}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "cell {:016x}{key} — {status} ({} spans)\n",
            cell.trace_id,
            cell.events.len()
        ));
        let t0 = cell.events.first().map(|e| e.ts_us).unwrap_or(0);
        for event in &cell.events {
            let indent = if event.lease_id.is_some() && event.span != "lease" {
                "    "
            } else {
                "  "
            };
            let mut line = format!(
                "{indent}+{:>9.3}ms {:<12} {}",
                (event.ts_us.saturating_sub(t0)) as f64 / 1_000.0,
                event.span,
                event.node
            );
            if let Some(lease_id) = event.lease_id {
                line.push_str(&format!(" lease#{lease_id}"));
            }
            if let Some(job_id) = event.job_id {
                line.push_str(&format!(" job#{job_id}"));
            }
            if let Some(dur) = event.dur_us {
                line.push_str(&format!(" [{:.3}ms]", dur as f64 / 1_000.0));
            }
            if let (Some(generation), Some(coop)) = (event.generation, event.cooperation) {
                line.push_str(&format!(" gen {generation} coop {coop:.3}"));
            }
            match event.ok {
                Some(true) => line.push_str(" ok"),
                Some(false) => line.push_str(" FAILED"),
                None => {}
            }
            if let Some(detail) = &event.detail {
                line.push_str(&format!("  ({detail})"));
            }
            line.push('\n');
            out.push_str(&line);
        }
    }
    let incomplete = tree
        .cells
        .iter()
        .filter(|c| !c.complete && !c.orphaned)
        .count();
    let orphan_cells = tree.cells.iter().filter(|c| c.orphaned).count();
    let events: usize = tree.cells.iter().map(|c| c.events.len()).sum();
    out.push_str(&format!(
        "summary: cells={} complete={} incomplete={incomplete} orphan_cells={orphan_cells} \
         orphan_spans={} events={events} node_events={} discarded={}\n",
        tree.cells.len(),
        tree.complete_cells(),
        tree.orphan_spans,
        tree.node_events,
        tree.discarded
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ahn-trace-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn trace_ids_are_stable_and_never_zero() {
        assert_eq!(trace_id_of_key(42), trace_id_of_key(42));
        assert_ne!(trace_id_of_key(42), trace_id_of_key(43));
        for key in 0..1000u64 {
            assert_ne!(trace_id_of_key(key), 0);
        }
    }

    #[test]
    fn lines_roundtrip_and_reject_corruption() {
        let event = TraceEvent::new(7, "lease").job(3).lease(9).key(0xABCD);
        let line = encode_event(&event);
        assert!(line.ends_with('\n'));
        let back = decode_event(line.trim_end()).unwrap();
        assert_eq!(back.trace_id, 7);
        assert_eq!(back.span, "lease");
        assert_eq!(
            (back.job_id, back.lease_id, back.key),
            (Some(3), Some(9), Some(0xABCD))
        );
        let mut tampered = line.trim_end().to_owned();
        tampered.replace_range(tampered.len() - 1.., "X");
        assert_eq!(decode_event(&tampered), None);
        assert_eq!(decode_event(&line[..line.len() / 2]), None);
        assert_eq!(decode_event(""), None);
    }

    #[test]
    fn log_stamps_node_seq_and_survives_torn_tails() {
        let path = tmp("stamps");
        let log = TraceLog::open(&path, "test-node").unwrap();
        log.emit(TraceEvent::new(1, "submit").key(11));
        log.emit(TraceEvent::new(1, "complete").outcome(true));
        drop(log);
        // Tear the trailing record mid-line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();

        let read = read_trace(&path).unwrap();
        assert_eq!(read.events.len(), 1);
        assert_eq!(read.discarded, 1);
        assert_eq!(read.events[0].node, "test-node");
        assert_eq!(read.events[0].seq, 0);
        assert!(read.events[0].ts_us > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_trace() {
        assert_eq!(read_trace(&tmp("missing")).unwrap(), TraceRead::default());
    }

    #[test]
    fn join_builds_complete_trees_and_flags_orphans() {
        let mk = |trace_id: u64, span: &str, node: &str, ts: u64| {
            let mut e = TraceEvent::new(trace_id, span);
            e.node = node.into();
            e.ts_us = ts;
            e
        };
        let events = vec![
            // Cell 1: full lifecycle across three nodes.
            mk(1, "submit", "coordinator", 10).key(0xAA),
            mk(1, "enqueue", "serve:a", 11).job(5),
            mk(1, "lease", "serve:a", 20).job(5).lease(2),
            mk(1, "compute", "worker:9", 30)
                .lease(2)
                .dur_us(500)
                .outcome(true),
            mk(1, "complete", "serve:a", 40)
                .job(5)
                .lease(2)
                .outcome(true),
            mk(1, "merge", "coordinator", 50),
            // Cell 2: lease without any root — orphaned.
            mk(2, "lease", "serve:a", 15).lease(3),
            mk(2, "compute", "worker:9", 18).lease(3),
            // Node-local event: counted, never an orphan.
            mk(0, "retry", "worker:9", 16),
        ];
        let tree = join_traces(events, 1);
        assert_eq!(tree.cells.len(), 2);
        assert_eq!(tree.node_events, 1);
        assert_eq!(tree.discarded, 1);
        let cell1 = tree.cells.iter().find(|c| c.trace_id == 1).unwrap();
        assert!(cell1.complete && !cell1.orphaned);
        assert_eq!(cell1.key, Some(0xAA));
        let cell2 = tree.cells.iter().find(|c| c.trace_id == 2).unwrap();
        assert!(cell2.orphaned && !cell2.complete);
        assert_eq!(tree.orphan_spans, 2);
        assert_eq!(tree.complete_cells(), 1);

        let rendered = render_tree(&tree);
        assert!(rendered.contains("complete (6 spans)") || rendered.contains("— complete"));
        assert!(rendered.contains("ORPHANED"));
        assert!(rendered
            .contains("summary: cells=2 complete=1 incomplete=0 orphan_cells=1 orphan_spans=2"));
    }

    #[test]
    fn failed_terminal_spans_do_not_count_as_complete() {
        let mut submit = TraceEvent::new(4, "submit");
        submit.ts_us = 1;
        let mut complete = TraceEvent::new(4, "complete");
        complete.ts_us = 2;
        let tree = join_traces(vec![submit, complete.outcome(false)], 0);
        assert_eq!(tree.complete_cells(), 0);
        assert!(!tree.cells[0].orphaned);
    }
}
