//! Lock-free log2-bucketed latency histograms.
//!
//! [`AtomicHistogram`] is the one shared distribution primitive of the
//! workspace: the serve layer records request latency, queue wait,
//! compute time and claim round-trips into it, the pull worker keeps
//! its own copies for the exit summary, and the loadtest client uses it
//! in place of its former bespoke sorted-vec percentile.
//!
//! Design constraints, in order:
//!
//! 1. **Zero allocation, no locks on the record path.** A record is a
//!    handful of `Relaxed` atomic RMWs on a fixed 64-slot array — safe
//!    to call from any thread, any signal-adjacent context, any hot
//!    loop (`tests/zero_alloc.rs` pins this).
//! 2. **Deterministic merge.** Buckets add and maxima max; both
//!    commute, so merging per-thread histograms in any order — or
//!    recording the same multiset of values from any number of threads
//!    — yields byte-identical [`HistogramSnapshot`]s (the proptests in
//!    `tests/properties.rs` pin this).
//! 3. **Bounded, known error.** Bucket `i ≥ 1` spans
//!    `[2^(i-1), 2^i - 1]` (bucket 0 is exactly `{0}`), so a reported
//!    percentile is the upper bound of its bucket: never below the true
//!    value and less than 2x above it. `max` is exact, and percentiles
//!    are clamped to it.
//!
//! Units are chosen by the call site (the serve layer records
//! microseconds; field names carry a `_us`/`_ms` suffix).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: one per possible `u64` bit width,
/// with the top bucket absorbing the (unreachable in practice) overflow.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: its bit width (0 for 0), clamped so
/// 64-bit-wide values share the top bucket.
#[inline]
fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The inclusive upper bound of bucket `index` (`0` for bucket 0,
/// `2^index - 1` in between, `u64::MAX` for the open-ended top bucket).
pub fn bucket_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A lock-free log2-bucketed histogram: 64 relaxed `AtomicU64` bucket
/// counters plus an exact running sum and maximum. See the module docs
/// for the guarantees.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: three relaxed atomic RMWs, no allocation, no
    /// locks. Safe from any number of threads concurrently.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds `other` into `self` bucket-wise. Addition and max both
    /// commute, so any merge order produces the same totals.
    pub fn merge_from(&self, other: &AtomicHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let v = theirs.load(Ordering::Relaxed);
            if v != 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Total number of recorded values (sum of bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A self-consistent readout: the count is derived from the bucket
    /// counters themselves, so percentiles always agree with the bucket
    /// totals even if records land concurrently with the snapshot (the
    /// exact `sum`/`max` may then trail or lead by the in-flight
    /// records; quiescent snapshots are exact).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
            count += *slot;
        }
        let max = self.max.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(&buckets, count, max, 0.50),
            p90: quantile(&buckets, count, max, 0.90),
            p99: quantile(&buckets, count, max, 0.99),
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, &c)| BucketCount {
                    le: bucket_bound(i),
                    count: c,
                })
                .collect(),
        }
    }
}

/// The value at quantile `q`: the upper bound of the bucket holding the
/// `ceil(q * count)`-th smallest record, clamped to the exact maximum.
fn quantile(buckets: &[u64; BUCKETS], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (index, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_bound(index).min(max);
        }
    }
    max
}

/// One non-empty bucket of a [`HistogramSnapshot`]: `count` records
/// were `<= le` (and above the previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Number of records that landed in the bucket.
    pub count: u64,
}

/// A serializable point-in-time readout of an [`AtomicHistogram`]:
/// exact count/sum/max, log2-resolution percentiles, and the non-empty
/// buckets for full-distribution dumps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
    /// Median, as the containing bucket's upper bound (see module docs
    /// for the <2x error bound).
    pub p50: u64,
    /// 90th percentile, same resolution as `p50`.
    pub p90: u64,
    /// 99th percentile, same resolution as `p50`.
    pub p99: u64,
    /// The non-empty buckets, smallest bound first.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// An empty snapshot (what an untouched histogram reads).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            p50: 0,
            p90: 0,
            p99: 0,
            buckets: Vec::new(),
        }
    }

    /// Exact arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zeroes() {
        let h = AtomicHistogram::new();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn bucket_mapping_covers_every_boundary() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value fits under its bucket's bound and above the
        // previous bucket's.
        for value in [0u64, 1, 2, 7, 8, 1000, 1 << 40, u64::MAX] {
            let b = bucket_of(value);
            assert!(value <= bucket_bound(b), "{value} > bound of bucket {b}");
            if b > 0 {
                assert!(value > bucket_bound(b - 1));
            }
        }
    }

    #[test]
    fn percentiles_are_upper_bounds_clamped_to_the_exact_max() {
        let h = AtomicHistogram::new();
        for v in [100u64, 200, 300, 400, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.max), (5, 2000, 1000));
        // Median record is 300 (bucket [256, 511]): reported as 511.
        assert_eq!(s.p50, 511);
        // p90 and p99 land on the max record: clamped to exactly 1000.
        assert_eq!(s.p90, 1000);
        assert_eq!(s.p99, 1000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn merge_adds_buckets_and_maxes_the_max() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [3u64, 4000] {
            b.record(v);
        }
        a.merge_from(&b);
        let direct = AtomicHistogram::new();
        for v in [1u64, 2, 3, 3, 4000] {
            direct.record(v);
        }
        assert_eq!(a.snapshot(), direct.snapshot());
    }

    #[test]
    fn single_value_snapshot_is_exact_everywhere() {
        let h = AtomicHistogram::new();
        h.record(777);
        let s = h.snapshot();
        // One record: every percentile clamps to the exact max.
        assert_eq!((s.p50, s.p90, s.p99, s.max), (777, 777, 777, 777));
        assert_eq!(s.buckets, vec![BucketCount { le: 1023, count: 1 }]);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let h = AtomicHistogram::new();
        for v in [0u64, 5, 5, 90, 1 << 30] {
            h.record(v);
        }
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
