//! `ahn_obs` — std-only observability for the workspace: latency
//! histograms, cross-node trace spans, and zero-cost hot-path
//! profiling hooks.
//!
//! Three pieces, each usable alone:
//!
//! * [`hist`] — [`AtomicHistogram`], a lock-free log2-bucketed
//!   histogram (64 relaxed `AtomicU64` buckets, zero allocation on the
//!   record path) with deterministic merge and p50/p90/p99/max
//!   readout. Backs the `/metrics` `ahn-serve-metrics/2` distribution
//!   blocks, the worker exit summary and the loadtest percentiles.
//! * [`trace`] — [`TraceLog`], a checksummed JSON-lines span log, plus
//!   [`join_traces`]/[`render_tree`], which reconstruct one cell's
//!   cross-node lifecycle (submit → enqueue → lease → compute →
//!   complete → merge) from any set of server/worker/coordinator log
//!   files and flag orphaned spans.
//! * [`recorder`] — the [`Recorder`] trait the experiment hot loop is
//!   generic over. The [`NoopRecorder`] default compiles to nothing
//!   (the zero-cost-when-off invariant, pinned by `tests/zero_alloc.rs`
//!   and the BENCH gate); [`SeriesRecorder`] captures per-generation
//!   cooperation + schedule/play/evolve timings for the trace log.
//!
//! Nothing in this crate touches seeded RNG streams or simulated
//! state: observability on or off, results are bit-identical.

#![deny(missing_docs)]

pub mod hist;
pub mod recorder;
pub mod trace;

pub use hist::{bucket_bound, AtomicHistogram, BucketCount, HistogramSnapshot, BUCKETS};
pub use recorder::{GenSample, NoopRecorder, Phase, Recorder, SeriesRecorder};
pub use trace::{
    decode_event, encode_event, join_traces, read_trace, render_tree, trace_id_of_key, CellTrace,
    TraceEvent, TraceLog, TraceRead, TraceTree,
};
