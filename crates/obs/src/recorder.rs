//! Hot-path profiling hooks: the [`Recorder`] trait the experiment
//! harness threads through its generational loop.
//!
//! The contract is **zero cost when off**. Every method has an empty
//! default body and the harness is generic over `R: Recorder`, so with
//! [`NoopRecorder`] (the default, used by every existing entry point)
//! monomorphization inlines the empty bodies away — no `Instant::now()`
//! calls, no branches, no allocation survive in the compiled hot loop.
//! `tests/zero_alloc.rs` and the BENCH regression gate pin this.
//!
//! An enabled recorder owns its own timing: [`SeriesRecorder`] reads
//! the clock in `begin`/`end` and folds per-generation cooperation and
//! phase timings into [`GenSample`]s, which the CLI's `--trace` paths
//! forward into the trace log. Recorders never touch the seeded RNG or
//! any simulated state, so instrumented and uninstrumented runs are
//! bit-identical.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The three phases of one evolutionary generation, as timed by the
/// experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Decoding genomes into arena strategies.
    Schedule,
    /// Playing the tournament round.
    Play,
    /// Breeding the next generation (skipped on the final one).
    Evolve,
}

impl Phase {
    /// Stable array index for per-phase accumulators.
    pub const fn index(self) -> usize {
        match self {
            Phase::Schedule => 0,
            Phase::Play => 1,
            Phase::Evolve => 2,
        }
    }

    /// Human-readable phase name.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Schedule => "schedule",
            Phase::Play => "play",
            Phase::Evolve => "evolve",
        }
    }
}

/// Observer of the experiment hot loop. All methods default to empty
/// bodies; see the module docs for the zero-cost-when-off contract.
pub trait Recorder {
    /// A phase is starting. An enabled recorder reads the clock here.
    #[inline(always)]
    fn begin(&mut self, _phase: Phase) {}

    /// The matching phase ended.
    #[inline(always)]
    fn end(&mut self, _phase: Phase) {}

    /// One generation finished (called after its evolve phase), with
    /// the cooperation level of that generation's tournament.
    #[inline(always)]
    fn generation(&mut self, _generation: u64, _cooperation: f64) {}
}

/// The default recorder: every hook compiles to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// One generation's worth of recorded hot-loop telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenSample {
    /// Generation index within the replication.
    pub generation: u64,
    /// Cooperation level of the generation's tournament.
    pub cooperation: f64,
    /// Nanoseconds spent decoding genomes into strategies.
    pub schedule_ns: u64,
    /// Nanoseconds spent playing the tournament.
    pub play_ns: u64,
    /// Nanoseconds spent breeding (0 on the final generation).
    pub evolve_ns: u64,
}

/// A recorder that collects a [`GenSample`] per generation. Timing
/// lives entirely inside this type — the harness only marks phase
/// boundaries — so disabling recording removes every clock read.
#[derive(Debug, Default)]
pub struct SeriesRecorder {
    /// The collected per-generation series.
    pub samples: Vec<GenSample>,
    open: [Option<Instant>; 3],
    acc: [u64; 3],
}

impl Recorder for SeriesRecorder {
    fn begin(&mut self, phase: Phase) {
        self.open[phase.index()] = Some(Instant::now());
    }

    fn end(&mut self, phase: Phase) {
        if let Some(started) = self.open[phase.index()].take() {
            self.acc[phase.index()] += started.elapsed().as_nanos() as u64;
        }
    }

    fn generation(&mut self, generation: u64, cooperation: f64) {
        self.samples.push(GenSample {
            generation,
            cooperation,
            schedule_ns: self.acc[Phase::Schedule.index()],
            play_ns: self.acc[Phase::Play.index()],
            evolve_ns: self.acc[Phase::Evolve.index()],
        });
        self.acc = [0; 3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_recorder_collects_one_sample_per_generation() {
        let mut recorder = SeriesRecorder::default();
        for generation in 0..3u64 {
            for phase in [Phase::Schedule, Phase::Play, Phase::Evolve] {
                recorder.begin(phase);
                recorder.end(phase);
            }
            recorder.generation(generation, 0.5 + generation as f64 / 10.0);
        }
        assert_eq!(recorder.samples.len(), 3);
        assert_eq!(recorder.samples[2].generation, 2);
        assert!((recorder.samples[1].cooperation - 0.6).abs() < 1e-12);
        // Accumulators reset between generations.
        assert_eq!(recorder.acc, [0; 3]);
    }

    #[test]
    fn unmatched_end_is_harmless() {
        let mut recorder = SeriesRecorder::default();
        recorder.end(Phase::Play); // no begin: ignored, no panic
        recorder.generation(0, 0.0);
        assert_eq!(recorder.samples[0].play_ns, 0);
    }

    #[test]
    fn noop_recorder_accepts_every_hook() {
        let mut noop = NoopRecorder;
        noop.begin(Phase::Schedule);
        noop.end(Phase::Schedule);
        noop.generation(0, 1.0);
    }
}
