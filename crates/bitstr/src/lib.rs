//! Fixed-width bit strings used as GA genomes throughout the workspace.
//!
//! The paper encodes a node's forwarding strategy as a binary string of
//! length 13 (Fig. 1c) and the IPDRP baseline uses strings of length 5.
//! This crate provides [`BitStr`], a compact, fixed-length bit string with
//! the operations a genetic algorithm needs:
//!
//! * random generation ([`BitStr::random`]),
//! * genetic operators (one-point / two-point / uniform crossover,
//!   per-bit flip mutation) in [`ops`],
//! * the paper's textual notation (`"010 101 101 111 1"`) via
//!   [`fmt::Grouped`] and [`std::str::FromStr`],
//! * serde support (serialized as the compact `0`/`1` string), behind
//!   the optional `serde` feature.
//!
//! Bits are stored little-endian inside `u64` words: bit `i` of the string
//! lives in word `i / 64` at position `i % 64`. Bit index 0 is the first
//! (leftmost) character of the textual form, matching the paper's "bit
//! no. 0" convention.
//!
//! Strings of at most 64 bits — every genome this workspace evolves (13
//! bits for the full strategy, 5 for the reduced codec and the IPDRP
//! baseline) — are stored **inline** in a single word, so constructing,
//! cloning and breeding them never touches the heap. Longer strings
//! transparently spill to a `Vec<u64>`; the public API is identical for
//! both representations.
//!
//! # Example
//!
//! ```
//! use ahn_bitstr::BitStr;
//!
//! let s: BitStr = "010 101 101 111 1".parse().unwrap();
//! assert_eq!(s.len(), 13);
//! assert!(!s.get(0)); // bit 0 is '0'
//! assert!(s.get(1)); // bit 1 is '1'
//! assert_eq!(s.count_ones(), 9);
//! ```

#![deny(missing_docs)]

pub mod fmt;
pub mod ops;

#[cfg(feature = "serde")]
mod serde_impl;

use rand::Rng;

/// A fixed-length string of bits.
///
/// The length is fixed at construction time; all binary operations
/// (crossover, Hamming distance, ...) panic if the operands' lengths
/// differ, because mixing genome lengths is always a logic error in this
/// workspace.
#[derive(Clone)]
pub struct BitStr {
    /// Number of valid bits.
    len: usize,
    /// Bit storage; bits past `len` in the last word are always zero
    /// (the *canonical form* invariant, relied upon by `Eq`/`Hash`).
    repr: Repr,
}

/// Bit storage: genomes of at most one word live inline (the hot case —
/// cloning them is a copy), longer strings on the heap. The variant is a
/// pure function of `len` (≤ 64 bits ⇒ `Inline`), so representation
/// never leaks into equality or ordering.
#[derive(Clone)]
enum Repr {
    /// Up to 64 bits, stored directly.
    Inline(u64),
    /// More than 64 bits, one `u64` per 64-bit chunk.
    Heap(Vec<u64>),
}

const WORD_BITS: usize = 64;

#[inline]
fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitStr {
    /// The storage words, valid bits first. A zero-length string reports
    /// one (all-zero) inline word; every bit-level operation guards on
    /// `len`, and logical comparisons go through this accessor on both
    /// sides, so the padding word is never observable.
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => std::slice::from_ref(w),
            Repr::Heap(v) => v,
        }
    }

    /// Mutable view of the storage words.
    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(w) => std::slice::from_mut(w),
            Repr::Heap(v) => v,
        }
    }

    /// Creates a string of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        let repr = if len <= WORD_BITS {
            Repr::Inline(0)
        } else {
            Repr::Heap(vec![0; words_for(len)])
        };
        BitStr { len, repr }
    }

    /// Creates a string of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let repr = if len == 0 {
            Repr::Inline(0)
        } else if len <= WORD_BITS {
            Repr::Inline(!0u64)
        } else {
            Repr::Heap(vec![!0u64; words_for(len)])
        };
        let mut s = BitStr { len, repr };
        s.mask_tail();
        s
    }

    /// Creates a string from an iterator of bits; the length is the number
    /// of items yielded. Stays allocation-free for up to 64 bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut len = 0usize;
        let mut word = 0u64;
        let mut heap: Vec<u64> = Vec::new();
        for b in bits {
            if len > 0 && len.is_multiple_of(WORD_BITS) {
                heap.push(word);
                word = 0;
            }
            if b {
                word |= 1u64 << (len % WORD_BITS);
            }
            len += 1;
        }
        if len <= WORD_BITS {
            BitStr {
                len,
                repr: Repr::Inline(word),
            }
        } else {
            heap.push(word);
            debug_assert_eq!(heap.len(), words_for(len));
            BitStr {
                len,
                repr: Repr::Heap(heap),
            }
        }
    }

    /// Creates a uniformly random string of `len` bits (one RNG draw per
    /// storage word, so seeded streams are representation-independent).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        let repr = if len == 0 {
            Repr::Inline(0)
        } else if len <= WORD_BITS {
            Repr::Inline(rng.gen::<u64>())
        } else {
            Repr::Heap((0..words_for(len)).map(|_| rng.gen::<u64>()).collect())
        };
        let mut s = BitStr { len, repr };
        s.mask_tail();
        s
    }

    /// Zeroes the unused bits of the last storage word, restoring the
    /// canonical-form invariant after whole-word writes.
    fn mask_tail(&mut self) {
        let used = self.len % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= (1u64 << used) - 1;
            }
        } else if self.len == 0 {
            if let Repr::Inline(w) = &mut self.repr {
                *w = 0;
            }
        }
    }

    /// Number of bits in the string.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the string holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        match &self.repr {
            Repr::Inline(w) => (w >> i) & 1 == 1,
            Repr::Heap(v) => (v[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1,
        }
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        let word = match &mut self.repr {
            Repr::Inline(w) => w,
            Repr::Heap(v) => &mut v[i / WORD_BITS],
        };
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips bit `i` and returns its new value.
    #[inline]
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        match &mut self.repr {
            Repr::Inline(w) => {
                *w ^= 1u64 << i;
                (*w >> i) & 1 == 1
            }
            Repr::Heap(v) => {
                let w = &mut v[i / WORD_BITS];
                *w ^= 1u64 << (i % WORD_BITS);
                (*w >> (i % WORD_BITS)) & 1 == 1
            }
        }
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of zero bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "hamming distance of unequal lengths");
        self.words()
            .iter()
            .zip(other.words())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the bits from index 0 upward.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Collects the bits into a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Interprets bits `range.start..range.end` (start = most significant)
    /// as an unsigned integer. Used to extract sub-strategies.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or wider than 64 bits.
    pub fn slice_value(&self, range: std::ops::Range<usize>) -> u64 {
        assert!(
            range.end <= self.len && range.len() <= 64,
            "bad slice {range:?}"
        );
        let mut v = 0u64;
        for i in range {
            v = (v << 1) | self.get(i) as u64;
        }
        v
    }

    /// Builds a bit string of width `width` from the low bits of `value`,
    /// most significant bit first (inverse of [`BitStr::slice_value`] for a
    /// full-width slice).
    pub fn from_value(value: u64, width: usize) -> Self {
        assert!(width <= 64, "width {width} exceeds 64");
        BitStr::from_bits((0..width).map(|i| (value >> (width - 1 - i)) & 1 == 1))
    }
}

impl PartialEq for BitStr {
    fn eq(&self, other: &Self) -> bool {
        // Canonical form (masked tails, len-determined representation)
        // makes word comparison exact.
        self.len == other.len && self.words() == other.words()
    }
}

impl Eq for BitStr {}

impl std::hash::Hash for BitStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words().hash(state);
    }
}

impl PartialOrd for BitStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitStr {
    /// Orders by length first, then by storage words — the same total
    /// order the pre-inline derived implementation produced.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.len
            .cmp(&other.len)
            .then_with(|| self.words().cmp(other.words()))
    }
}

impl std::fmt::Debug for BitStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitStr({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zeros_and_ones_have_expected_counts() {
        for len in [0, 1, 5, 13, 63, 64, 65, 130] {
            assert_eq!(BitStr::zeros(len).count_ones(), 0, "len={len}");
            assert_eq!(BitStr::ones(len).count_ones(), len, "len={len}");
            assert_eq!(BitStr::ones(len).count_zeros(), 0, "len={len}");
        }
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut s = BitStr::zeros(13);
        s.set(0, true);
        s.set(12, true);
        assert!(s.get(0) && s.get(12) && !s.get(6));
        assert_eq!(s.count_ones(), 2);
        assert!(!s.flip(0));
        assert!(s.flip(6));
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    fn ones_is_canonical_across_word_boundary() {
        // Equality relies on masked tail bits.
        let a = BitStr::ones(65);
        let mut b = BitStr::zeros(65);
        for i in 0..65 {
            b.set(i, true);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn hamming_distance_basics() {
        let a = BitStr::zeros(13);
        let b = BitStr::ones(13);
        assert_eq!(a.hamming(&b), 13);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn hamming_panics_on_length_mismatch() {
        let _ = BitStr::zeros(5).hamming(&BitStr::zeros(6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = BitStr::zeros(13).get(13);
    }

    #[test]
    fn from_bits_preserves_order() {
        let s = BitStr::from_bits([true, false, true]);
        assert_eq!(s.len(), 3);
        assert!(s.get(0) && !s.get(1) && s.get(2));
    }

    #[test]
    fn slice_value_msb_first() {
        // bits: 1 1 0 -> value 0b110 = 6
        let s = BitStr::from_bits([true, true, false]);
        assert_eq!(s.slice_value(0..3), 6);
        assert_eq!(s.slice_value(1..3), 2);
        assert_eq!(s.slice_value(0..0), 0);
    }

    #[test]
    fn from_value_inverts_slice_value() {
        for v in 0..8u64 {
            let s = BitStr::from_value(v, 3);
            assert_eq!(s.slice_value(0..3), v);
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let mut r1 = ChaCha8Rng::seed_from_u64(7);
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(BitStr::random(&mut r1, 130), BitStr::random(&mut r2, 130));
    }

    #[test]
    fn random_long_string_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let s = BitStr::random(&mut rng, 10_000);
        let ones = s.count_ones();
        assert!((4_500..=5_500).contains(&ones), "ones={ones}");
    }

    #[test]
    fn iter_matches_get() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = BitStr::random(&mut rng, 77);
        let collected: Vec<bool> = s.iter().collect();
        for (i, b) in collected.iter().enumerate() {
            assert_eq!(*b, s.get(i));
        }
        assert_eq!(s.to_bools(), collected);
    }
}
