//! Genetic operators over [`BitStr`] genomes.
//!
//! The paper (§5) uses *standard one-point crossover* and *standard uniform
//! bit-flip mutation*; the other operators here (two-point, uniform
//! crossover) exist for the ablation studies and are implemented with the
//! same conventions:
//!
//! * crossover takes two parents of equal length and returns two children;
//! * the cut point of one-point crossover is drawn uniformly from
//!   `1..len`, so both children always receive genetic material from both
//!   parents (a cut at 0 or `len` would merely clone the parents);
//! * mutation flips every bit independently with probability `p`.

use crate::BitStr;
use rand::Rng;

/// One-point crossover (§5 of the paper).
///
/// Children are `(a[..cut] ++ b[cut..], b[..cut] ++ a[cut..])` with
/// `cut ∈ [1, len)`. For genomes shorter than 2 bits the parents are
/// returned unchanged (no interior cut point exists).
///
/// # Panics
/// Panics if the parents' lengths differ.
pub fn one_point_crossover<R: Rng + ?Sized>(
    rng: &mut R,
    a: &BitStr,
    b: &BitStr,
) -> (BitStr, BitStr) {
    assert_eq!(a.len(), b.len(), "crossover of unequal lengths");
    if a.len() < 2 {
        return (a.clone(), b.clone());
    }
    let cut = rng.gen_range(1..a.len());
    crossover_at(a, b, cut)
}

/// Builds **one** child of a one-point crossover without materializing
/// its sibling: `a[..cut] ++ b[cut..]` when `take_second` is false,
/// `b[..cut] ++ a[cut..]` when true.
///
/// This is the breeding hot path's variant of [`crossover_at`]: the
/// paper's GA keeps only one of the two children (§5), so building both
/// doubles the work for nothing. The caller draws the cut and the
/// child pick itself (in that order) to keep RNG streams identical to
/// the two-child construction.
///
/// # Panics
/// Panics if the lengths differ or `cut > len`.
pub fn one_point_child(a: &BitStr, b: &BitStr, cut: usize, take_second: bool) -> BitStr {
    assert_eq!(a.len(), b.len(), "crossover of unequal lengths");
    assert!(cut <= a.len(), "cut {cut} out of range");
    let (head, tail) = if take_second { (b, a) } else { (a, b) };
    let mut child = head.clone();
    for i in cut..a.len() {
        child.set(i, tail.get(i));
    }
    child
}

/// Deterministic one-point crossover at a given cut (exposed for tests and
/// for replaying logged runs).
///
/// # Panics
/// Panics if the lengths differ or `cut > len`.
pub fn crossover_at(a: &BitStr, b: &BitStr, cut: usize) -> (BitStr, BitStr) {
    assert_eq!(a.len(), b.len(), "crossover of unequal lengths");
    assert!(cut <= a.len(), "cut {cut} out of range");
    let mut c = a.clone();
    let mut d = b.clone();
    for i in cut..a.len() {
        c.set(i, b.get(i));
        d.set(i, a.get(i));
    }
    (c, d)
}

/// Two-point crossover: swaps the segment between two cut points.
///
/// # Panics
/// Panics if the parents' lengths differ.
pub fn two_point_crossover<R: Rng + ?Sized>(
    rng: &mut R,
    a: &BitStr,
    b: &BitStr,
) -> (BitStr, BitStr) {
    assert_eq!(a.len(), b.len(), "crossover of unequal lengths");
    if a.len() < 2 {
        return (a.clone(), b.clone());
    }
    let mut p1 = rng.gen_range(0..=a.len());
    let mut p2 = rng.gen_range(0..=a.len());
    if p1 > p2 {
        std::mem::swap(&mut p1, &mut p2);
    }
    let mut c = a.clone();
    let mut d = b.clone();
    for i in p1..p2 {
        c.set(i, b.get(i));
        d.set(i, a.get(i));
    }
    (c, d)
}

/// Uniform crossover: each position is swapped independently with
/// probability `swap_prob` (0.5 gives the classical operator).
///
/// # Panics
/// Panics if the parents' lengths differ or `swap_prob ∉ [0, 1]`.
pub fn uniform_crossover<R: Rng + ?Sized>(
    rng: &mut R,
    a: &BitStr,
    b: &BitStr,
    swap_prob: f64,
) -> (BitStr, BitStr) {
    assert_eq!(a.len(), b.len(), "crossover of unequal lengths");
    assert!((0.0..=1.0).contains(&swap_prob), "swap_prob out of range");
    let mut c = a.clone();
    let mut d = b.clone();
    for i in 0..a.len() {
        if rng.gen_bool(swap_prob) {
            c.set(i, b.get(i));
            d.set(i, a.get(i));
        }
    }
    (c, d)
}

/// Uniform bit-flip mutation: flips each bit independently with
/// probability `p` (the paper uses `p = 0.001`). Returns the number of
/// flipped bits.
///
/// # Panics
/// Panics if `p ∉ [0, 1]`.
pub fn bit_flip_mutation<R: Rng + ?Sized>(rng: &mut R, genome: &mut BitStr, p: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&p),
        "mutation probability out of range"
    );
    let mut flipped = 0;
    for i in 0..genome.len() {
        if rng.gen_bool(p) {
            genome.flip(i);
            flipped += 1;
        }
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn crossover_at_known_cut() {
        let a: BitStr = "0000".parse().unwrap();
        let b: BitStr = "1111".parse().unwrap();
        let (c, d) = crossover_at(&a, &b, 2);
        assert_eq!(c.to_string(), "0011");
        assert_eq!(d.to_string(), "1100");
    }

    #[test]
    fn one_point_child_matches_both_siblings() {
        let mut r = rng(21);
        for len in [2usize, 13, 64, 90] {
            let a = BitStr::random(&mut r, len);
            let b = BitStr::random(&mut r, len);
            for cut in 0..=len {
                let (c1, c2) = crossover_at(&a, &b, cut);
                assert_eq!(
                    one_point_child(&a, &b, cut, false),
                    c1,
                    "len {len} cut {cut}"
                );
                assert_eq!(
                    one_point_child(&a, &b, cut, true),
                    c2,
                    "len {len} cut {cut}"
                );
            }
        }
    }

    #[test]
    fn crossover_preserves_positionwise_multiset() {
        // For every position the children's bits are a permutation of the
        // parents' bits at that position, for every operator.
        let mut r = rng(11);
        let a = BitStr::random(&mut r, 13);
        let b = BitStr::random(&mut r, 13);
        for _ in 0..50 {
            for (c, d) in [
                one_point_crossover(&mut r, &a, &b),
                two_point_crossover(&mut r, &a, &b),
                uniform_crossover(&mut r, &a, &b, 0.5),
            ] {
                for i in 0..13 {
                    let parents = [a.get(i), b.get(i)];
                    let mut kids = [c.get(i), d.get(i)];
                    kids.sort();
                    let mut sorted_parents = parents;
                    sorted_parents.sort();
                    assert_eq!(kids, sorted_parents, "position {i}");
                }
            }
        }
    }

    #[test]
    fn one_point_children_differ_from_parents_when_parents_differ_everywhere() {
        let a = BitStr::zeros(13);
        let b = BitStr::ones(13);
        let mut r = rng(5);
        let (c, d) = one_point_crossover(&mut r, &a, &b);
        // With an interior cut both children are proper mixtures.
        assert!(c.count_ones() > 0 && c.count_ones() < 13);
        assert!(d.count_ones() > 0 && d.count_ones() < 13);
        assert_eq!(c.count_ones() + d.count_ones(), 13);
    }

    #[test]
    fn one_point_on_tiny_genomes_clones() {
        let a = BitStr::zeros(1);
        let b = BitStr::ones(1);
        let mut r = rng(0);
        let (c, d) = one_point_crossover(&mut r, &a, &b);
        assert_eq!((c, d), (a, b));
    }

    #[test]
    fn mutation_rate_statistics() {
        // Flip probability 0.01 over 13 bits x 20k genomes: expect ~2600
        // flips; allow generous slack.
        let mut r = rng(99);
        let mut flips = 0usize;
        for _ in 0..20_000 {
            let mut g = BitStr::zeros(13);
            flips += bit_flip_mutation(&mut r, &mut g, 0.01);
        }
        assert!((2_100..=3_100).contains(&flips), "flips={flips}");
    }

    #[test]
    fn mutation_zero_and_one_probabilities() {
        let mut r = rng(7);
        let mut g = BitStr::random(&mut r, 64);
        let orig = g.clone();
        assert_eq!(bit_flip_mutation(&mut r, &mut g, 0.0), 0);
        assert_eq!(g, orig);
        assert_eq!(bit_flip_mutation(&mut r, &mut g, 1.0), 64);
        assert_eq!(g.hamming(&orig), 64);
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn crossover_length_mismatch_panics() {
        let mut r = rng(1);
        let _ = one_point_crossover(&mut r, &BitStr::zeros(5), &BitStr::zeros(6));
    }

    #[test]
    fn two_point_full_range_swaps_everything_or_nothing() {
        let a = BitStr::zeros(8);
        let b = BitStr::ones(8);
        // Deterministic check through crossover_at-equivalent extremes.
        let (c, d) = crossover_at(&a, &b, 0);
        assert_eq!(c, b);
        assert_eq!(d, a);
        let (c, d) = crossover_at(&a, &b, 8);
        assert_eq!(c, a);
        assert_eq!(d, b);
    }
}
