//! Serde support: a [`BitStr`] serializes as its compact `0`/`1` string so
//! experiment outputs (JSON) show strategies in the paper's notation.

use crate::BitStr;
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};

impl Serialize for BitStr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for BitStr {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let s: BitStr = "010 101 101 111 1".parse().unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"0101011011111\"");
        let back: BitStr = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn deserialize_rejects_bad_chars() {
        let r: Result<BitStr, _> = serde_json::from_str("\"01x\"");
        assert!(r.is_err());
    }
}
