//! Textual representation of bit strings.
//!
//! The paper prints strategies as space-separated groups such as
//! `010 101 101 111 1` (Tab. 7): four 3-bit sub-strategies (one per trust
//! level) followed by the single unknown-node bit. [`Grouped`] reproduces
//! that layout for arbitrary group widths, and [`BitStr`]'s
//! [`std::str::FromStr`] accepts both the compact and the grouped form.

use crate::BitStr;
use std::fmt;

impl fmt::Display for BitStr {
    /// Formats as a compact run of `0`/`1` characters, bit 0 first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BitStr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitStrError {
    /// Offending character.
    pub ch: char,
    /// Byte offset of the offending character in the input.
    pub at: usize,
}

impl fmt::Display for ParseBitStrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid character {:?} at byte {} (expected '0', '1' or whitespace)",
            self.ch, self.at
        )
    }
}

impl std::error::Error for ParseBitStrError {}

impl std::str::FromStr for BitStr {
    type Err = ParseBitStrError;

    /// Parses `0`/`1` characters; whitespace is ignored so the paper's
    /// grouped notation (`"010 101 101 111 1"`) parses directly.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bits = Vec::with_capacity(s.len());
        for (at, ch) in s.char_indices() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                c if c.is_whitespace() => {}
                _ => return Err(ParseBitStrError { ch, at }),
            }
        }
        Ok(BitStr::from_bits(bits))
    }
}

/// Display adapter that renders a [`BitStr`] in space-separated groups.
///
/// ```
/// use ahn_bitstr::{fmt::Grouped, BitStr};
/// let s: BitStr = "0101011011111".parse().unwrap();
/// assert_eq!(Grouped(&s, 3).to_string(), "010 101 101 111 1");
/// ```
pub struct Grouped<'a>(pub &'a BitStr, pub usize);

impl fmt::Display for Grouped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.1.max(1);
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 && i % width == 0 {
                f.write_str(" ")?;
            }
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_compact() {
        let s = BitStr::from_bits([false, true, true]);
        assert_eq!(s.to_string(), "011");
    }

    #[test]
    fn parse_compact_and_grouped_agree() {
        let a: BitStr = "0101011011111".parse().unwrap();
        let b: BitStr = "010 101 101 111 1".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 13);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = "0102".parse::<BitStr>().unwrap_err();
        assert_eq!(err.ch, '2');
        assert_eq!(err.at, 3);
        assert!(err.to_string().contains("'2'"));
    }

    #[test]
    fn parse_empty_is_empty() {
        let s: BitStr = "".parse().unwrap();
        assert!(s.is_empty());
        let s: BitStr = "  \t".parse().unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn grouped_display_matches_paper_notation() {
        let s: BitStr = "0001111111111".parse().unwrap();
        assert_eq!(Grouped(&s, 3).to_string(), "000 111 111 111 1");
    }

    #[test]
    fn display_parse_roundtrip() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for len in [0usize, 1, 13, 64, 65, 200] {
            let s = BitStr::random(&mut rng, len);
            let back: BitStr = s.to_string().parse().unwrap();
            assert_eq!(s, back);
            let back: BitStr = Grouped(&s, 3).to_string().parse().unwrap();
            assert_eq!(s, back);
        }
    }
}
