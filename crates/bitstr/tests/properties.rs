//! Property-based tests for the bit-string genome type.

use ahn_bitstr::{fmt::Grouped, ops, BitStr};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy producing an arbitrary bit string up to 200 bits.
fn bitstr(max_len: usize) -> impl Strategy<Value = BitStr> {
    proptest::collection::vec(any::<bool>(), 0..=max_len).prop_map(BitStr::from_bits)
}

/// Pair of equal-length bit strings.
fn bitstr_pair(max_len: usize) -> impl Strategy<Value = (BitStr, BitStr)> {
    (1..=max_len).prop_flat_map(|len| {
        (
            proptest::collection::vec(any::<bool>(), len).prop_map(BitStr::from_bits),
            proptest::collection::vec(any::<bool>(), len).prop_map(BitStr::from_bits),
        )
    })
}

proptest! {
    #[test]
    fn display_parse_roundtrip(s in bitstr(200)) {
        let back: BitStr = s.to_string().parse().unwrap();
        prop_assert_eq!(&s, &back);
        let grouped: BitStr = Grouped(&s, 3).to_string().parse().unwrap();
        prop_assert_eq!(&s, &grouped);
    }

    #[test]
    fn serde_roundtrip(s in bitstr(200)) {
        let json = serde_json::to_string(&s).unwrap();
        let back: BitStr = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(s, back);
    }

    #[test]
    fn count_ones_matches_iter(s in bitstr(200)) {
        prop_assert_eq!(s.count_ones(), s.iter().filter(|&b| b).count());
        prop_assert_eq!(s.count_ones() + s.count_zeros(), s.len());
    }

    #[test]
    fn hamming_is_a_metric((a, b) in bitstr_pair(128)) {
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert_eq!(a.hamming(&a), 0);
        // Identity of indiscernibles.
        if a.hamming(&b) == 0 { prop_assert_eq!(&a, &b); }
    }

    #[test]
    fn crossover_children_at_each_position_use_parent_bits(
        (a, b) in bitstr_pair(128),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (c, d) = ops::one_point_crossover(&mut rng, &a, &b);
        prop_assert_eq!(c.len(), a.len());
        for i in 0..a.len() {
            prop_assert!(c.get(i) == a.get(i) || c.get(i) == b.get(i));
            // Complementarity: d holds the bit c did not take.
            let taken_from_a = c.get(i) == a.get(i);
            if a.get(i) != b.get(i) {
                prop_assert_eq!(d.get(i), if taken_from_a { b.get(i) } else { a.get(i) });
            }
        }
    }

    #[test]
    fn crossover_conserves_total_ones((a, b) in bitstr_pair(128), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let total = a.count_ones() + b.count_ones();
        let (c, d) = ops::one_point_crossover(&mut rng, &a, &b);
        prop_assert_eq!(c.count_ones() + d.count_ones(), total);
        let (c, d) = ops::two_point_crossover(&mut rng, &a, &b);
        prop_assert_eq!(c.count_ones() + d.count_ones(), total);
        let (c, d) = ops::uniform_crossover(&mut rng, &a, &b, 0.5);
        prop_assert_eq!(c.count_ones() + d.count_ones(), total);
    }

    #[test]
    fn mutation_flip_count_equals_hamming(s in bitstr(128), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = s.clone();
        let flips = ops::bit_flip_mutation(&mut rng, &mut m, 0.1);
        prop_assert_eq!(flips, s.hamming(&m));
    }

    #[test]
    fn slice_value_roundtrip(v in 0u64..8192, width in 1usize..=13) {
        let v = v & ((1 << width) - 1);
        let s = BitStr::from_value(v, width);
        prop_assert_eq!(s.slice_value(0..width), v);
    }
}
