//! Property-based tests for the GA engine.

use ahn_bitstr::BitStr;
use ahn_ga::{evolve, next_generation, GaParams, GenStats, Selection};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn population(n: usize, bits: usize) -> impl Strategy<Value = Vec<BitStr>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<bool>(), bits).prop_map(BitStr::from_bits),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The next generation always has the same size and genome width.
    #[test]
    fn breeding_preserves_shape(
        pop in population(12, 13),
        seed in any::<u64>(),
        crossover in 0.0f64..=1.0,
        mutation in 0.0f64..=0.2,
    ) {
        let fitnesses: Vec<f64> = (0..pop.len()).map(|i| i as f64).collect();
        let params = GaParams {
            crossover_prob: crossover,
            mutation_prob: mutation,
            ..GaParams::paper()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let next = next_generation(&mut rng, &params, &pop, &fitnesses);
        prop_assert_eq!(next.len(), pop.len());
        prop_assert!(next.iter().all(|g| g.len() == 13));
    }

    /// With zero mutation, every child bit traces back to some parent at
    /// the same position (crossover only recombines).
    #[test]
    fn zero_mutation_children_are_recombinations(
        pop in population(10, 13),
        seed in any::<u64>(),
    ) {
        let fitnesses = vec![1.0; pop.len()];
        let params = GaParams { mutation_prob: 0.0, ..GaParams::paper() };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let next = next_generation(&mut rng, &params, &pop, &fitnesses);
        for child in &next {
            for i in 0..13 {
                let bit = child.get(i);
                prop_assert!(
                    pop.iter().any(|p| p.get(i) == bit),
                    "bit {i} of child {child} not in any parent"
                );
            }
        }
    }

    /// Selection always returns a valid index, for both operators.
    #[test]
    fn selection_indices_are_valid(
        fitnesses in proptest::collection::vec(-10.0f64..10.0, 1..30),
        seed in any::<u64>(),
        tsize in 1usize..6,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for sel in [Selection::Tournament { size: tsize }, Selection::Roulette] {
            let idx = sel.select(&mut rng, &fitnesses);
            prop_assert!(idx < fitnesses.len());
        }
    }

    /// Elitism guarantees a maximum-fitness genome survives verbatim
    /// (ties may be broken either way, so we check fitness, not identity).
    #[test]
    fn elitism_keeps_champion(pop in population(8, 8), seed in any::<u64>()) {
        let fitnesses: Vec<f64> = pop.iter().map(|g| g.count_ones() as f64).collect();
        let best = fitnesses.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let params = GaParams { elitism: 1, ..GaParams::paper() };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let next = next_generation(&mut rng, &params, &pop, &fitnesses);
        prop_assert!(
            next.iter().any(|g| g.count_ones() as f64 >= best && pop.contains(g)),
            "no verbatim champion with fitness {best} survived"
        );
    }

    /// GenStats is ordered best >= mean >= worst and std_dev >= 0.
    #[test]
    fn gen_stats_are_ordered(fitnesses in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let s = GenStats::from_fitnesses(&fitnesses);
        prop_assert!(s.best >= s.mean - 1e-9);
        prop_assert!(s.mean >= s.worst - 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// evolve() records exactly one entry per generation with the genome
    /// width requested.
    #[test]
    fn evolve_shapes(seed in any::<u64>(), bits in 1usize..20, gens in 1usize..8) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let history = evolve(&mut rng, &GaParams::paper(), 6, bits, gens, |pop| {
            pop.iter().map(|g| g.count_ones() as f64).collect()
        });
        prop_assert_eq!(history.len(), gens);
        for (i, rec) in history.iter().enumerate() {
            prop_assert_eq!(rec.generation, i);
            prop_assert_eq!(rec.best.len(), bits);
        }
    }
}
