//! Generic genetic-algorithm engine (paper §5).
//!
//! The paper evolves 13-bit strategies with: tournament parent selection,
//! standard one-point crossover (probability 0.9), random choice of one
//! of the two children, and uniform bit-flip mutation (probability
//! 0.001). The engine here is genome-length agnostic (the IPDRP baseline
//! reuses it with 5-bit genomes) and adds the operators needed by the
//! ablation studies (roulette selection, elitism, alternative crossover).
//!
//! # Example
//!
//! ```
//! use ahn_ga::{GaParams, Selection, evolve};
//! use rand::SeedableRng;
//!
//! // Maximize the number of ones in an 8-bit genome.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let params = GaParams::paper();
//! let history = evolve(
//!     &mut rng,
//!     &params,
//!     30,  // population
//!     8,   // genome bits
//!     40,  // generations
//!     |pop| pop.iter().map(|g| g.count_ones() as f64).collect(),
//! );
//! let last = history.last().unwrap();
//! assert!(last.stats.best >= 7.0);
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod selection;
pub mod stats;

pub use engine::{evolve, next_generation, next_generation_into, GaParams, GenerationRecord};
pub use selection::Selection;
pub use stats::GenStats;
