//! The generational loop (paper §5).
//!
//! One generation: evaluate every genome, then build the next population
//! by repeating, once per offspring slot, *select two parents → one-point
//! crossover with probability `crossover_prob` → keep one child at random
//! → bit-flip mutate*. Optional elitism copies the fittest genomes
//! through unchanged (off by default; the paper uses none).

use crate::selection::Selection;
use crate::stats::GenStats;
use ahn_bitstr::{ops, BitStr};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaParams {
    /// Probability a selected pair is crossed over (paper: 0.9); with the
    /// complementary probability one parent is cloned.
    pub crossover_prob: f64,
    /// Per-bit mutation probability (paper: 0.001).
    pub mutation_prob: f64,
    /// Parent selection operator.
    pub selection: Selection,
    /// Number of fittest genomes copied unchanged into the next
    /// generation (0 = none, as in the paper).
    pub elitism: usize,
}

impl GaParams {
    /// The paper's §6.1 settings: crossover 0.9, mutation 0.001, size-2
    /// tournament selection, no elitism.
    pub fn paper() -> Self {
        GaParams {
            crossover_prob: 0.9,
            mutation_prob: 0.001,
            selection: Selection::paper(),
            elitism: 0,
        }
    }

    /// Validates probability ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.crossover_prob) {
            return Err(format!(
                "crossover_prob {} outside [0,1]",
                self.crossover_prob
            ));
        }
        if !(0.0..=1.0).contains(&self.mutation_prob) {
            return Err(format!(
                "mutation_prob {} outside [0,1]",
                self.mutation_prob
            ));
        }
        self.selection.validate()
    }
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams::paper()
    }
}

/// Produces the next generation from the current population and its
/// fitnesses.
///
/// Convenience wrapper over [`next_generation_into`] that allocates a
/// fresh output vector.
///
/// # Panics
/// Panics if lengths mismatch, the population is empty, or `elitism`
/// exceeds the population size.
pub fn next_generation<R: Rng + ?Sized>(
    rng: &mut R,
    params: &GaParams,
    population: &[BitStr],
    fitnesses: &[f64],
) -> Vec<BitStr> {
    let mut next = Vec::with_capacity(population.len());
    next_generation_into(rng, params, population, fitnesses, &mut next);
    next
}

/// Breeds the next generation **into** `next`, reusing its buffer — the
/// double-buffered hot path of the generational loop.
///
/// `next` is cleared and refilled with one offspring per population
/// slot. Each offspring is built directly (for the paper's ≤ 64-bit
/// genomes this never touches the heap): on crossover only the one
/// surviving child is constructed ([`ops::one_point_child`]), on the
/// no-crossover branch only the surviving parent is cloned. The RNG draw
/// sequence is identical to the historical build-both-children
/// implementation, so seeded evolutions are bit-identical.
///
/// # Panics
/// Panics if lengths mismatch, the population is empty, or `elitism`
/// exceeds the population size.
pub fn next_generation_into<R: Rng + ?Sized>(
    rng: &mut R,
    params: &GaParams,
    population: &[BitStr],
    fitnesses: &[f64],
    next: &mut Vec<BitStr>,
) {
    assert_eq!(
        population.len(),
        fitnesses.len(),
        "one fitness per genome is required"
    );
    assert!(!population.is_empty(), "empty population");
    assert!(
        params.elitism <= population.len(),
        "elitism exceeds population size"
    );
    params.validate().expect("invalid GA parameters");

    next.clear();

    if params.elitism > 0 {
        let mut ranked: Vec<usize> = (0..population.len()).collect();
        ranked.sort_by(|&a, &b| {
            fitnesses[b]
                .partial_cmp(&fitnesses[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &i in ranked.iter().take(params.elitism) {
            next.push(population[i].clone());
        }
    }

    while next.len() < population.len() {
        let p1 = params.selection.select(rng, fitnesses);
        let p2 = params.selection.select(rng, fitnesses);
        let (a, b) = (&population[p1], &population[p2]);
        let mut child = if rng.gen_bool(params.crossover_prob) {
            if a.len() < 2 {
                // No interior cut point exists: the "children" are the
                // parents themselves (see ops::one_point_crossover).
                if rng.gen_bool(0.5) {
                    a.clone()
                } else {
                    b.clone()
                }
            } else {
                let cut = rng.gen_range(1..a.len());
                // "One of the two strategies created after crossover is
                // randomly selected to the next generation" (§5) — so
                // only that one is ever built.
                let keep_first = rng.gen_bool(0.5);
                ops::one_point_child(a, b, cut, !keep_first)
            }
        } else if rng.gen_bool(0.5) {
            a.clone()
        } else {
            b.clone()
        };
        ops::bit_flip_mutation(rng, &mut child, params.mutation_prob);
        next.push(child);
    }
}

/// One generation's record from [`evolve`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// Generation index (0 = the initial random population).
    pub generation: usize,
    /// Fitness statistics of the evaluated population.
    pub stats: GenStats,
    /// The fittest genome of the generation.
    pub best: BitStr,
}

/// Runs a complete evolution: random initial population of `pop_size`
/// genomes of `genome_bits` bits, `generations` iterations of
/// evaluate-and-breed, returning one record per generation.
///
/// `evaluate` receives the whole population and returns one fitness per
/// genome — the ad hoc experiments plug the tournament evaluation in
/// here.
pub fn evolve<R, F>(
    rng: &mut R,
    params: &GaParams,
    pop_size: usize,
    genome_bits: usize,
    generations: usize,
    mut evaluate: F,
) -> Vec<GenerationRecord>
where
    R: Rng + ?Sized,
    F: FnMut(&[BitStr]) -> Vec<f64>,
{
    assert!(pop_size > 0 && generations > 0, "empty evolution requested");
    let mut population: Vec<BitStr> = (0..pop_size)
        .map(|_| BitStr::random(rng, genome_bits))
        .collect();
    let mut offspring: Vec<BitStr> = Vec::with_capacity(pop_size);
    let mut history = Vec::with_capacity(generations);
    for generation in 0..generations {
        let fitnesses = evaluate(&population);
        assert_eq!(
            fitnesses.len(),
            population.len(),
            "evaluator length mismatch"
        );
        let stats = GenStats::from_fitnesses(&fitnesses);
        let best_idx = (0..fitnesses.len())
            .max_by(|&a, &b| {
                fitnesses[a]
                    .partial_cmp(&fitnesses[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty population");
        history.push(GenerationRecord {
            generation,
            stats,
            best: population[best_idx].clone(),
        });
        if generation + 1 < generations {
            next_generation_into(rng, params, &population, &fitnesses, &mut offspring);
            std::mem::swap(&mut population, &mut offspring);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn ones_fitness(pop: &[BitStr]) -> Vec<f64> {
        pop.iter().map(|g| g.count_ones() as f64).collect()
    }

    #[test]
    fn next_generation_preserves_size_and_width() {
        let mut r = rng(0);
        let pop: Vec<BitStr> = (0..20).map(|_| BitStr::random(&mut r, 13)).collect();
        let fit = ones_fitness(&pop);
        let next = next_generation(&mut r, &GaParams::paper(), &pop, &fit);
        assert_eq!(next.len(), 20);
        assert!(next.iter().all(|g| g.len() == 13));
    }

    #[test]
    fn into_variant_reuses_buffer_and_matches_allocating_variant() {
        let mut r = rng(31);
        let pop: Vec<BitStr> = (0..20).map(|_| BitStr::random(&mut r, 13)).collect();
        let fit = ones_fitness(&pop);
        let fresh = next_generation(&mut rng(99), &GaParams::paper(), &pop, &fit);
        // Same seed, reused (pre-dirtied) buffer: identical offspring.
        let mut buffer = vec![BitStr::ones(13); 7];
        next_generation_into(&mut rng(99), &GaParams::paper(), &pop, &fit, &mut buffer);
        assert_eq!(fresh, buffer);
    }

    #[test]
    fn into_variant_matches_with_elitism_and_tiny_genomes() {
        for (bits, elitism) in [(1usize, 0usize), (13, 3), (64, 1), (70, 0)] {
            let mut r = rng(bits as u64);
            let pop: Vec<BitStr> = (0..10).map(|_| BitStr::random(&mut r, bits)).collect();
            let fit = ones_fitness(&pop);
            let params = GaParams {
                elitism,
                ..GaParams::paper()
            };
            let fresh = next_generation(&mut rng(5), &params, &pop, &fit);
            let mut buffer = Vec::new();
            next_generation_into(&mut rng(5), &params, &pop, &fit, &mut buffer);
            assert_eq!(fresh, buffer, "bits={bits} elitism={elitism}");
        }
    }

    #[test]
    fn onemax_converges() {
        let mut r = rng(1);
        let history = evolve(&mut r, &GaParams::paper(), 40, 16, 60, ones_fitness);
        assert_eq!(history.len(), 60);
        let first = &history[0];
        let last = &history[59];
        assert!(
            last.stats.mean > first.stats.mean + 3.0,
            "mean fitness should rise: {} -> {}",
            first.stats.mean,
            last.stats.mean
        );
        assert!(last.stats.best >= 15.0, "best = {}", last.stats.best);
    }

    #[test]
    fn elitism_never_loses_the_best() {
        let mut r = rng(2);
        let params = GaParams {
            elitism: 2,
            ..GaParams::paper()
        };
        let pop: Vec<BitStr> = (0..10).map(|_| BitStr::random(&mut r, 8)).collect();
        let fit = ones_fitness(&pop);
        let best_fit = fit.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for seed in 0..20 {
            let next = next_generation(&mut rng(seed), &params, &pop, &fit);
            let next_best = next.iter().map(|g| g.count_ones()).max().unwrap();
            assert!(next_best as f64 >= best_fit, "elite lost at seed {seed}");
        }
    }

    #[test]
    fn zero_mutation_zero_crossover_only_clones() {
        let mut r = rng(3);
        let params = GaParams {
            crossover_prob: 0.0,
            mutation_prob: 0.0,
            ..GaParams::paper()
        };
        let pop: Vec<BitStr> = (0..10).map(|_| BitStr::random(&mut r, 13)).collect();
        let fit = ones_fitness(&pop);
        let next = next_generation(&mut r, &params, &pop, &fit);
        for child in &next {
            assert!(pop.contains(child), "child is not a clone of any parent");
        }
    }

    #[test]
    fn selection_pressure_enriches_fit_genomes() {
        // Population: half all-zeros, half all-ones. With cloning only,
        // the next generation should be mostly all-ones.
        let mut pop = vec![BitStr::zeros(8); 10];
        pop.extend(vec![BitStr::ones(8); 10]);
        let fit = ones_fitness(&pop);
        let params = GaParams {
            crossover_prob: 0.0,
            mutation_prob: 0.0,
            ..GaParams::paper()
        };
        let next = next_generation(&mut rng(4), &params, &pop, &fit);
        let ones = next.iter().filter(|g| g.count_ones() == 8).count();
        assert!(ones > 12, "expected enrichment, got {ones}/20");
    }

    #[test]
    fn evolve_is_deterministic_under_seed() {
        let run = |seed| {
            let mut r = rng(seed);
            evolve(&mut r, &GaParams::paper(), 10, 13, 10, ones_fitness)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn history_records_are_indexed() {
        let mut r = rng(5);
        let history = evolve(&mut r, &GaParams::paper(), 5, 5, 7, ones_fitness);
        for (i, rec) in history.iter().enumerate() {
            assert_eq!(rec.generation, i);
            assert!(rec.stats.best >= rec.stats.mean);
            assert!(rec.stats.mean >= rec.stats.worst);
        }
    }

    #[test]
    #[should_panic(expected = "one fitness per genome")]
    fn fitness_length_mismatch_panics() {
        let pop = vec![BitStr::zeros(5)];
        next_generation(&mut rng(0), &GaParams::paper(), &pop, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "elitism exceeds")]
    fn oversized_elitism_panics() {
        let pop = vec![BitStr::zeros(5)];
        let params = GaParams {
            elitism: 2,
            ..GaParams::paper()
        };
        next_generation(&mut rng(0), &params, &pop, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid GA parameters")]
    fn bad_probability_panics() {
        let pop = vec![BitStr::zeros(5)];
        let params = GaParams {
            crossover_prob: 1.5,
            ..GaParams::paper()
        };
        next_generation(&mut rng(0), &params, &pop, &[1.0]);
    }
}
