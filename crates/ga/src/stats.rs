//! Per-generation fitness statistics.

use serde::{Deserialize, Serialize};

/// Summary of one generation's fitness distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenStats {
    /// Highest fitness.
    pub best: f64,
    /// Mean fitness.
    pub mean: f64,
    /// Lowest fitness.
    pub worst: f64,
    /// Sample standard deviation (0 for populations of one).
    pub std_dev: f64,
}

impl GenStats {
    /// Computes the statistics of a fitness vector.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn from_fitnesses(fitnesses: &[f64]) -> Self {
        assert!(!fitnesses.is_empty(), "no fitnesses to summarize");
        let n = fitnesses.len() as f64;
        let mean = fitnesses.iter().sum::<f64>() / n;
        let best = fitnesses.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let worst = fitnesses.iter().copied().fold(f64::INFINITY, f64::min);
        let std_dev = if fitnesses.len() > 1 {
            (fitnesses.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        GenStats {
            best,
            mean,
            worst,
            std_dev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = GenStats::from_fitnesses(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.best, 4.0);
        assert_eq!(s.worst, 1.0);
        assert_eq!(s.mean, 2.5);
        // Sample variance of 1..4 is 5/3.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_individual() {
        let s = GenStats::from_fitnesses(&[7.5]);
        assert_eq!(s.best, 7.5);
        assert_eq!(s.worst, 7.5);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "no fitnesses")]
    fn empty_panics() {
        let _ = GenStats::from_fitnesses(&[]);
    }

    #[test]
    fn flat_population_has_zero_spread() {
        let s = GenStats::from_fitnesses(&[2.0; 50]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.best, s.worst);
    }
}
