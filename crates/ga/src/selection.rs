//! Parent-selection operators.
//!
//! The paper uses *tournament selection* ("we apply similar evolutionary
//! technique as in IPDRP problem \[12\] except that we use a tournament
//! selection instead of a roulette one", §5); roulette is provided for
//! ablation A3 and for the IPDRP baseline itself.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A parent-selection operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selection {
    /// Pick `size` individuals uniformly, keep the fittest (ties go to
    /// the earlier pick). The paper does not state the tournament size;
    /// 2 is the standard default (DESIGN.md §1).
    Tournament {
        /// Number of contestants per selection.
        size: usize,
    },
    /// Fitness-proportionate selection over min-shifted fitnesses (the
    /// operator of the IPDRP reference \[12\]).
    Roulette,
}

impl Selection {
    /// The paper's operator: size-2 tournament.
    pub fn paper() -> Self {
        Selection::Tournament { size: 2 }
    }

    /// Selects one parent index given the population's fitnesses.
    ///
    /// # Panics
    /// Panics on an empty population or a zero-size tournament.
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R, fitnesses: &[f64]) -> usize {
        assert!(
            !fitnesses.is_empty(),
            "cannot select from an empty population"
        );
        match *self {
            Selection::Tournament { size } => {
                assert!(size > 0, "tournament size must be positive");
                let mut best = rng.gen_range(0..fitnesses.len());
                for _ in 1..size {
                    let c = rng.gen_range(0..fitnesses.len());
                    if fitnesses[c] > fitnesses[best] {
                        best = c;
                    }
                }
                best
            }
            Selection::Roulette => {
                // Shift so the minimum is 0; a flat population degrades to
                // uniform selection.
                let min = fitnesses.iter().copied().fold(f64::INFINITY, f64::min);
                let total: f64 = fitnesses.iter().map(|f| f - min).sum();
                if total <= 0.0 {
                    return rng.gen_range(0..fitnesses.len());
                }
                // Shared categorical walk (ahn_stats::sampling); the
                // floating-point-slack fallback is the last
                // positive-weight individual, so a zero-weight (minimum
                // fitness) straggler can never be selected. Note two
                // deliberate edge-behavior unifications vs the historical
                // inline walk (both affect only exact-boundary draws,
                // probability ~2^-53, and only roulette — the paper's GA
                // uses tournament selection, which is untouched): a draw
                // landing exactly on a cumulative sum now selects the
                // *next* individual (strict `<` before subtracting,
                // matching the path samplers), and the slack fallback is
                // the last positive weight rather than the last index.
                let x = rng.gen::<f64>() * total;
                let weights = || fitnesses.iter().map(|f| f - min);
                ahn_stats::walk_categorical(x, weights())
                    .unwrap_or_else(|| ahn_stats::last_positive_category(weights()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn selection_counts(sel: Selection, fitnesses: &[f64], n: usize, seed: u64) -> Vec<usize> {
        let mut r = rng(seed);
        let mut counts = vec![0usize; fitnesses.len()];
        for _ in 0..n {
            counts[sel.select(&mut r, fitnesses)] += 1;
        }
        counts
    }

    #[test]
    fn tournament_prefers_fitter_individuals() {
        let counts = selection_counts(Selection::paper(), &[1.0, 2.0, 3.0, 4.0], 40_000, 1);
        // Size-2 tournament selection probabilities for ranked fitnesses
        // (n=4): (2*rank-1)/n^2 = 1/16, 3/16, 5/16, 7/16.
        let expect = [2_500.0, 7_500.0, 12_500.0, 17_500.0];
        for (i, (&c, &e)) in counts.iter().zip(&expect).enumerate() {
            let c = c as f64;
            assert!((c - e).abs() < e * 0.12 + 200.0, "idx {i}: {c} vs {e}");
        }
    }

    #[test]
    fn tournament_size_one_is_uniform() {
        let counts = selection_counts(Selection::Tournament { size: 1 }, &[1.0, 100.0], 10_000, 2);
        assert!((counts[0] as i64 - 5_000).abs() < 500, "{counts:?}");
    }

    #[test]
    fn large_tournament_is_nearly_elitist() {
        let counts = selection_counts(
            Selection::Tournament { size: 16 },
            &[0.0, 0.0, 0.0, 10.0],
            1_000,
            3,
        );
        assert!(counts[3] > 980, "{counts:?}");
    }

    #[test]
    fn roulette_is_fitness_proportionate_after_shift() {
        // Shifted fitnesses: [0, 1, 3] -> probabilities 0, 1/4, 3/4.
        let counts = selection_counts(Selection::Roulette, &[1.0, 2.0, 4.0], 40_000, 4);
        assert_eq!(counts[0], 0, "minimum gets zero mass after the shift");
        assert!((counts[1] as f64 - 10_000.0).abs() < 1_000.0, "{counts:?}");
        assert!((counts[2] as f64 - 30_000.0).abs() < 1_000.0, "{counts:?}");
    }

    #[test]
    fn roulette_flat_population_is_uniform() {
        let counts = selection_counts(Selection::Roulette, &[2.0, 2.0, 2.0, 2.0], 20_000, 5);
        for &c in &counts {
            assert!((c as f64 - 5_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        Selection::paper().select(&mut rng(0), &[]);
    }

    #[test]
    #[should_panic(expected = "tournament size")]
    fn zero_tournament_panics() {
        Selection::Tournament { size: 0 }.select(&mut rng(0), &[1.0]);
    }

    #[test]
    fn single_individual_is_always_selected() {
        assert_eq!(Selection::paper().select(&mut rng(0), &[3.0]), 0);
        assert_eq!(Selection::Roulette.select(&mut rng(0), &[3.0]), 0);
    }
}
