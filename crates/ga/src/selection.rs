//! Parent-selection operators.
//!
//! The paper uses *tournament selection* ("we apply similar evolutionary
//! technique as in IPDRP problem \[12\] except that we use a tournament
//! selection instead of a roulette one", §5); roulette is provided for
//! ablation A3 and for the IPDRP baseline itself.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A parent-selection operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Selection {
    /// Pick `size` individuals uniformly, keep the fittest (ties go to
    /// the earlier pick). The paper does not state the tournament size;
    /// 2 is the standard default (DESIGN.md §1).
    Tournament {
        /// Number of contestants per selection.
        size: usize,
    },
    /// Fitness-proportionate selection over min-shifted fitnesses (the
    /// operator of the IPDRP reference \[12\]).
    Roulette,
    /// Linear ranking selection (Baker): individuals are ranked by
    /// fitness and selected with probability linear in rank, so the
    /// *spacing* of fitness values stops mattering — only their order.
    /// One of the selection-pressure variants of the reconstruction
    /// search (`ahn_core::calibrate`); the paper itself uses tournament
    /// selection.
    Rank {
        /// Expected number of offspring of the best-ranked individual,
        /// in `[1, 2]`: 1 degrades to uniform selection, 2 is the
        /// strongest linear-ranking pressure.
        pressure: f64,
    },
}

impl Selection {
    /// The paper's operator: size-2 tournament.
    pub fn paper() -> Self {
        Selection::Tournament { size: 2 }
    }

    /// Validates the operator's parameters (the probability-range
    /// analogue of `GaParams::validate`, which calls this).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Selection::Tournament { size } => {
                if size == 0 {
                    return Err("tournament size must be positive".into());
                }
            }
            Selection::Roulette => {}
            Selection::Rank { pressure } => {
                if !(1.0..=2.0).contains(&pressure) {
                    return Err(format!("rank pressure {pressure} outside [1, 2]"));
                }
            }
        }
        Ok(())
    }

    /// Selects one parent index given the population's fitnesses.
    ///
    /// # Panics
    /// Panics on an empty population or a zero-size tournament.
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R, fitnesses: &[f64]) -> usize {
        assert!(
            !fitnesses.is_empty(),
            "cannot select from an empty population"
        );
        match *self {
            Selection::Tournament { size } => {
                assert!(size > 0, "tournament size must be positive");
                let mut best = rng.gen_range(0..fitnesses.len());
                for _ in 1..size {
                    let c = rng.gen_range(0..fitnesses.len());
                    if fitnesses[c] > fitnesses[best] {
                        best = c;
                    }
                }
                best
            }
            Selection::Roulette => {
                // Shift so the minimum is 0; a flat population degrades to
                // uniform selection.
                let min = fitnesses.iter().copied().fold(f64::INFINITY, f64::min);
                let total: f64 = fitnesses.iter().map(|f| f - min).sum();
                if total <= 0.0 {
                    return rng.gen_range(0..fitnesses.len());
                }
                // Shared categorical walk (ahn_stats::sampling); the
                // floating-point-slack fallback is the last
                // positive-weight individual, so a zero-weight (minimum
                // fitness) straggler can never be selected. Note two
                // deliberate edge-behavior unifications vs the historical
                // inline walk (both affect only exact-boundary draws,
                // probability ~2^-53, and only roulette — the paper's GA
                // uses tournament selection, which is untouched): a draw
                // landing exactly on a cumulative sum now selects the
                // *next* individual (strict `<` before subtracting,
                // matching the path samplers), and the slack fallback is
                // the last positive weight rather than the last index.
                let x = rng.gen::<f64>() * total;
                let weights = || fitnesses.iter().map(|f| f - min);
                ahn_stats::walk_categorical(x, weights())
                    .unwrap_or_else(|| ahn_stats::last_positive_category(weights()))
            }
            Selection::Rank { pressure } => {
                assert!(
                    (1.0..=2.0).contains(&pressure),
                    "rank pressure must be in [1, 2]"
                );
                let n = fitnesses.len();
                if n == 1 {
                    return 0;
                }
                // Rank 0 = worst .. n-1 = best, ties broken by index so
                // the weights are a pure function of the fitness vector.
                // The ranking is recomputed per call (selection is a
                // stateless operator); at the GA's population sizes
                // (≤ 100) the O(n log n) sort is noise next to the
                // tournament evaluation that produced the fitnesses —
                // revisit only if rank selection ever reaches a hot
                // loop.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| fitnesses[a].total_cmp(&fitnesses[b]).then(a.cmp(&b)));
                let mut rank_of = vec![0usize; n];
                for (rank, &idx) in order.iter().enumerate() {
                    rank_of[idx] = rank;
                }
                // Baker's linear ranking: weight(rank) =
                // (2 - s) + 2 (s - 1) rank / (n - 1); the weights sum
                // to exactly n, but the walk recomputes the total so
                // floating-point slack cannot skew the last category.
                let weight = |i: usize| {
                    (2.0 - pressure) + 2.0 * (pressure - 1.0) * rank_of[i] as f64 / (n - 1) as f64
                };
                let weights = || (0..n).map(weight);
                let total: f64 = weights().sum();
                let x = rng.gen::<f64>() * total;
                ahn_stats::walk_categorical(x, weights())
                    .unwrap_or_else(|| ahn_stats::last_positive_category(weights()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn selection_counts(sel: Selection, fitnesses: &[f64], n: usize, seed: u64) -> Vec<usize> {
        let mut r = rng(seed);
        let mut counts = vec![0usize; fitnesses.len()];
        for _ in 0..n {
            counts[sel.select(&mut r, fitnesses)] += 1;
        }
        counts
    }

    #[test]
    fn tournament_prefers_fitter_individuals() {
        let counts = selection_counts(Selection::paper(), &[1.0, 2.0, 3.0, 4.0], 40_000, 1);
        // Size-2 tournament selection probabilities for ranked fitnesses
        // (n=4): (2*rank-1)/n^2 = 1/16, 3/16, 5/16, 7/16.
        let expect = [2_500.0, 7_500.0, 12_500.0, 17_500.0];
        for (i, (&c, &e)) in counts.iter().zip(&expect).enumerate() {
            let c = c as f64;
            assert!((c - e).abs() < e * 0.12 + 200.0, "idx {i}: {c} vs {e}");
        }
    }

    #[test]
    fn tournament_size_one_is_uniform() {
        let counts = selection_counts(Selection::Tournament { size: 1 }, &[1.0, 100.0], 10_000, 2);
        assert!((counts[0] as i64 - 5_000).abs() < 500, "{counts:?}");
    }

    #[test]
    fn large_tournament_is_nearly_elitist() {
        let counts = selection_counts(
            Selection::Tournament { size: 16 },
            &[0.0, 0.0, 0.0, 10.0],
            1_000,
            3,
        );
        assert!(counts[3] > 980, "{counts:?}");
    }

    #[test]
    fn roulette_is_fitness_proportionate_after_shift() {
        // Shifted fitnesses: [0, 1, 3] -> probabilities 0, 1/4, 3/4.
        let counts = selection_counts(Selection::Roulette, &[1.0, 2.0, 4.0], 40_000, 4);
        assert_eq!(counts[0], 0, "minimum gets zero mass after the shift");
        assert!((counts[1] as f64 - 10_000.0).abs() < 1_000.0, "{counts:?}");
        assert!((counts[2] as f64 - 30_000.0).abs() < 1_000.0, "{counts:?}");
    }

    #[test]
    fn roulette_flat_population_is_uniform() {
        let counts = selection_counts(Selection::Roulette, &[2.0, 2.0, 2.0, 2.0], 20_000, 5);
        for &c in &counts {
            assert!((c as f64 - 5_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        Selection::paper().select(&mut rng(0), &[]);
    }

    #[test]
    #[should_panic(expected = "tournament size")]
    fn zero_tournament_panics() {
        Selection::Tournament { size: 0 }.select(&mut rng(0), &[1.0]);
    }

    #[test]
    fn single_individual_is_always_selected() {
        assert_eq!(Selection::paper().select(&mut rng(0), &[3.0]), 0);
        assert_eq!(Selection::Roulette.select(&mut rng(0), &[3.0]), 0);
        let rank = Selection::Rank { pressure: 2.0 };
        assert_eq!(rank.select(&mut rng(0), &[3.0]), 0);
    }

    #[test]
    fn rank_selection_is_linear_in_rank_not_fitness() {
        // Fitness spacing is wildly uneven, but ranking only sees the
        // order: with s = 2 the probabilities are 2 rank / (n (n-1)) =
        // 0, 1/6, 2/6, 3/6 for n = 4.
        let counts = selection_counts(
            Selection::Rank { pressure: 2.0 },
            &[1.0, 1.5, 100.0, 101.0],
            60_000,
            6,
        );
        assert_eq!(counts[0], 0, "the worst gets zero mass at s = 2");
        let expect = [0.0, 10_000.0, 20_000.0, 30_000.0];
        for (i, (&c, &e)) in counts.iter().zip(&expect).enumerate().skip(1) {
            let c = c as f64;
            assert!((c - e).abs() < e * 0.1 + 300.0, "idx {i}: {c} vs {e}");
        }
    }

    #[test]
    fn rank_pressure_one_is_uniform() {
        let counts = selection_counts(
            Selection::Rank { pressure: 1.0 },
            &[5.0, 1.0, 3.0],
            30_000,
            7,
        );
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "{counts:?}");
        }
    }

    #[test]
    fn rank_ties_are_broken_by_index_deterministically() {
        // A flat population still has a total rank order (by index), so
        // two identical draws select identically.
        let sel = Selection::Rank { pressure: 1.8 };
        let picks_a: Vec<usize> = (0..50)
            .map(|_| sel.select(&mut rng(8), &[2.0; 5]))
            .collect();
        let picks_b: Vec<usize> = (0..50)
            .map(|_| sel.select(&mut rng(8), &[2.0; 5]))
            .collect();
        assert_eq!(picks_a, picks_b);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(Selection::Tournament { size: 0 }.validate().is_err());
        assert!(Selection::Rank { pressure: 0.5 }.validate().is_err());
        assert!(Selection::Rank { pressure: 2.5 }.validate().is_err());
        Selection::Rank { pressure: 1.5 }.validate().unwrap();
        Selection::Roulette.validate().unwrap();
        Selection::paper().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "rank pressure")]
    fn out_of_range_pressure_panics() {
        Selection::Rank { pressure: 3.0 }.select(&mut rng(0), &[1.0, 2.0]);
    }
}
