//! `ahn-exp` — regenerate every table and figure of the paper.
//!
//! ```text
//! ahn-exp <command> [--preset smoke|scaled|paper] [--config FILE.json]
//!                   [--reps N] [--gens N] [--rounds N] [--seed S]
//!                   [--out DIR]
//!
//! `--config` loads a full serde `ExperimentConfig` (see
//! `configs/example.json`); later flags override individual fields.
//!
//! commands:
//!   fig4                cooperation evolution, cases 1-4 (Figure 4)
//!   table5              per-environment cooperation, cases 3-4 (Table 5)
//!   table6              forwarding-request responses (Table 6)
//!   table7              most popular strategies (Table 7)
//!   table8              sub-strategies, case 3 (Table 8)
//!   table9              sub-strategies, case 4 (Table 9)
//!   all                 everything above from one set of runs (+ JSON dump)
//!   ipdrp               IPDRP baseline evolution (X3)
//!   baseline-pathrater  avoidance-only baseline (X1)
//!   ablate-payoff       A1: payoff-table readings
//!   ablate-activity     A2: 13-bit vs 5-bit chromosome
//!   ablate-selection    A3: tournament vs roulette
//!   ablate-trust-table  A5: trust-threshold sensitivity
//!   ablate-unknown      A6: unknown-node bit pinning
//!   ablate-gossip       A7: second-hand reputation (CORE/CONFIDANT style)
//!   transfer            strategy transfer across cases (extension)
//!   newcomer            newcomer-join experiment (extension)
//!   sleepers            activity-dimension sleeper study (extension)
//!   sweep-rounds        cooperation vs reputation horizon R
//!   sweep-csn           cooperation vs selfish-node density
//!   sweep-mutation      cooperation vs GA mutation rate
//!   sweep               scenario-sweep grid: case x payoff x size x seed-block
//!   calibrate           reconstruction search: payoff-table family x scale x
//!                       selection variant, scored against the paper targets
//!   fidelity            assert per-case cooperation within tolerance of the
//!                       paper targets (the CI reproduction-fidelity smoke)
//!   trace               dump a JSON decision trace of one tournament, or —
//!                       given trace files — join them into per-cell span
//!                       trees (`ahn-exp trace [--require-complete N] FILE..`)
//!   check               verify the paper-input presets (Tables 1-4)
//!   bench               time the artifact pipelines (PERFORMANCE.md)
//!   serve               run the HTTP job server (crates/serve)
//!   worker              pull cells from a serve node and compute them
//!   loadtest            drive a running server, report p50/p99 + req/s
//! ```
//!
//! `sweep` and `calibrate` also accept `--via ADDR` (run the grid
//! through a serve node, distributed across its workers) and
//! `--journal FILE` (checkpoint completed cells; resume skips them).
//!
//! `serve`, `worker`, `sweep`, `calibrate` and the experiment commands
//! all accept `--trace FILE`: each node appends checksummed JSON span
//! events ([`ahn_obs::TraceLog`]) keyed by a trace id derived from the
//! cell's canonical hash, so `ahn-exp trace FILE..` reconstructs one
//! cell's submit → enqueue → lease → compute → complete → merge
//! lifecycle across server, worker and coordinator logs.

use ahn_core::{
    ablations, baselines, cases::CaseSpec, config::ExperimentConfig, experiment, extensions, report,
};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return;
    }
    let command = args[0].clone();
    // bench/serve/loadtest have their own flag sets; they do not share
    // the experiment-configuration options.
    if command == "bench" {
        bench(&args[1..]);
        return;
    }
    if command == "serve" {
        serve(&args[1..]);
        return;
    }
    if command == "loadtest" {
        loadtest(&args[1..]);
        return;
    }
    if command == "worker" {
        worker(&args[1..]);
        return;
    }
    if command == "sweep" {
        sweep(&args[1..]);
        return;
    }
    if command == "scenario" {
        scenario(&args[1..]);
        return;
    }
    if command == "atlas" {
        atlas(&args[1..]);
        return;
    }
    if command == "calibrate" {
        calibrate(&args[1..]);
        return;
    }
    if command == "fidelity" {
        fidelity(&args[1..]);
        return;
    }
    // `trace` is two commands sharing a name: with trace-file arguments
    // it joins span logs; with experiment flags only, it keeps its
    // original meaning (dump a game decision trace).
    if command == "trace" && trace_join_requested(&args[1..]) {
        trace_join(&args[1..]);
        return;
    }
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };

    match command.as_str() {
        "fig4" => fig4(&opts),
        "table5" => table5(&opts),
        "table6" => table6(&opts),
        "table7" => table7(&opts),
        "table8" => table8_9(&opts, 3),
        "table9" => table8_9(&opts, 4),
        "all" => all(&opts),
        "ipdrp" => ipdrp(&opts),
        "baseline-pathrater" => pathrater(&opts),
        "ablate-payoff" => ablate(&opts, "A1 payoff-table reading", ablations::ablate_payoff),
        "ablate-activity" => ablate(&opts, "A2 activity dimension", ablations::ablate_activity),
        "ablate-selection" => ablate(&opts, "A3 selection operator", ablations::ablate_selection),
        "ablate-trust-table" => ablate(
            &opts,
            "A5 trust-table thresholds",
            ablations::ablate_trust_table,
        ),
        "ablate-unknown" => ablate(&opts, "A6 unknown-node bit", ablations::ablate_unknown),
        "ablate-gossip" => ablate(&opts, "A7 second-hand reputation", ablations::ablate_gossip),
        "transfer" => transfer(&opts),
        "newcomer" => newcomer(&opts),
        "sleepers" => sleepers(&opts),
        "sweep-rounds" => sweep_rounds(&opts),
        "sweep-csn" => sweep_csn(&opts),
        "sweep-mutation" => sweep_mutation(&opts),
        "trace" => trace(&opts),
        "check" => {
            let results = ahn_core::checks::run_all();
            match ahn_core::checks::render(&results) {
                Ok(text) => print!("{text}"),
                Err(text) => {
                    print!("{text}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    println!(
        "ahn-exp — regenerate the tables and figures of Seredynski et al. (IPDPS'07)\n\n\
         usage: ahn-exp <command> [--preset smoke|scaled|paper] [--reps N]\n\
                [--gens N] [--rounds N] [--seed S] [--out DIR] [--trace FILE]\n\
                ahn-exp sweep [--scenarios base,slanderers,..] [--cases 1,2,..]\n\
                              [--payoffs paper,..] [--sizes 10,50,..]\n\
                              [--seed-blocks N] [--json] [--via ADDR] [--journal FILE]\n\
                              [--trace FILE] [+ the experiment flags above]\n\
                ahn-exp scenario list [--json]      (the adversary-zoo registry)\n\
                ahn-exp scenario run NAME [--defense watchdog|core|confidant]\n\
                                          [--size N] [+ the experiment flags above]\n\
                ahn-exp atlas [--json FILE] [--out FILE] [--scenarios a,b,..] [--size N]\n\
                              (scenario x defense grid; no args prints markdown)\n\
                ahn-exp calibrate [--cases 1,2,..] [--scales 0.5,1,..]\n\
                                  [--selections paper,rank,..] [--size N]\n\
                                  [--seed-blocks N] [--max-candidates N] [--json]\n\
                                  [--via ADDR] [--journal FILE] [--trace FILE]\n\
                                  [+ the experiment flags above]\n\
                ahn-exp fidelity [--cases 1,3] [--tol F] [+ the experiment flags]\n\
                ahn-exp bench [--json] [--baseline FILE.json] [--max-regression F]\n\
                              [--threads 1,4,8]\n\
                ahn-exp serve [--addr A] [--workers N] [--cache-cap N] [--queue-cap N]\n\
                              [--journal FILE] [--trace FILE]  (--workers 0 = pull-only)\n\
                ahn-exp worker [--addr A] [--lease-ms N] [--poll-ms N] [--max-cells N]\n\
                               [--exit-when-idle] [--trace FILE]\n\
                ahn-exp loadtest [--addr A] [--connections N] [--requests N]\n\
                                 [--distinct N] [--json] [--min-hit-rate F] [--shutdown]\n\
                ahn-exp trace [--require-complete N] FILE..   (join span logs)\n\n\
         commands: fig4 table5 table6 table7 table8 table9 all ipdrp\n\
                   baseline-pathrater ablate-payoff ablate-activity\n\
                   ablate-selection ablate-trust-table ablate-unknown\n\
                   ablate-gossip transfer newcomer sleepers\n\
                   sweep-rounds sweep-csn sweep-mutation sweep scenario atlas\n\
                   calibrate fidelity trace check bench serve worker loadtest"
    );
}

/// `ahn-exp bench` flags.
#[derive(Debug, Clone, PartialEq)]
struct BenchFlags {
    json: bool,
    baseline_path: Option<String>,
    max_regression: f64,
    threads: Vec<usize>,
}

fn parse_bench_flags(args: &[String]) -> Result<BenchFlags, String> {
    let mut flags = BenchFlags {
        json: false,
        baseline_path: None,
        max_regression: 2.0,
        threads: vec![1, 4, 8],
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => flags.json = true,
            "--baseline" => match it.next() {
                Some(p) => flags.baseline_path = Some(p.clone()),
                None => return Err("--baseline needs a file".into()),
            },
            "--max-regression" => match it.next().map(|s| s.parse::<f64>()) {
                Some(Ok(f)) if f >= 1.0 => flags.max_regression = f,
                _ => return Err("--max-regression needs a factor >= 1".into()),
            },
            // The report schema has rows for exactly t = 1, 4, 8; other
            // counts would be measured into the void.
            "--threads" => match it.next() {
                Some(list) => {
                    let parsed: Result<Vec<usize>, _> =
                        list.split(',').map(|s| s.trim().parse::<usize>()).collect();
                    match parsed {
                        Ok(counts)
                            if !counts.is_empty()
                                && counts.iter().all(|t| [1, 4, 8].contains(t)) =>
                        {
                            flags.threads = counts
                        }
                        _ => return Err("--threads needs a comma-separated subset of 1,4,8".into()),
                    }
                }
                None => return Err("--threads needs a comma-separated subset of 1,4,8".into()),
            },
            other => return Err(format!("unknown bench flag {other:?}")),
        }
    }
    Ok(flags)
}

/// `ahn-exp bench`: time the artifact pipelines and game throughput
/// (PERFORMANCE.md documents the protocol and the `BENCH_N.json`
/// convention).
fn bench(args: &[String]) {
    let BenchFlags {
        json,
        baseline_path,
        max_regression,
        threads,
    } = match parse_bench_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if let Some(reason) = ahn_bench::harness::portable_build_warning() {
        eprintln!("warning: {reason}");
    }
    ahn_core::threads::log_once("bench");
    eprintln!("measuring (min of {} runs per pipeline)...", {
        ahn_bench::harness::MEASURE_RUNS
    });
    let report = ahn_bench::harness::run_bench(&threads);
    if json {
        match serde_json::to_string_pretty(&report) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: cannot serialize report: {e}");
                std::process::exit(1);
            }
        }
    } else {
        print!("{}", ahn_bench::harness::render(&report));
    }

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline: ahn_bench::harness::BenchBaseline = match serde_json::from_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: malformed baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        match ahn_bench::harness::check_regression(&report, &baseline, max_regression) {
            Ok(()) => eprintln!(
                "within {max_regression}x of the committed baseline ({})",
                baseline.note
            ),
            Err(msg) => {
                eprintln!("error: performance regression vs {path}: {msg}");
                std::process::exit(1);
            }
        }
    }
}

fn parse_serve_flags(args: &[String]) -> Result<ahn_serve::ServerConfig, String> {
    let mut config = ahn_serve::ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            // 0 is legal: a pull-only node that computes nothing
            // itself and serves cells to `ahn-exp worker` processes.
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--cache-cap" => {
                config.cache_cap = value("--cache-cap")?
                    .parse()
                    .map_err(|e| format!("--cache-cap: {e}"))?
            }
            "--journal" => config.journal = Some(value("--journal")?.clone()),
            "--trace" => config.trace = Some(value("--trace")?.clone()),
            "--queue-cap" => match value("--queue-cap")?.parse() {
                Ok(n) if n > 0 => config.queue_cap = n,
                _ => return Err("--queue-cap needs a positive integer".into()),
            },
            // Deadline knobs, all in milliseconds, 0 = disabled.
            "--read-timeout-ms" => {
                config.read_timeout_ms = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?
            }
            "--drain-ms" => {
                config.drain_ms = value("--drain-ms")?
                    .parse()
                    .map_err(|e| format!("--drain-ms: {e}"))?
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    Ok(config)
}

/// `ahn-exp serve`: run the HTTP job server until `POST /v1/shutdown`.
fn serve(args: &[String]) {
    let config = match parse_serve_flags(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // Keep worker fan-out and per-job rayon fan-out from multiplying
    // into oversubscription: unless the operator already pinned
    // AHN_THREADS (the vendored rayon's cap, vendor/README.md), give
    // each worker an equal share of the cores.
    if std::env::var_os("AHN_THREADS").is_none() {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let share = (cores / config.workers.max(1)).max(1);
        std::env::set_var("AHN_THREADS", share.to_string());
    }
    let handle = match ahn_serve::spawn(config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!("ahn-serve listening on {}", handle.addr());
    eprintln!(
        "  {} workers, cache capacity {}, queue capacity {} (POST /v1/shutdown to stop)",
        config.workers, config.cache_cap, config.queue_cap
    );
    if let Some(path) = &config.journal {
        eprintln!("  completion journal: {path}");
    }
    if let Some(path) = &config.trace {
        eprintln!("  span trace log: {path}");
    }
    handle.join();
    eprintln!("ahn-serve: shut down cleanly");
}

/// `ahn-exp loadtest` flags: the client config plus reporting options.
#[derive(Debug, Clone, PartialEq)]
struct LoadtestFlags {
    config: ahn_serve::LoadtestConfig,
    json: bool,
    min_hit_rate: Option<f64>,
    shutdown: bool,
}

fn parse_loadtest_flags(args: &[String]) -> Result<LoadtestFlags, String> {
    let mut flags = LoadtestFlags {
        config: ahn_serve::LoadtestConfig::default(),
        json: false,
        min_hit_rate: None,
        shutdown: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => flags.config.addr = value("--addr")?.clone(),
            "--connections" => match value("--connections")?.parse() {
                Ok(n) if n > 0 => flags.config.connections = n,
                _ => return Err("--connections needs a positive integer".into()),
            },
            "--requests" => match value("--requests")?.parse() {
                Ok(n) if n > 0 => flags.config.requests = n,
                _ => return Err("--requests needs a positive integer".into()),
            },
            "--distinct" => match value("--distinct")?.parse() {
                Ok(n) if n > 0 => flags.config.distinct = n,
                _ => return Err("--distinct needs a positive integer".into()),
            },
            "--json" => flags.json = true,
            "--min-hit-rate" => match value("--min-hit-rate")?.parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => flags.min_hit_rate = Some(f),
                _ => return Err("--min-hit-rate needs a fraction in [0, 1]".into()),
            },
            "--shutdown" => flags.shutdown = true,
            other => return Err(format!("unknown loadtest flag {other:?}")),
        }
    }
    Ok(flags)
}

/// `ahn-exp loadtest`: drive a running server with a mixed
/// cache-hit/cache-miss workload and report latency + throughput.
fn loadtest(args: &[String]) {
    let flags = match parse_loadtest_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "loadtest: {} requests over {} connections against {} ({} distinct specs)...",
        flags.config.requests, flags.config.connections, flags.config.addr, flags.config.distinct
    );
    let report = match ahn_serve::run_loadtest(&flags.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if flags.json {
        match serde_json::to_string_pretty(&report) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: cannot serialize report: {e}");
                std::process::exit(1);
            }
        }
    } else {
        print!("{}", ahn_serve::loadtest::render(&report));
    }

    if flags.shutdown {
        match ahn_serve::loadtest::one_shot(&flags.config.addr, "POST", "/v1/shutdown", "") {
            Ok((200, _)) => eprintln!("sent shutdown to {}", flags.config.addr),
            Ok((status, body)) => {
                eprintln!("error: shutdown returned {status}: {body}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if report.errors > 0 {
        eprintln!("error: {} requests failed", report.errors);
        std::process::exit(1);
    }
    if let Some(min) = flags.min_hit_rate {
        let rate = report
            .server_metrics
            .as_ref()
            .map(|m| m.cache_hit_rate)
            .unwrap_or(0.0);
        if rate < min {
            eprintln!("error: cache hit rate {rate:.3} is below the required {min:.3}");
            std::process::exit(1);
        }
        eprintln!("cache hit rate {rate:.3} >= {min:.3}");
    }
}

/// `ahn-exp worker` flags: where to pull work from, when to stop, how
/// to back off and break, and which chaos faults to self-inject.
#[derive(Debug, Clone, PartialEq)]
struct WorkerFlags {
    addr: String,
    config: ahn_serve::WorkerConfig,
    /// Breaker trip threshold (consecutive failures); 0 disables.
    breaker_threshold: u32,
    /// Breaker cooldown before the half-open probe, milliseconds.
    breaker_cooldown_ms: u64,
    /// Seeded self-injected transport chaos (`--chaos-*`): the CLI face
    /// of the `FlakyTransport` harness, for drills and the CI chaos job.
    chaos: ahn_serve::FaultPlan,
    /// Span trace log path (`--trace`).
    trace: Option<String>,
}

fn parse_worker_flags(args: &[String]) -> Result<WorkerFlags, String> {
    let mut flags = WorkerFlags {
        addr: "127.0.0.1:7878".into(),
        config: ahn_serve::WorkerConfig::default(),
        breaker_threshold: 8,
        breaker_cooldown_ms: 1_000,
        chaos: ahn_serve::FaultPlan::none(),
        trace: None,
    };
    let percent = |name: &str, text: &str| -> Result<u8, String> {
        match text.parse() {
            Ok(n) if n <= 100 => Ok(n),
            _ => Err(format!("{name} needs a percentage in [0, 100]")),
        }
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => flags.addr = value("--addr")?.clone(),
            "--lease-ms" => match value("--lease-ms")?.parse() {
                Ok(n) if n > 0 => flags.config.lease_ms = n,
                _ => return Err("--lease-ms needs a positive integer".into()),
            },
            "--poll-ms" => match value("--poll-ms")?.parse() {
                Ok(n) if n > 0 => flags.config.poll_ms = n,
                _ => return Err("--poll-ms needs a positive integer".into()),
            },
            "--max-cells" => {
                flags.config.max_cells = value("--max-cells")?
                    .parse()
                    .map_err(|e| format!("--max-cells: {e}"))?
            }
            "--exit-when-idle" => flags.config.idle_exit_polls = 3,
            "--retry-base-ms" => match value("--retry-base-ms")?.parse() {
                Ok(n) if n > 0 => flags.config.backoff.base_ms = n,
                _ => return Err("--retry-base-ms needs a positive integer".into()),
            },
            "--retry-cap-ms" => match value("--retry-cap-ms")?.parse() {
                Ok(n) if n > 0 => flags.config.backoff.cap_ms = n,
                _ => return Err("--retry-cap-ms needs a positive integer".into()),
            },
            "--backoff-seed" => {
                flags.config.backoff.seed = value("--backoff-seed")?
                    .parse()
                    .map_err(|e| format!("--backoff-seed: {e}"))?
            }
            "--max-errors" => {
                flags.config.max_consecutive_errors = value("--max-errors")?
                    .parse()
                    .map_err(|e| format!("--max-errors: {e}"))?
            }
            "--breaker-threshold" => {
                flags.breaker_threshold = value("--breaker-threshold")?
                    .parse()
                    .map_err(|e| format!("--breaker-threshold: {e}"))?
            }
            "--breaker-cooldown-ms" => {
                flags.breaker_cooldown_ms = value("--breaker-cooldown-ms")?
                    .parse()
                    .map_err(|e| format!("--breaker-cooldown-ms: {e}"))?
            }
            "--chaos-seed" => {
                flags.chaos.seed = value("--chaos-seed")?
                    .parse()
                    .map_err(|e| format!("--chaos-seed: {e}"))?
            }
            "--chaos-drop-request" => {
                flags.chaos.drop_request_percent =
                    percent("--chaos-drop-request", value("--chaos-drop-request")?)?
            }
            "--chaos-drop-response" => {
                flags.chaos.drop_response_percent =
                    percent("--chaos-drop-response", value("--chaos-drop-response")?)?
            }
            "--chaos-latency-percent" => {
                flags.chaos.latency_percent =
                    percent("--chaos-latency-percent", value("--chaos-latency-percent")?)?
            }
            "--chaos-latency-ms" => {
                flags.chaos.latency_ms = value("--chaos-latency-ms")?
                    .parse()
                    .map_err(|e| format!("--chaos-latency-ms: {e}"))?
            }
            "--chaos-stall-percent" => {
                flags.chaos.stall_percent =
                    percent("--chaos-stall-percent", value("--chaos-stall-percent")?)?
            }
            "--chaos-stall-ms" => {
                flags.chaos.stall_ms = value("--chaos-stall-ms")?
                    .parse()
                    .map_err(|e| format!("--chaos-stall-ms: {e}"))?
            }
            "--chaos-partial-percent" => {
                flags.chaos.partial_write_percent =
                    percent("--chaos-partial-percent", value("--chaos-partial-percent")?)?
            }
            "--trace" => flags.trace = Some(value("--trace")?.clone()),
            other => return Err(format!("unknown worker flag {other:?}")),
        }
    }
    Ok(flags)
}

/// `ahn-exp worker`: pull cells from a serve node over
/// `POST /v1/work/claim` / `complete` until told to stop (or, with
/// `--exit-when-idle`, until the queue stays empty).
fn worker(args: &[String]) {
    let flags = match parse_worker_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("worker: pulling cells from {}...", flags.addr);
    if flags.chaos.is_active() {
        eprintln!("worker: chaos enabled: {:?}", flags.chaos);
    }
    let trace = flags.trace.as_deref().map(|path| {
        match ahn_obs::TraceLog::open(
            std::path::Path::new(path),
            &format!("worker:{}", std::process::id()),
        ) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("error: cannot open trace log {path}: {e}");
                std::process::exit(2);
            }
        }
    });
    let mut transport = ahn_serve::CircuitBreaker::new(
        ahn_serve::FlakyTransport::new(ahn_serve::HttpTransport::new(&flags.addr), flags.chaos),
        flags.breaker_threshold,
        std::time::Duration::from_millis(flags.breaker_cooldown_ms),
    );
    match ahn_serve::run_worker_observed(&mut transport, &flags.config, trace.as_ref()) {
        Ok((report, telemetry)) => {
            eprintln!(
                "worker: {} completed, {} failed, {} duplicates, {} dropped, {} empty polls, {} breaker trips",
                report.completed,
                report.failed,
                report.duplicates,
                report.dropped,
                report.empty_polls,
                report.breaker_opens
            );
            // The machine-readable exit summary: one JSON line on
            // stdout (the human-readable progress stays on stderr).
            let summary = ahn_serve::WorkerSummary::new(&report, &telemetry);
            match serde_json::to_string(&summary) {
                Ok(line) => println!("{line}"),
                Err(e) => eprintln!("warning: cannot serialize worker summary: {e}"),
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `ahn-exp sweep` flags: the grid axes plus the shared experiment
/// options for the base configuration.
#[derive(Debug, Clone, PartialEq)]
struct SweepFlags {
    scenarios: Option<Vec<String>>,
    cases: Vec<usize>,
    payoffs: Vec<String>,
    sizes: Vec<usize>,
    seed_blocks: u64,
    json: bool,
    /// Run the grid through a serve node at this address instead of
    /// computing locally (`ahn_serve::run_sweep_via`).
    via: Option<String>,
    /// Checkpoint completed cells to this journal; resume skips them.
    journal: Option<String>,
    /// Span trace log path (`--trace`): local runs record per-cell
    /// lifecycles and per-generation hot-loop samples, `--via` runs
    /// record the coordinator's side of every cell.
    trace: Option<String>,
    /// Remaining (non-sweep) flags, handed to [`Options::parse`].
    rest: Vec<String>,
}

/// Parses a non-empty comma-separated flag value (shared by the
/// sweep/calibrate/fidelity flag parsers).
fn list<T: std::str::FromStr>(name: &str, text: &str) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, _> = text.split(',').map(str::parse).collect();
    match items {
        Ok(v) if !v.is_empty() => Ok(v),
        _ => Err(format!("{name} needs a comma-separated list")),
    }
}

/// Forwards an unrecognized flag (and its value, if any) to the shared
/// experiment options, which `Options::parse` validates later. Every
/// `Options` flag takes a value, so the greedy pairing is safe.
fn pass_through(rest: &mut Vec<String>, flag: &str, it: &mut std::slice::Iter<'_, String>) {
    rest.push(flag.into());
    if let Some(v) = it.next() {
        rest.push(v.clone());
    }
}

fn parse_sweep_flags(args: &[String]) -> Result<SweepFlags, String> {
    let mut flags = SweepFlags {
        scenarios: None,
        cases: vec![1],
        payoffs: vec!["paper".into()],
        sizes: vec![50],
        seed_blocks: 1,
        json: false,
        via: None,
        journal: None,
        trace: None,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cases" => flags.cases = list("--cases", value("--cases")?)?,
            "--scenarios" => {
                let names: Vec<String> = list("--scenarios", value("--scenarios")?)?;
                if names.iter().any(String::is_empty) {
                    return Err("--scenarios needs non-empty scenario names".into());
                }
                flags.scenarios = Some(names);
            }
            "--payoffs" => flags.payoffs = list("--payoffs", value("--payoffs")?)?,
            "--sizes" => flags.sizes = list("--sizes", value("--sizes")?)?,
            "--seed-blocks" => match value("--seed-blocks")?.parse() {
                Ok(n) if n > 0 => flags.seed_blocks = n,
                _ => return Err("--seed-blocks needs a positive integer".into()),
            },
            "--json" => flags.json = true,
            "--via" => flags.via = Some(value("--via")?.clone()),
            "--journal" => flags.journal = Some(value("--journal")?.clone()),
            "--trace" => flags.trace = Some(value("--trace")?.clone()),
            other => pass_through(&mut flags.rest, other, &mut it),
        }
    }
    if flags.journal.is_some() && flags.via.is_none() {
        return Err("--journal requires --via (it checkpoints a distributed run)".into());
    }
    Ok(flags)
}

/// Opens the coordinator-side trace log for a `--via` run, exiting on
/// failure (shared by `sweep` and `calibrate`).
fn open_coordinator_trace(path: Option<&str>) -> Option<ahn_obs::TraceLog> {
    path.map(|p| {
        match ahn_obs::TraceLog::open(
            std::path::Path::new(p),
            &format!("coordinator:{}", std::process::id()),
        ) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("error: cannot open trace log {p}: {e}");
                std::process::exit(2);
            }
        }
    })
}

/// `ahn-exp sweep`: run a (case x payoff x size x seed-block) grid with
/// one pure experiment per cell, cells in parallel
/// (`ahn_core::sweeps::run_sweep`), or — with `--via ADDR` — through a
/// serve node, merging the distributed cells to the bit-identical
/// report.
fn sweep(args: &[String]) {
    let flags = match parse_sweep_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let opts = match Options::parse(&flags.rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    let grid = ahn_core::SweepGrid {
        base: opts.config.clone(),
        scenarios: flags.scenarios,
        cases: flags.cases,
        payoffs: flags.payoffs,
        sizes: flags.sizes,
        seed_blocks: (0..flags.seed_blocks).collect(),
    };
    eprintln!(
        "sweeping {} cells ({} scenarios x {} cases x {} payoffs x {} sizes x {} seed blocks, {} replications each)...",
        grid.cell_count(),
        grid.scenarios.as_ref().map(Vec::len).unwrap_or(1),
        grid.cases.len(),
        grid.payoffs.len(),
        grid.sizes.len(),
        grid.seed_blocks.len(),
        grid.base.replications
    );
    let report = if let Some(addr) = &flags.via {
        eprintln!("  distributing via {addr}...");
        let trace = open_coordinator_trace(flags.trace.as_deref());
        let mut transport = ahn_serve::HttpTransport::new(addr);
        let journal = flags.journal.as_deref().map(std::path::Path::new);
        match ahn_serve::run_sweep_via_traced(&mut transport, &grid, journal, 10, trace.as_ref()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    } else if let Some(path) = &flags.trace {
        // The observed path: bit-identical report, but every cell
        // lifecycle and per-generation hot-loop sample lands in the
        // trace log (ahn_core::run_sweep_observed keeps the unobserved
        // path's NoopRecorder at zero cost).
        let log = match ahn_obs::TraceLog::open(
            std::path::Path::new(path),
            &format!("ahn-exp:{}", std::process::id()),
        ) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("error: cannot open trace log {path}: {e}");
                std::process::exit(2);
            }
        };
        let observe = |obs: ahn_core::SweepObservation<'_>| match obs {
            ahn_core::SweepObservation::CellStart {
                spec, config_hash, ..
            } => {
                log.emit(
                    ahn_obs::TraceEvent::new(ahn_obs::trace_id_of_key(config_hash), "cell_start")
                        .key(config_hash)
                        .detail(format!(
                            "{}case {} payoff {} size {} seed_block {}",
                            spec.scenario
                                .as_deref()
                                .map(|s| format!("scenario {s} "))
                                .unwrap_or_default(),
                            spec.case_no,
                            spec.payoff,
                            spec.size,
                            spec.seed_block
                        )),
                );
            }
            ahn_core::SweepObservation::Replication {
                config_hash,
                samples,
                ..
            } => {
                let trace_id = ahn_obs::trace_id_of_key(config_hash);
                for sample in samples {
                    log.emit(ahn_obs::TraceEvent::new(trace_id, "generation").sample(sample));
                }
            }
            ahn_core::SweepObservation::CellDone {
                config_hash,
                dur_us,
                ..
            } => {
                log.emit(
                    ahn_obs::TraceEvent::new(ahn_obs::trace_id_of_key(config_hash), "cell_done")
                        .key(config_hash)
                        .dur_us(dur_us)
                        .outcome(true),
                );
            }
        };
        match ahn_core::run_sweep_observed(&grid, &observe) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    } else {
        match ahn_core::run_sweep(&grid) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    };
    let json = match serde_json::to_string_pretty(&report) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            std::process::exit(1);
        }
    };
    if flags.json {
        println!("{json}");
    } else {
        print!("{}", ahn_core::sweeps::render_sweep_report(&report));
    }
    opts.maybe_write("sweep.json", &json);
}

/// `ahn-exp calibrate` flags: the search axes plus the shared
/// experiment options for the base configuration.
#[derive(Debug, Clone, PartialEq)]
struct CalibrateFlags {
    cases: Vec<usize>,
    scales: Vec<f64>,
    selections: Vec<String>,
    size: usize,
    seed_blocks: u64,
    max_candidates: usize,
    json: bool,
    /// Run the search through a serve node at this address instead of
    /// computing locally (`ahn_serve::run_calibration_via`).
    via: Option<String>,
    /// Checkpoint completed cells to this journal; resume skips them.
    journal: Option<String>,
    /// Span trace log path (`--trace`); the coordinator records its
    /// side of every cell (requires `--via`).
    trace: Option<String>,
    /// Remaining (non-calibrate) flags, handed to [`Options::parse`].
    rest: Vec<String>,
}

fn parse_calibrate_flags(args: &[String]) -> Result<CalibrateFlags, String> {
    let mut flags = CalibrateFlags {
        cases: vec![1, 2, 3, 4],
        scales: vec![1.0],
        selections: vec!["paper".into()],
        size: 10,
        seed_blocks: 1,
        max_candidates: 0,
        json: false,
        via: None,
        journal: None,
        trace: None,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cases" => flags.cases = list("--cases", value("--cases")?)?,
            "--scales" => flags.scales = list("--scales", value("--scales")?)?,
            "--selections" => {
                flags.selections = value("--selections")?
                    .split(',')
                    .map(str::to_owned)
                    .filter(|s| !s.is_empty())
                    .collect();
                if flags.selections.is_empty() {
                    return Err("--selections needs a comma-separated list".into());
                }
            }
            "--size" => match value("--size")?.parse() {
                Ok(n) if n >= 3 => flags.size = n,
                _ => return Err("--size needs an integer >= 3".into()),
            },
            "--seed-blocks" => match value("--seed-blocks")?.parse() {
                Ok(n) if n > 0 => flags.seed_blocks = n,
                _ => return Err("--seed-blocks needs a positive integer".into()),
            },
            "--max-candidates" => {
                flags.max_candidates = value("--max-candidates")?
                    .parse()
                    .map_err(|e| format!("--max-candidates: {e}"))?
            }
            "--json" => flags.json = true,
            "--via" => flags.via = Some(value("--via")?.clone()),
            "--journal" => flags.journal = Some(value("--journal")?.clone()),
            "--trace" => flags.trace = Some(value("--trace")?.clone()),
            other => pass_through(&mut flags.rest, other, &mut it),
        }
    }
    if flags.journal.is_some() && flags.via.is_none() {
        return Err("--journal requires --via (it checkpoints a distributed run)".into());
    }
    if flags.trace.is_some() && flags.via.is_none() {
        return Err("calibrate --trace requires --via (it records the coordinator's spans)".into());
    }
    Ok(flags)
}

/// `ahn-exp scenario`: the adversary-zoo registry front end —
/// `list` prints every built-in scenario (name, hash, summary),
/// `run NAME` evaluates one scenario against a chosen defense.
fn scenario(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("list") => {
            let json = args.iter().any(|a| a == "--json");
            let all = ahn_core::builtin_scenarios();
            if json {
                println!("{}", serde_json::to_string_pretty(&all).unwrap());
                return;
            }
            println!("{} scenarios (rows of `ahn-exp atlas`):", all.len());
            for s in &all {
                println!(
                    "  {:<18} {:016x}  {}",
                    s.name,
                    s.canonical_hash(),
                    s.summary
                );
            }
        }
        Some("run") => scenario_run(&args[1..]),
        Some(other) => {
            eprintln!("error: unknown scenario subcommand {other:?} (list|run)");
            std::process::exit(2);
        }
        None => {
            eprintln!("error: scenario needs a subcommand (list|run)");
            std::process::exit(2);
        }
    }
}

/// `ahn-exp scenario run NAME`: resolve the scenario, apply it to a
/// scaled case-1 world, run the experiment, print the usual report.
fn scenario_run(args: &[String]) {
    let mut name = None;
    let mut defense = "watchdog".to_string();
    let mut size = 10usize;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--defense" => match it.next() {
                Some(d) => defense = d.clone(),
                None => {
                    eprintln!("error: --defense needs a value");
                    std::process::exit(2);
                }
            },
            "--size" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) if n >= 3 => size = n,
                _ => {
                    eprintln!("error: --size needs an integer >= 3");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => pass_through(&mut rest, flag, &mut it),
            bare if name.is_none() => name = Some(bare.to_string()),
            extra => {
                eprintln!("error: unexpected argument {extra:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(name) = name else {
        eprintln!("error: scenario run needs a scenario name (try `ahn-exp scenario list`)");
        std::process::exit(2);
    };
    // Default to the smoke preset (like calibrate) so a bare
    // `ahn-exp scenario run slanderers` finishes in seconds.
    let mut base_args = vec!["--preset".to_string(), "smoke".to_string()];
    base_args.extend(rest);
    let opts = match Options::parse(&base_args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    let run = || -> Result<(), String> {
        let scenario = ahn_core::resolve_scenario(&name)?;
        let mut config = opts.config.clone();
        config.gossip = ahn_core::atlas::resolve_defense(&defense)?;
        let case = CaseSpec::mini(&name, &[0], size, ahn_core::PathMode::Shorter);
        let (config, case) = scenario.apply(&config, &case)?;
        eprintln!(
            "running scenario {name:?} (hash {:016x}) against {defense:?}, \
             {size} participants, {} replications...",
            scenario.canonical_hash(),
            config.replications
        );
        let result = experiment::run_experiment(&config, &case);
        println!(
            "scenario {name} vs {defense}: cooperation {} ± {}",
            ahn_stats::pct(result.final_coop.mean().unwrap_or(0.0), 1),
            ahn_stats::pct(result.final_coop.ci95_half_width().unwrap_or(0.0), 1),
        );
        for (i, env) in result.per_env_csn_free.iter().enumerate() {
            println!(
                "  env {i}: attacker-free paths {}",
                ahn_stats::pct(env.mean().unwrap_or(0.0), 1)
            );
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

/// `ahn-exp atlas`: run the scenario x defense grid and emit the
/// committed artifacts — markdown to stdout or `--out`, the
/// byte-stable JSON report to `--json`.
fn atlas(args: &[String]) {
    let mut grid = ahn_core::AtlasGrid::smoke();
    let mut json_path = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("error: --json needs a file path");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            "--scenarios" => match it.next() {
                Some(names) => {
                    grid.scenarios = names.split(',').map(str::to_string).collect();
                }
                None => {
                    eprintln!("error: --scenarios needs a comma-separated list");
                    std::process::exit(2);
                }
            },
            "--size" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) if n >= 3 => grid.size = n,
                _ => {
                    eprintln!("error: --size needs an integer >= 3");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown atlas flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "atlas: {} scenarios x {} defenses at {} participants...",
        grid.scenarios.len(),
        ahn_core::atlas::DEFENSES.len(),
        grid.size
    );
    let report = match ahn_core::run_atlas(&grid) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Some(path) = &json_path {
        // serde_json's compact form is deterministic; a trailing
        // newline keeps the committed file POSIX-friendly.
        let mut bytes = serde_json::to_string(&report).unwrap();
        bytes.push('\n');
        if let Err(e) = std::fs::write(path, bytes) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("  wrote {path}");
    }
    let md = ahn_core::render_atlas(&report);
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &md) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("  wrote {path}");
        }
        None => print!("{md}"),
    }
}

/// `ahn-exp calibrate`: search the reconstruction space of the garbled
/// Fig. 2 payoff table (x scale x selection variant), scoring every
/// candidate against the paper's per-case cooperation targets
/// (`ahn_core::calibrate`). The base configuration defaults to the
/// `smoke` preset (not `scaled`) so a bare `ahn-exp calibrate` finishes
/// in seconds; override with the usual experiment flags.
fn calibrate(args: &[String]) {
    let flags = match parse_calibrate_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // Prepend the default preset so explicit flags in `rest` override it.
    let mut base_args = vec!["--preset".to_string(), "smoke".to_string()];
    base_args.extend(flags.rest.iter().cloned());
    let opts = match Options::parse(&base_args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    let grid = ahn_core::CalibrationGrid {
        base: opts.config.clone(),
        cases: flags.cases,
        scales: flags.scales,
        selections: flags.selections,
        size: flags.size,
        seed_blocks: (0..flags.seed_blocks).collect(),
        max_candidates: flags.max_candidates,
    };
    eprintln!(
        "searching {} candidates ({} cases x {} seed blocks = {} cells, {} replications each)...",
        grid.candidate_count(),
        grid.cases.len(),
        grid.seed_blocks.len(),
        grid.cell_count(),
        grid.base.replications
    );
    let report = if let Some(addr) = &flags.via {
        eprintln!("  distributing via {addr}...");
        let trace = open_coordinator_trace(flags.trace.as_deref());
        let mut transport = ahn_serve::HttpTransport::new(addr);
        let journal = flags.journal.as_deref().map(std::path::Path::new);
        match ahn_serve::run_calibration_via_traced(
            &mut transport,
            &grid,
            journal,
            10,
            trace.as_ref(),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    } else {
        match ahn_core::run_calibration(&grid) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    };
    let json = match serde_json::to_string_pretty(&report) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            std::process::exit(1);
        }
    };
    if flags.json {
        println!("{json}");
    } else {
        print!(
            "{}",
            ahn_core::calibrate::render_calibration_report(&report)
        );
    }
    opts.maybe_write("calibrate.json", &json);
}

/// `ahn-exp fidelity` flags.
#[derive(Debug, Clone, PartialEq)]
struct FidelityFlags {
    cases: Vec<usize>,
    tolerance: f64,
    rest: Vec<String>,
}

fn parse_fidelity_flags(args: &[String]) -> Result<FidelityFlags, String> {
    let mut flags = FidelityFlags {
        cases: vec![1, 3],
        tolerance: 0.15,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cases" => flags.cases = list("--cases", value("--cases")?)?,
            "--tol" => match value("--tol")?.parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => flags.tolerance = f,
                _ => return Err("--tol needs a fraction in [0, 1]".into()),
            },
            other => pass_through(&mut flags.rest, other, &mut it),
        }
    }
    for &c in &flags.cases {
        if !(1..=4).contains(&c) {
            return Err(format!("the paper defines cases 1..=4, not {c}"));
        }
    }
    Ok(flags)
}

/// `ahn-exp fidelity`: run the given paper cases and exit non-zero when
/// any final cooperation level lands outside `--tol` of the paper's
/// target — the CI guard that hot-path work cannot silently break the
/// model where it is known to reproduce.
fn fidelity(args: &[String]) {
    let flags = match parse_fidelity_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let opts = match Options::parse(&flags.rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    println!(
        "reproduction fidelity: {} replications x {} generations, R={}, tolerance {:.0}%",
        opts.config.replications,
        opts.config.generations,
        opts.config.rounds,
        flags.tolerance * 100.0
    );
    let mut failed = false;
    for &case_no in &flags.cases {
        let result = run_case(&opts, case_no);
        // Single-environment cases check the aggregate §6.2 number;
        // multi-environment cases check each environment against its
        // Table 5 column (the aggregate would blur four very different
        // equilibria — see ahn_core::calibrate::per_env_targets).
        match ahn_core::calibrate::per_env_targets(case_no) {
            Some(env_targets) if result.per_env_coop.len() == env_targets.len() => {
                for (e, (summary, &target)) in
                    result.per_env_coop.iter().zip(env_targets).enumerate()
                {
                    let coop = summary.mean().unwrap_or(0.0);
                    let error = (coop - target).abs();
                    let ok = error <= flags.tolerance;
                    println!(
                        "  case {case_no} TE{}: cooperation {:>6} vs paper {:>6}  (|error| {:>5})  {}",
                        e + 1,
                        ahn_stats::pct(coop, 1),
                        ahn_stats::pct(target, 1),
                        ahn_stats::pct(error, 1),
                        if ok { "ok" } else { "OUTSIDE TOLERANCE" }
                    );
                    failed |= !ok;
                }
            }
            _ => {
                let coop = result.final_coop.mean().unwrap_or(0.0);
                let target = ahn_core::calibrate::paper_target(case_no);
                let error = (coop - target).abs();
                let ok = error <= flags.tolerance;
                println!(
                    "  case {case_no}: cooperation {:>6} vs paper {:>6}  (|error| {:>5})  {}",
                    ahn_stats::pct(coop, 1),
                    ahn_stats::pct(target, 1),
                    ahn_stats::pct(error, 1),
                    if ok { "ok" } else { "OUTSIDE TOLERANCE" }
                );
                failed |= !ok;
            }
        }
    }
    if failed {
        eprintln!(
            "error: reproduction fidelity violated (tolerance {:.0}%)",
            flags.tolerance * 100.0
        );
        std::process::exit(1);
    }
}

/// Parsed command-line options.
#[derive(Debug)]
struct Options {
    config: ExperimentConfig,
    out_dir: Option<std::path::PathBuf>,
    /// Span trace log (`--trace FILE`): experiment commands record each
    /// case's lifecycle and per-generation hot-loop samples into it.
    trace: Option<ahn_obs::TraceLog>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut config = ExperimentConfig::scaled();
        let mut out_dir = None;
        let mut trace = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--preset" => {
                    config = match value("--preset")?.as_str() {
                        "smoke" => ExperimentConfig::smoke(),
                        "scaled" => ExperimentConfig::scaled(),
                        "paper" => ExperimentConfig::paper(),
                        other => return Err(format!("unknown preset {other:?}")),
                    };
                }
                "--reps" => {
                    config.replications = value("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?
                }
                "--gens" => {
                    config.generations = value("--gens")?
                        .parse()
                        .map_err(|e| format!("--gens: {e}"))?
                }
                "--rounds" => {
                    config.rounds = value("--rounds")?
                        .parse()
                        .map_err(|e| format!("--rounds: {e}"))?
                }
                "--seed" => {
                    config.base_seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--config" => {
                    let path = value("--config")?;
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    config = serde_json::from_str(&text)
                        .map_err(|e| format!("cannot parse {path}: {e}"))?;
                }
                "--out" => out_dir = Some(std::path::PathBuf::from(value("--out")?)),
                "--trace" => {
                    let path = value("--trace")?;
                    trace = Some(
                        ahn_obs::TraceLog::open(
                            std::path::Path::new(&path),
                            &format!("ahn-exp:{}", std::process::id()),
                        )
                        .map_err(|e| format!("cannot open trace log {path}: {e}"))?,
                    );
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        config.validate()?;
        Ok(Options {
            config,
            out_dir,
            trace,
        })
    }

    fn maybe_write(&self, name: &str, contents: &str) {
        if let Some(dir) = &self.out_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
            let path = dir.join(name);
            match std::fs::File::create(&path).and_then(|mut f| f.write_all(contents.as_bytes())) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
    }
}

fn run_case(opts: &Options, case_no: usize) -> experiment::ExperimentResult {
    let case = CaseSpec::paper(case_no);
    eprintln!(
        "running {} ({} replications x {} generations, R={})...",
        case.name, opts.config.replications, opts.config.generations, opts.config.rounds
    );
    let Some(log) = &opts.trace else {
        return experiment::run_experiment(&opts.config, &case);
    };
    // The observed path (--trace): same result bit for bit, plus a
    // cell_start / per-generation / cell_done span tree keyed by the
    // case's canonical hash — the same identity a serve node would
    // cache it under.
    let key = ahn_core::canonical_hash(&(&opts.config, &case)).unwrap_or(0);
    let trace_id = ahn_obs::trace_id_of_key(key);
    log.emit(
        ahn_obs::TraceEvent::new(trace_id, "cell_start")
            .key(key)
            .detail(case.name.clone()),
    );
    let started = std::time::Instant::now();
    let result = experiment::run_experiment_observed(&opts.config, &case, &|_, _, samples| {
        for sample in samples {
            log.emit(ahn_obs::TraceEvent::new(trace_id, "generation").sample(sample));
        }
    });
    log.emit(
        ahn_obs::TraceEvent::new(trace_id, "cell_done")
            .key(key)
            .dur_us(started.elapsed().as_micros() as u64)
            .outcome(true),
    );
    result
}

fn fig4(opts: &Options) {
    let results: Vec<_> = (1..=4).map(|i| run_case(opts, i)).collect();
    let refs: Vec<&_> = results.iter().collect();
    let means: Vec<Vec<f64>> = results.iter().map(|r| r.coop_series.means()).collect();
    let markers = ['1', '2', '3', '4'];
    let series: Vec<ahn_stats::PlotSeries> = results
        .iter()
        .zip(&means)
        .zip(markers)
        .map(|((r, values), marker)| ahn_stats::PlotSeries {
            label: &r.case_name,
            values,
            marker,
        })
        .collect();
    println!("{}", ahn_stats::ascii_chart(&series, 72, 16));
    print!("{}", report::fig4_summary(&refs));
    let csv = report::fig4_csv(&refs);
    opts.maybe_write("fig4.csv", &csv);
    if opts.out_dir.is_none() {
        println!("\n(use --out DIR to save the full per-generation CSV)");
    }
}

fn table5(opts: &Options) {
    let c3 = run_case(opts, 3);
    let c4 = run_case(opts, 4);
    let t = report::table5(&c3, &c4);
    print!("{t}");
    opts.maybe_write("table5.txt", &t);
}

fn table6(opts: &Options) {
    let c3 = run_case(opts, 3);
    let c4 = run_case(opts, 4);
    let t = report::table6(&c3, &c4);
    print!("{t}");
    opts.maybe_write("table6.txt", &t);
}

fn table7(opts: &Options) {
    let c3 = run_case(opts, 3);
    let c4 = run_case(opts, 4);
    let t = report::table7(&[&c3, &c4]);
    print!("{t}");
    opts.maybe_write("table7.txt", &t);
}

fn table8_9(opts: &Options, case_no: usize) {
    let r = run_case(opts, case_no);
    let t = report::table8_9(&r, 0.03);
    print!("{t}");
    opts.maybe_write(
        &format!("table{}.txt", if case_no == 3 { 8 } else { 9 }),
        &t,
    );
}

fn all(opts: &Options) {
    let results: Vec<_> = (1..=4).map(|i| run_case(opts, i)).collect();
    let refs: Vec<&_> = results.iter().collect();
    let mut out = String::new();
    out.push_str(&report::fig4_summary(&refs));
    out.push('\n');
    out.push_str(&report::table5(&results[2], &results[3]));
    out.push('\n');
    out.push_str(&report::table6(&results[2], &results[3]));
    out.push('\n');
    out.push_str(&report::table7(&[&results[2], &results[3]]));
    out.push('\n');
    out.push_str(&report::table8_9(&results[2], 0.03));
    out.push('\n');
    out.push_str(&report::table8_9(&results[3], 0.03));
    print!("{out}");
    opts.maybe_write("all.txt", &out);
    opts.maybe_write("fig4.csv", &report::fig4_csv(&refs));
    if opts.out_dir.is_some() {
        match serde_json::to_string_pretty(&results) {
            Ok(json) => opts.maybe_write("results.json", &json),
            Err(e) => eprintln!("warning: cannot serialize results: {e}"),
        }
    }
}

fn ipdrp(opts: &Options) {
    use rand::SeedableRng;
    let config = ahn_ipdrp::IpdrpConfig {
        population: opts.config.population.max(2) / 2 * 2,
        rounds: opts.config.rounds,
        generations: opts.config.generations,
        ..ahn_ipdrp::IpdrpConfig::default()
    };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(opts.config.base_seed);
    let history = ahn_ipdrp::run_ipdrp(&mut rng, &config);
    println!(
        "IPDRP baseline (population {}, {} rounds, {} generations)",
        config.population, config.rounds, config.generations
    );
    let first = history.first().expect("at least one generation");
    let last = history.last().expect("at least one generation");
    println!(
        "  cooperation: gen 0 = {:.1}%, final = {:.1}%  (random pairing suppresses reciprocity)",
        first.cooperation * 100.0,
        last.cooperation * 100.0
    );
    println!(
        "  mean fitness: gen 0 = {:.2}, final = {:.2}  (P = 1.0 is the all-defect floor)",
        first.stats.mean, last.stats.mean
    );
    let mut csv = String::from("generation,cooperation,mean_fitness\n");
    for g in &history {
        csv.push_str(&format!(
            "{},{:.4},{:.4}\n",
            g.generation, g.cooperation, g.stats.mean
        ));
    }
    opts.maybe_write("ipdrp.csv", &csv);
}

fn pathrater(opts: &Options) {
    // Marti et al.'s setting: 50 nodes with 20 selfish (40%).
    let report = baselines::pathrater_comparison(&opts.config, 50, 20, opts.config.base_seed);
    println!("Watchdog/pathrater-style baseline (X1): 50 nodes, 20 selfish, AllC normals");
    println!(
        "  throughput with rating-based avoidance:    {:.1}%",
        report.with_rating * 100.0
    );
    println!(
        "  throughput with random route selection:    {:.1}%",
        report.without_rating * 100.0
    );
    println!(
        "  improvement from avoidance alone:          {:+.1}%  (paper's ref [9]: +17%)",
        report.improvement() * 100.0
    );
}

fn ablate(
    opts: &Options,
    title: &str,
    run: fn(&ExperimentConfig, &CaseSpec) -> Vec<ablations::Variant>,
) {
    // Ablations run on case 3 (the paper's richest setting).
    let case = CaseSpec::paper(3);
    eprintln!("running ablation {title} on {} ...", case.name);
    let variants = run(&opts.config, &case);
    let rendered = ablations::render_variants(title, &variants);
    print!("{rendered}");
    opts.maybe_write("ablation.txt", &rendered);
}

fn transfer(opts: &Options) {
    // One replication per (train, eval) pair keeps this affordable; use
    // --reps/--gens to deepen.
    let cases = ahn_core::cases::CaseSpec::paper_all();
    eprintln!("running {}x{} transfer matrix...", cases.len(), cases.len());
    let cells = extensions::transfer_matrix(&opts.config, &cases, opts.config.base_seed);
    let rendered = extensions::render_transfer(&cells);
    print!("{rendered}");
    println!(
        "\nDiagonal cells are populations deployed in the conditions they\n\
         were evolved for; off-diagonal cells quantify the paper's closing\n\
         warning that strategies are condition-specific."
    );
    opts.maybe_write("transfer.txt", &rendered);
}

fn newcomer(opts: &Options) {
    let case = CaseSpec::paper(1);
    eprintln!("evolving a case-1 population, then admitting a newcomer...");
    let report = extensions::newcomer_join(&opts.config, &case, 120, opts.config.base_seed);
    println!("Newcomer-join experiment (case 1 veterans + 1 unknown cooperator)");
    println!(
        "  unknown-node bit forwards in {:.0}% of the evolved population",
        report.unknown_forward_share * 100.0
    );
    println!(
        "  newcomer delivery, first quarter of its games:  {:.1}%",
        report.early_delivery * 100.0
    );
    println!(
        "  newcomer delivery, last quarter of its games:   {:.1}%",
        report.late_delivery * 100.0
    );
    println!("  (the paper's claim: \"new nodes can easily join the network\")");
}

fn sleepers(opts: &Options) {
    let case = CaseSpec::paper(1);
    eprintln!("sleeper study: evolving with 20 low-duty nodes, both codecs...");
    let study =
        ahn_core::extensions::sleeper_study(&opts.config, &case, 20, 0.3, opts.config.base_seed);
    let (full_gap, trust_gap) = study.activity_penalty();
    println!("Sleeper study (X6): 20 of 100 nodes at 30% duty cycle, case-1 world");
    println!(
        "  energy: a sleeper consumes {:.0}% of an active node's budget",
        study.sleeper_energy_ratio * 100.0
    );
    println!("  13-bit (trust x activity) chromosome:");
    println!(
        "    active-node delivery {:.1}%, sleeper delivery {:.1}%  (penalty {:.0}%)",
        study.full_active_delivery * 100.0,
        study.full_sleeper_delivery * 100.0,
        full_gap * 100.0
    );
    println!("  5-bit (trust-only) chromosome:");
    println!(
        "    active-node delivery {:.1}%, sleeper delivery {:.1}%  (penalty {:.0}%)",
        study.trust_only_active_delivery * 100.0,
        study.trust_only_sleeper_delivery * 100.0,
        trust_gap * 100.0
    );
    println!(
        "\nThe paper's motivation for the activity dimension (S1): sleepers\n\
         keep a perfect forwarding *rate*, so trust alone cannot see them;\n\
         only the activity-aware chromosome can price the free ride."
    );
}

fn sweep_rounds(opts: &Options) {
    use ahn_core::sweeps;
    let case = CaseSpec::paper(1);
    let rounds = [30usize, 100, 200, 300, 500];
    eprintln!("sweeping tournament rounds over {rounds:?} on case 1...");
    let points = sweeps::sweep_rounds(&opts.config, &case, &rounds);
    let t = sweeps::render_sweep(
        "Cooperation vs reputation horizon R (case 1)",
        "rounds",
        &points,
    );
    print!("{t}");
    println!("(the paper's R = 300 sits above the defection-basin crossover)");
    opts.maybe_write("sweep_rounds.txt", &t);
}

fn sweep_csn(opts: &Options) {
    use ahn_core::sweeps;
    let densities = [0.0, 0.2, 0.4, 0.6, 0.8];
    eprintln!("sweeping CSN density over {densities:?} (50-node tournaments, SP)...");
    let points = sweeps::sweep_csn(
        &opts.config,
        50,
        ahn_core::cases::CaseSpec::paper(1).mode,
        &densities,
    );
    let t = sweeps::render_sweep(
        "Cooperation vs CSN density (50-node tournaments, shorter paths)",
        "density",
        &points,
    );
    print!("{t}");
    println!("(TE1..TE4 are the 0%, 20%, 50% and 60% points of this curve)");
    opts.maybe_write("sweep_csn.txt", &t);
}

fn sweep_mutation(opts: &Options) {
    use ahn_core::sweeps;
    let case = CaseSpec::paper(3);
    let rates = [0.0, 0.001, 0.01, 0.05];
    eprintln!("sweeping mutation rate over {rates:?} on case 3...");
    let points = sweeps::sweep_mutation(&opts.config, &case, &rates);
    let t = sweeps::render_sweep(
        "Cooperation vs per-bit mutation probability (case 3)",
        "mutation",
        &points,
    );
    print!("{t}");
    println!("(the paper uses 0.001)");
    opts.maybe_write("sweep_mutation.txt", &t);
}

fn trace(opts: &Options) {
    use rand::SeedableRng;
    // Evolve briefly, then trace the first games of a converged
    // tournament so the dump shows meaningful trust-driven decisions.
    let mut cfg = opts.config.clone();
    cfg.replications = 1;
    let case = CaseSpec::paper(3);
    cfg.population = cfg.population.max(case.required_normal());
    eprintln!("evolving one replication of {} for the trace...", case.name);
    let rep = ahn_core::experiment::run_replication(&cfg, &case, cfg.base_seed);

    let game_config = ahn_core::game_config_of(&cfg, &case);
    let size = case.envs[1].normal().min(rep.final_population.len());
    let csn = case.envs[1].csn;
    let mut arena =
        ahn_core::AhnArena::new(rep.final_population[..size].to_vec(), csn, game_config, 1);
    let participants: Vec<ahn_core::AhnNodeId> =
        (0..(size + csn) as u32).map(ahn_core::AhnNodeId).collect();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.base_seed ^ 0xdecaf);
    let mut scratch = ahn_core::AhnScratch::default();

    // Warm-up rounds so trust levels exist, then trace 25 games.
    for _ in 0..40 {
        for &src in &participants {
            ahn_core::ahn_play_game(&mut arena, &mut rng, src, &participants, 0, &mut scratch);
        }
    }
    println!("[");
    let mut first = true;
    for &src in participants.iter().take(25) {
        let report =
            ahn_core::ahn_play_game(&mut arena, &mut rng, src, &participants, 0, &mut scratch);
        let decisions: Vec<String> = scratch
            .last_decisions()
            .iter()
            .map(|(d, t)| format!("{d}@{t}"))
            .collect();
        let path: Vec<u32> = scratch.last_path().iter().map(|n| n.0).collect();
        if !first {
            println!(",");
        }
        first = false;
        print!(
            "  {{\"source\": {}, \"destination\": {}, \"path\": {:?}, \"decisions\": {:?}, \"delivered\": {}}}",
            src.0,
            report.destination.0,
            path,
            decisions,
            report.outcome.delivered()
        );
    }
    println!("\n]");
}

/// True when `ahn-exp trace` was given span-log files to join rather
/// than experiment flags for the decision-trace dump: the first
/// argument is a file path (no `--` prefix) or the join-only
/// `--require-complete` flag.
fn trace_join_requested(args: &[String]) -> bool {
    matches!(args.first(), Some(a) if !a.starts_with("--") || a == "--require-complete")
}

/// `ahn-exp trace FILE..` flags.
#[derive(Debug, Clone, PartialEq)]
struct TraceJoinFlags {
    /// Fail unless at least this many cells reconstruct end to end.
    require_complete: usize,
    /// The span-log files to join.
    files: Vec<String>,
}

fn parse_trace_join_flags(args: &[String]) -> Result<TraceJoinFlags, String> {
    let mut flags = TraceJoinFlags {
        require_complete: 0,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require-complete" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => flags.require_complete = n,
                _ => return Err("--require-complete needs a cell count".into()),
            },
            other if other.starts_with("--") => {
                return Err(format!("unknown trace flag {other:?}"))
            }
            path => flags.files.push(path.to_owned()),
        }
    }
    if flags.files.is_empty() {
        return Err("trace needs at least one span-log file to join".into());
    }
    Ok(flags)
}

/// `ahn-exp trace FILE..`: join span logs from any number of nodes into
/// per-cell lifecycle trees ([`ahn_obs::join_traces`]). Exits non-zero
/// when any spans are orphaned (a log file is missing from the join, or
/// trace-id propagation broke) or fewer than `--require-complete N`
/// cells reconstructed end to end — the CI chaos job's assertion.
fn trace_join(args: &[String]) {
    let flags = match parse_trace_join_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut events = Vec::new();
    let mut discarded = 0usize;
    for path in &flags.files {
        match ahn_obs::read_trace(std::path::Path::new(path)) {
            Ok(read) => {
                events.extend(read.events);
                discarded += read.discarded;
            }
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let tree = ahn_obs::join_traces(events, discarded);
    print!("{}", ahn_obs::render_tree(&tree));
    if tree.orphan_spans > 0 {
        eprintln!(
            "error: {} orphaned spans (a log file is missing from the join, or propagation broke)",
            tree.orphan_spans
        );
        std::process::exit(1);
    }
    if tree.complete_cells() < flags.require_complete {
        eprintln!(
            "error: only {} of the required {} cells reconstructed end to end",
            tree.complete_cells(),
            flags.require_complete
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bench_flags_parse() {
        let f = parse_bench_flags(&args(&["--json", "--baseline", "B.json"])).unwrap();
        assert!(f.json);
        assert_eq!(f.baseline_path.as_deref(), Some("B.json"));
        assert_eq!(f.max_regression, 2.0);
        assert_eq!(f.threads, vec![1, 4, 8], "default thread sweep");
        let f = parse_bench_flags(&args(&["--max-regression", "1.5"])).unwrap();
        assert_eq!(f.max_regression, 1.5);
        let f = parse_bench_flags(&args(&["--threads", "1,4"])).unwrap();
        assert_eq!(f.threads, vec![1, 4]);
        let f = parse_bench_flags(&args(&["--threads", " 8 "])).unwrap();
        assert_eq!(f.threads, vec![8]);
    }

    #[test]
    fn bench_flag_errors() {
        let err = parse_bench_flags(&args(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown bench flag"), "{err}");
        let err = parse_bench_flags(&args(&["--baseline"])).unwrap_err();
        assert!(err.contains("--baseline needs a file"), "{err}");
        for bad in [
            &["--max-regression"][..],
            &["--max-regression", "0.5"],
            &["--max-regression", "x"],
        ] {
            let err = parse_bench_flags(&args(bad)).unwrap_err();
            assert!(err.contains("factor >= 1"), "{bad:?}: {err}");
        }
        for bad in [
            &["--threads"][..],
            &["--threads", ""],
            &["--threads", "2"],
            &["--threads", "1,x"],
            &["--threads", "1,,4"],
        ] {
            let err = parse_bench_flags(&args(bad)).unwrap_err();
            assert!(err.contains("subset of 1,4,8"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn serve_flags_parse() {
        let c = parse_serve_flags(&args(&[])).unwrap();
        assert_eq!(c.addr, "127.0.0.1:7172");
        let c = parse_serve_flags(&args(&[
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--cache-cap",
            "512",
            "--queue-cap",
            "32",
        ]))
        .unwrap();
        assert_eq!(
            (c.addr.as_str(), c.workers, c.cache_cap, c.queue_cap),
            ("0.0.0.0:9000", 8, 512, 32)
        );
        // cache-cap 0 is legal: it disables caching.
        assert_eq!(
            parse_serve_flags(&args(&["--cache-cap", "0"]))
                .unwrap()
                .cache_cap,
            0
        );
        // workers 0 is legal: a pull-only node for external workers.
        assert_eq!(
            parse_serve_flags(&args(&["--workers", "0"]))
                .unwrap()
                .workers,
            0
        );
        let c = parse_serve_flags(&args(&["--journal", "/tmp/j.log"])).unwrap();
        assert_eq!(c.journal.as_deref(), Some("/tmp/j.log"));
        let c = parse_serve_flags(&args(&[
            "--read-timeout-ms",
            "100",
            "--idle-timeout-ms",
            "200",
            "--write-timeout-ms",
            "300",
            "--drain-ms",
            "400",
        ]))
        .unwrap();
        assert_eq!(
            (
                c.read_timeout_ms,
                c.idle_timeout_ms,
                c.write_timeout_ms,
                c.drain_ms
            ),
            (100, 200, 300, 400)
        );
        // 0 is legal everywhere: it disables that deadline.
        assert_eq!(
            parse_serve_flags(&args(&["--read-timeout-ms", "0"]))
                .unwrap()
                .read_timeout_ms,
            0
        );
    }

    #[test]
    fn serve_flag_errors() {
        let err = parse_serve_flags(&args(&["--port", "80"])).unwrap_err();
        assert!(err.contains("unknown serve flag"), "{err}");
        let err = parse_serve_flags(&args(&["--addr"])).unwrap_err();
        assert!(err.contains("--addr needs a value"), "{err}");
        for bad in [&["--workers", "-1"][..], &["--workers", "many"]] {
            assert!(parse_serve_flags(&args(bad)).is_err(), "{bad:?}");
        }
        assert!(parse_serve_flags(&args(&["--queue-cap", "0"])).is_err());
        assert!(parse_serve_flags(&args(&["--cache-cap", "x"])).is_err());
        assert!(parse_serve_flags(&args(&["--journal"])).is_err());
    }

    #[test]
    fn worker_flags_parse() {
        let f = parse_worker_flags(&args(&[])).unwrap();
        assert_eq!(f.addr, "127.0.0.1:7878");
        assert_eq!(f.config.idle_exit_polls, 0);
        let f = parse_worker_flags(&args(&[
            "--addr",
            "127.0.0.1:9",
            "--lease-ms",
            "2000",
            "--poll-ms",
            "5",
            "--max-cells",
            "10",
            "--exit-when-idle",
        ]))
        .unwrap();
        assert_eq!(f.addr, "127.0.0.1:9");
        assert_eq!(
            (f.config.lease_ms, f.config.poll_ms, f.config.max_cells),
            (2000, 5, 10)
        );
        assert!(f.config.idle_exit_polls > 0);
    }

    #[test]
    fn worker_resilience_flags_parse() {
        let f = parse_worker_flags(&args(&[])).unwrap();
        assert_eq!(f.config.backoff, ahn_serve::BackoffPolicy::default());
        assert_eq!((f.breaker_threshold, f.breaker_cooldown_ms), (8, 1_000));
        assert!(!f.chaos.is_active());
        let f = parse_worker_flags(&args(&[
            "--retry-base-ms",
            "10",
            "--retry-cap-ms",
            "100",
            "--backoff-seed",
            "7",
            "--max-errors",
            "5",
            "--breaker-threshold",
            "3",
            "--breaker-cooldown-ms",
            "250",
            "--chaos-seed",
            "42",
            "--chaos-drop-request",
            "20",
            "--chaos-drop-response",
            "10",
            "--chaos-latency-percent",
            "15",
            "--chaos-latency-ms",
            "30",
            "--chaos-stall-percent",
            "5",
            "--chaos-stall-ms",
            "60",
            "--chaos-partial-percent",
            "25",
        ]))
        .unwrap();
        assert_eq!(
            (
                f.config.backoff.base_ms,
                f.config.backoff.cap_ms,
                f.config.backoff.seed
            ),
            (10, 100, 7)
        );
        assert_eq!(f.config.max_consecutive_errors, 5);
        assert_eq!((f.breaker_threshold, f.breaker_cooldown_ms), (3, 250));
        assert_eq!(
            f.chaos,
            ahn_serve::FaultPlan {
                seed: 42,
                drop_request_percent: 20,
                drop_response_percent: 10,
                latency_percent: 15,
                latency_ms: 30,
                stall_percent: 5,
                stall_ms: 60,
                partial_write_percent: 25,
                die_after_calls: None,
            }
        );
        assert!(f.chaos.is_active());
    }

    #[test]
    fn worker_flag_errors() {
        let err = parse_worker_flags(&args(&["--what"])).unwrap_err();
        assert!(err.contains("unknown worker flag"), "{err}");
        for bad in [
            &["--lease-ms", "0"][..],
            &["--poll-ms", "0"],
            &["--max-cells", "x"],
            &["--addr"],
            &["--retry-base-ms", "0"],
            &["--retry-cap-ms", "x"],
            &["--breaker-threshold", "-1"],
            &["--chaos-drop-request", "101"],
            &["--chaos-latency-percent", "x"],
            &["--chaos-stall-percent", "200"],
            &["--chaos-partial-percent"],
        ] {
            assert!(parse_worker_flags(&args(bad)).is_err(), "{bad:?}");
        }
        let err = parse_worker_flags(&args(&["--chaos-drop-request", "101"])).unwrap_err();
        assert!(err.contains("[0, 100]"), "{err}");
    }

    #[test]
    fn loadtest_flags_parse() {
        let f = parse_loadtest_flags(&args(&[])).unwrap();
        assert!(!f.json && !f.shutdown && f.min_hit_rate.is_none());
        let f = parse_loadtest_flags(&args(&[
            "--addr",
            "127.0.0.1:1",
            "--connections",
            "2",
            "--requests",
            "50",
            "--distinct",
            "5",
            "--json",
            "--min-hit-rate",
            "0.5",
            "--shutdown",
        ]))
        .unwrap();
        assert_eq!(
            (f.config.connections, f.config.requests, f.config.distinct),
            (2, 50, 5)
        );
        assert!(f.json && f.shutdown);
        assert_eq!(f.min_hit_rate, Some(0.5));
    }

    #[test]
    fn loadtest_flag_errors() {
        let err = parse_loadtest_flags(&args(&["--what"])).unwrap_err();
        assert!(err.contains("unknown loadtest flag"), "{err}");
        for bad in [
            &["--connections", "0"][..],
            &["--requests", "0"],
            &["--distinct", "0"],
            &["--connections"],
            &["--min-hit-rate", "1.5"],
            &["--min-hit-rate", "nan"],
        ] {
            assert!(parse_loadtest_flags(&args(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn sweep_flags_parse() {
        let f = parse_sweep_flags(&args(&[])).unwrap();
        assert_eq!(
            (f.cases, f.sizes, f.seed_blocks, f.json),
            (vec![1], vec![50], 1, false)
        );
        assert_eq!(f.payoffs, vec!["paper".to_string()]);
        assert_eq!(f.scenarios, None);
        assert!(f.rest.is_empty());

        let f = parse_sweep_flags(&args(&[
            "--scenarios",
            "base,slanderers",
            "--cases",
            "1,3",
            "--payoffs",
            "paper,literal-ocr",
            "--sizes",
            "10,50,100",
            "--seed-blocks",
            "4",
            "--json",
            "--preset",
            "smoke",
            "--reps",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            f.scenarios,
            Some(vec!["base".to_string(), "slanderers".to_string()])
        );
        assert_eq!(f.cases, vec![1, 3]);
        assert_eq!(
            f.payoffs,
            vec!["paper".to_string(), "literal-ocr".to_string()]
        );
        assert_eq!(f.sizes, vec![10, 50, 100]);
        assert_eq!(f.seed_blocks, 4);
        assert!(f.json);
        assert_eq!(f.rest, args(&["--preset", "smoke", "--reps", "2"]));
        // The shared flags parse through Options.
        let o = Options::parse(&f.rest).unwrap();
        assert_eq!(o.config.replications, 2);

        let f =
            parse_sweep_flags(&args(&["--via", "127.0.0.1:7172", "--journal", "s.log"])).unwrap();
        assert_eq!(f.via.as_deref(), Some("127.0.0.1:7172"));
        assert_eq!(f.journal.as_deref(), Some("s.log"));
    }

    #[test]
    fn sweep_flag_errors() {
        for bad in [
            &["--cases"][..],
            &["--cases", ""],
            &["--scenarios"],
            &["--scenarios", ""],
            &["--sizes", "ten"],
            &["--seed-blocks", "0"],
            &["--seed-blocks", "-1"],
            // A journal only makes sense for a distributed run.
            &["--journal", "s.log"],
        ] {
            assert!(parse_sweep_flags(&args(bad)).is_err(), "{bad:?}");
        }
        // Unknown flags pass through to Options::parse, which rejects.
        let f = parse_sweep_flags(&args(&["--frob", "x"])).unwrap();
        assert!(Options::parse(&f.rest).is_err());
    }

    #[test]
    fn calibrate_flags_parse() {
        let f = parse_calibrate_flags(&args(&[])).unwrap();
        assert_eq!(f.cases, vec![1, 2, 3, 4]);
        assert_eq!(f.scales, vec![1.0]);
        assert_eq!(f.selections, vec!["paper".to_string()]);
        assert_eq!(
            (f.size, f.seed_blocks, f.max_candidates, f.json),
            (10, 1, 0, false)
        );
        assert!(f.rest.is_empty());

        let f = parse_calibrate_flags(&args(&[
            "--cases",
            "2,4",
            "--scales",
            "0.5,1,2",
            "--selections",
            "paper,rank,elitist-2",
            "--size",
            "50",
            "--seed-blocks",
            "3",
            "--max-candidates",
            "24",
            "--json",
            "--preset",
            "scaled",
            "--reps",
            "4",
        ]))
        .unwrap();
        assert_eq!(f.cases, vec![2, 4]);
        assert_eq!(f.scales, vec![0.5, 1.0, 2.0]);
        assert_eq!(
            f.selections,
            vec![
                "paper".to_string(),
                "rank".to_string(),
                "elitist-2".to_string()
            ]
        );
        assert_eq!((f.size, f.seed_blocks, f.max_candidates), (50, 3, 24));
        assert!(f.json);
        assert_eq!(f.rest, args(&["--preset", "scaled", "--reps", "4"]));
        let o = Options::parse(&f.rest).unwrap();
        assert_eq!(o.config.replications, 4);

        let f = parse_calibrate_flags(&args(&["--via", "127.0.0.1:7172", "--journal", "c.log"]))
            .unwrap();
        assert_eq!(f.via.as_deref(), Some("127.0.0.1:7172"));
        assert_eq!(f.journal.as_deref(), Some("c.log"));
    }

    #[test]
    fn calibrate_flag_errors() {
        for bad in [
            &["--cases"][..],
            &["--cases", ""],
            &["--scales", "big"],
            &["--selections", ""],
            &["--size", "2"],
            &["--size", "many"],
            &["--seed-blocks", "0"],
            &["--max-candidates", "-1"],
            // A journal only makes sense for a distributed run.
            &["--journal", "c.log"],
            // So does a coordinator trace: without --via there is no
            // coordinator, and the flag must fail at parse time rather
            // than after the (potentially long) local run.
            &["--trace", "t.log"],
        ] {
            assert!(parse_calibrate_flags(&args(bad)).is_err(), "{bad:?}");
        }
        // Unknown flags pass through to Options::parse, which rejects.
        let f = parse_calibrate_flags(&args(&["--frob", "x"])).unwrap();
        assert!(Options::parse(&f.rest).is_err());
    }

    #[test]
    fn fidelity_flags_parse() {
        let f = parse_fidelity_flags(&args(&[])).unwrap();
        assert_eq!(f.cases, vec![1, 3]);
        assert_eq!(f.tolerance, 0.15);
        let f = parse_fidelity_flags(&args(&[
            "--cases", "1,2,3,4", "--tol", "0.2", "--preset", "smoke",
        ]))
        .unwrap();
        assert_eq!(f.cases, vec![1, 2, 3, 4]);
        assert_eq!(f.tolerance, 0.2);
        assert_eq!(f.rest, args(&["--preset", "smoke"]));
    }

    #[test]
    fn fidelity_flag_errors() {
        for bad in [
            &["--cases", "0"][..],
            &["--cases", "5"],
            &["--cases", ""],
            &["--tol", "1.5"],
            &["--tol", "x"],
            &["--tol"],
        ] {
            assert!(parse_fidelity_flags(&args(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn experiment_options_flag_errors() {
        let err = Options::parse(&args(&["--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        let err = Options::parse(&args(&["--reps"])).unwrap_err();
        assert!(err.contains("--reps needs a value"), "{err}");
        let err = Options::parse(&args(&["--reps", "zero"])).unwrap_err();
        assert!(err.contains("--reps"), "{err}");
        let err = Options::parse(&args(&["--preset", "galactic"])).unwrap_err();
        assert!(err.contains("unknown preset"), "{err}");
        let err = Options::parse(&args(&["--config", "/no/such/file.json"])).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        // Flag values that parse but violate config validation.
        let err = Options::parse(&args(&["--reps", "0"])).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn experiment_options_happy_path() {
        let o =
            Options::parse(&args(&["--preset", "smoke", "--reps", "3", "--seed", "9"])).unwrap();
        assert_eq!(o.config.replications, 3);
        assert_eq!(o.config.base_seed, 9);
        assert!(o.out_dir.is_none());
        assert!(o.trace.is_none());
        let o = Options::parse(&args(&["--out", "/tmp/x"])).unwrap();
        assert_eq!(o.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    /// A temp path for flags that open their file at parse time.
    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("ahn-cli-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn trace_flags_parse_everywhere() {
        // serve/worker/sweep/calibrate carry the path; Options opens it.
        let c = parse_serve_flags(&args(&["--trace", "srv.trace"])).unwrap();
        assert_eq!(c.trace.as_deref(), Some("srv.trace"));
        assert!(parse_serve_flags(&args(&["--trace"])).is_err());

        let f = parse_worker_flags(&args(&["--trace", "w.trace"])).unwrap();
        assert_eq!(f.trace.as_deref(), Some("w.trace"));
        assert!(parse_worker_flags(&args(&[])).unwrap().trace.is_none());

        let f = parse_sweep_flags(&args(&["--trace", "s.trace"])).unwrap();
        assert_eq!(f.trace.as_deref(), Some("s.trace"));

        let f = parse_calibrate_flags(&args(&["--via", "127.0.0.1:7172", "--trace", "c.trace"]))
            .unwrap();
        assert_eq!(f.trace.as_deref(), Some("c.trace"));
        // A coordinator trace without a coordinator is a user error.
        let err = parse_calibrate_flags(&args(&["--trace", "c.trace"])).unwrap_err();
        assert!(err.contains("requires --via"), "{err}");

        let path = tmp("options.trace");
        let o = Options::parse(&args(&["--trace", &path])).unwrap();
        assert!(o.trace.is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_join_dispatch_and_flags() {
        // File arguments (or --require-complete) pick the join mode;
        // experiment flags keep the legacy decision-trace dump.
        assert!(trace_join_requested(&args(&["a.trace", "b.trace"])));
        assert!(trace_join_requested(&args(&[
            "--require-complete",
            "1",
            "a.trace"
        ])));
        assert!(!trace_join_requested(&args(&[])));
        assert!(!trace_join_requested(&args(&["--preset", "smoke"])));

        let f = parse_trace_join_flags(&args(&["a.trace", "b.trace"])).unwrap();
        assert_eq!(f.require_complete, 0);
        assert_eq!(f.files, args(&["a.trace", "b.trace"]));
        let f = parse_trace_join_flags(&args(&["--require-complete", "3", "a.trace"])).unwrap();
        assert_eq!(f.require_complete, 3);

        for bad in [
            &[][..],
            &["--require-complete"],
            &["--require-complete", "x", "a.trace"],
            &["--frob", "a.trace"],
        ] {
            assert!(parse_trace_join_flags(&args(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn trace_join_reconstructs_a_cell_across_logs() {
        use ahn_obs::{trace_id_of_key, TraceEvent, TraceLog};
        let server = tmp("join-server.trace");
        let worker = tmp("join-worker.trace");
        let key = 0xfeed_beefu64;
        let tid = trace_id_of_key(key);
        {
            let log = TraceLog::open(std::path::Path::new(&server), "serve:test").unwrap();
            log.emit(TraceEvent::new(tid, "submit").key(key).job(1));
            log.emit(TraceEvent::new(tid, "enqueue").key(key).job(1));
            log.emit(TraceEvent::new(tid, "lease").key(key).job(1).lease(7));
            log.emit(
                TraceEvent::new(tid, "complete")
                    .key(key)
                    .job(1)
                    .outcome(true),
            );
        }
        {
            let log = TraceLog::open(std::path::Path::new(&worker), "worker:test").unwrap();
            log.emit(TraceEvent::new(tid, "claim").lease(7));
            log.emit(TraceEvent::new(tid, "compute").lease(7).outcome(true));
            log.emit(TraceEvent::new(tid, "deliver").lease(7).outcome(true));
        }
        let mut events = Vec::new();
        for path in [&server, &worker] {
            events.extend(
                ahn_obs::read_trace(std::path::Path::new(path))
                    .unwrap()
                    .events,
            );
        }
        let tree = ahn_obs::join_traces(events, 0);
        assert_eq!(tree.cells.len(), 1);
        assert_eq!(tree.complete_cells(), 1);
        assert_eq!(tree.orphan_spans, 0);
        let rendered = ahn_obs::render_tree(&tree);
        assert!(rendered.contains("complete"), "{rendered}");
        assert!(rendered.contains("cells=1 complete=1"), "{rendered}");
        let _ = std::fs::remove_file(&server);
        let _ = std::fs::remove_file(&worker);
    }
}
