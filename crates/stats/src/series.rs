//! Aligned per-generation series averaged across independent runs.
//!
//! Figure 4 of the paper plots the cooperation level per generation,
//! averaged over 60 repetitions. [`Series`] accumulates one value per
//! index (generation) per run and reports mean / CI per index.

use crate::Summary;
use serde::{Deserialize, Serialize};

/// A collection of per-index [`Summary`]s, one per generation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    points: Vec<Summary>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series { points: Vec::new() }
    }

    /// Creates a series pre-sized for `len` indices.
    pub fn with_len(len: usize) -> Self {
        Series {
            points: vec![Summary::new(); len],
        }
    }

    /// Adds `value` as one observation of index `idx`, growing the series
    /// as needed.
    pub fn add(&mut self, idx: usize, value: f64) {
        if idx >= self.points.len() {
            self.points.resize(idx + 1, Summary::new());
        }
        self.points[idx].add(value);
    }

    /// Adds a whole run: `values[g]` is the observation for index `g`.
    pub fn add_run(&mut self, values: &[f64]) {
        for (g, &v) in values.iter().enumerate() {
            self.add(g, v);
        }
    }

    /// Merges another series index-wise.
    pub fn merge(&mut self, other: &Series) {
        if other.points.len() > self.points.len() {
            self.points.resize(other.points.len(), Summary::new());
        }
        for (mine, theirs) in self.points.iter_mut().zip(&other.points) {
            mine.merge(theirs);
        }
    }

    /// Number of indices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no indices exist.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Summary at index `idx`, if present.
    pub fn point(&self, idx: usize) -> Option<&Summary> {
        self.points.get(idx)
    }

    /// Mean value at each index (0.0 for indices with no data).
    pub fn means(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|s| s.mean().unwrap_or(0.0))
            .collect()
    }

    /// Mean of the final index, i.e. the "last generation" value the
    /// paper's tables report.
    pub fn final_mean(&self) -> Option<f64> {
        self.points.last().and_then(|s| s.mean())
    }

    /// Renders the series as CSV rows `idx,mean,ci95` (no header).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, s) in self.points.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{}",
                i,
                s.mean().unwrap_or(f64::NAN),
                s.ci95_half_width().unwrap_or(0.0),
            );
        }
        out
    }

    /// Down-samples to at most `max_points` indices by keeping every k-th
    /// point (always keeping the last) — handy for terminal sparklines.
    pub fn thin(&self, max_points: usize) -> Vec<(usize, f64)> {
        assert!(max_points > 0, "max_points must be positive");
        if self.points.is_empty() {
            return Vec::new();
        }
        let step = self.points.len().div_ceil(max_points).max(1);
        let mut out: Vec<(usize, f64)> = self
            .points
            .iter()
            .enumerate()
            .step_by(step)
            .map(|(i, s)| (i, s.mean().unwrap_or(0.0)))
            .collect();
        let last = self.points.len() - 1;
        if out.last().map(|&(i, _)| i) != Some(last) {
            out.push((last, self.points[last].mean().unwrap_or(0.0)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_run_and_means() {
        let mut s = Series::new();
        s.add_run(&[1.0, 2.0, 3.0]);
        s.add_run(&[3.0, 4.0, 5.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.means(), vec![2.0, 3.0, 4.0]);
        assert_eq!(s.final_mean(), Some(4.0));
    }

    #[test]
    fn ragged_runs_grow_series() {
        let mut s = Series::new();
        s.add_run(&[1.0]);
        s.add_run(&[3.0, 5.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0).unwrap().count(), 2);
        assert_eq!(s.point(1).unwrap().count(), 1);
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a = Series::new();
        a.add_run(&[1.0, 2.0]);
        let mut b = Series::new();
        b.add_run(&[3.0, 4.0, 9.0]);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut seq = Series::new();
        seq.add_run(&[1.0, 2.0]);
        seq.add_run(&[3.0, 4.0, 9.0]);
        assert_eq!(merged.means(), seq.means());
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn csv_has_one_row_per_index() {
        let mut s = Series::new();
        s.add_run(&[0.5, 0.75]);
        let csv = s.to_csv();
        let rows: Vec<&str> = csv.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("0,0.5,"));
    }

    #[test]
    fn thin_keeps_first_and_last() {
        let mut s = Series::new();
        s.add_run(&(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let t = s.thin(10);
        assert!(t.len() <= 11);
        assert_eq!(t.first().unwrap().0, 0);
        assert_eq!(t.last().unwrap().0, 99);
    }

    #[test]
    fn thin_of_empty_is_empty() {
        assert!(Series::new().thin(5).is_empty());
    }
}
