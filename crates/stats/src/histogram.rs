//! Counting histograms over small discrete domains.
//!
//! Tables 7–9 of the paper are popularity histograms: how often each
//! 13-bit strategy / 3-bit sub-strategy appears in final populations.
//! [`Histogram`] counts occurrences of `u64`-encodable keys and reports
//! sorted fractions with a minimum-share cutoff ("only sub-strategies that
//! appeared in more than 3 % ... are shown").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A counting histogram keyed by `u64`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation of `key`.
    pub fn add(&mut self, key: u64) {
        self.add_n(key, 1);
    }

    /// Adds `n` observations of `key`.
    pub fn add_n(&mut self, key: u64, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&k, &n) in &other.counts {
            self.add_n(k, n);
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for `key` (0 when absent).
    pub fn count(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Fraction of observations with `key` (0 when empty).
    pub fn fraction(&self, key: u64) -> f64 {
        crate::ratio(self.count(key), self.total)
    }

    /// Number of distinct keys observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// All `(key, count)` pairs sorted by descending count, ties broken by
    /// ascending key for deterministic output.
    pub fn ranked(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The `n` most frequent keys with their fractions.
    pub fn top(&self, n: usize) -> Vec<(u64, f64)> {
        self.ranked()
            .into_iter()
            .take(n)
            .map(|(k, c)| (k, crate::ratio(c, self.total)))
            .collect()
    }

    /// Keys whose share strictly exceeds `min_fraction`, with fractions,
    /// sorted by descending share (the paper's "> 3 %" cutoff for
    /// Tables 8–9).
    pub fn above(&self, min_fraction: f64) -> Vec<(u64, f64)> {
        self.ranked()
            .into_iter()
            .map(|(k, c)| (k, crate::ratio(c, self.total)))
            .filter(|&(_, f)| f > min_fraction)
            .collect()
    }

    /// Shannon entropy in bits — a diversity measure for strategy
    /// populations (0 = converged population).
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        -self
            .counts
            .values()
            .map(|&n| {
                let p = n as f64 / self.total as f64;
                p * p.log2()
            })
            .sum::<f64>()
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for k in iter {
            h.add(k);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_fractions() {
        let h: Histogram = [1u64, 1, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(9), 0);
        assert!((h.fraction(3) - 0.5).abs() < 1e-12);
        assert_eq!(h.distinct(), 3);
    }

    #[test]
    fn ranked_is_deterministic() {
        let h: Histogram = [5u64, 4, 5, 4, 1].into_iter().collect();
        // 4 and 5 tie at 2; ascending key breaks the tie.
        assert_eq!(h.ranked(), vec![(4, 2), (5, 2), (1, 1)]);
        assert_eq!(h.top(2), vec![(4, 0.4), (5, 0.4)]);
    }

    #[test]
    fn above_threshold_mimics_paper_cutoff() {
        let mut h = Histogram::new();
        h.add_n(0b000, 40);
        h.add_n(0b010, 33);
        h.add_n(0b001, 11);
        h.add_n(0b111, 16);
        let shown = h.above(0.03);
        assert_eq!(shown.len(), 4);
        h.add_n(0b100, 2); // 2/102 < 3%
        assert_eq!(h.above(0.03).len(), 4);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: Histogram = [1u64, 2].into_iter().collect();
        let b: Histogram = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
    }

    #[test]
    fn entropy_extremes() {
        let converged: Histogram = std::iter::repeat_n(7u64, 100).collect();
        assert_eq!(converged.entropy_bits(), 0.0);
        let uniform: Histogram = (0u64..8).collect();
        assert!((uniform.entropy_bits() - 3.0).abs() < 1e-12);
        assert_eq!(Histogram::new().entropy_bits(), 0.0);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.fraction(0), 0.0);
        assert!(h.top(3).is_empty());
    }
}
