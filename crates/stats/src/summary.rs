//! Streaming univariate summary statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Streaming mean / variance accumulator.
///
/// Uses Welford's online algorithm, which is numerically stable for the
/// long per-generation accumulations the harness performs. The state is
/// serializable so experiment results can be persisted mid-run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford/Chan).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance; `None` with fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> Option<f64> {
        self.std_dev().map(|s| s / (self.count as f64).sqrt())
    }

    /// Half-width of the ~95 % normal-approximation confidence interval.
    ///
    /// Uses z = 1.96; adequate for the ≥ 12 replications the harness runs.
    pub fn ci95_half_width(&self) -> Option<f64> {
        self.std_err().map(|se| 1.96 * se)
    }

    /// Smallest observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_has_no_stats() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), Some(5.0));
        // Population variance is 4 -> sample variance = 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn single_observation() {
        let s: Summary = [3.5].into_iter().collect();
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), Some(3.5));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: Summary = xs.iter().copied().collect();
        let mut a: Summary = xs[..37].iter().copied().collect();
        let b: Summary = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean().unwrap() - seq.mean().unwrap()).abs() < 1e-10);
        assert!((a.variance().unwrap() - seq.variance().unwrap()).abs() < 1e-8);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small: Summary = (0..10).map(|i| (i % 2) as f64).collect();
        let large: Summary = (0..1000).map(|i| (i % 2) as f64).collect();
        assert!(large.ci95_half_width().unwrap() < small.ci95_half_width().unwrap());
    }

    #[test]
    fn serde_roundtrip() {
        let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let json = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
