//! Categorical sampling shared by every hand-rolled discrete sampler in
//! the workspace.
//!
//! Three hot loops draw from small categorical distributions: the path
//! length of Table 2 (`ahn_net::PathLengthDist`), the alternative-path
//! count of Table 3 (`ahn_net::AltPathDist`) and the GA's roulette
//! selection (`ahn_ga::Selection::Roulette`). Historically each carried
//! its own copy of the same linear CDF walk; this module is the single
//! shared implementation.
//!
//! Two entry points:
//!
//! * [`walk_categorical`] — the reference subtractive walk for *dynamic*
//!   weights (roulette selection, where fitnesses change every call). It
//!   returns `None` when accumulated floating-point slack lets the draw
//!   fall off the end of the table; callers map that to the documented
//!   fallback (the **last positive-weight category** — a zero-weight
//!   category must never be selected).
//! * [`CdfTable`] — a precomputed threshold table for *fixed* weights
//!   (the paper's path distributions). One comparison per category, no
//!   subtraction chain, and — crucially — **provably draw-identical** to
//!   the reference walk: the thresholds are found by bit-level binary
//!   search over the `f64` space against [`walk_categorical`] itself, so
//!   every representable draw maps to the same category the walk would
//!   have produced. Seeded simulations therefore stay bit-identical
//!   across the sampler swap.
//!
//! The crate stays RNG-agnostic: callers draw one uniform `f64` in
//! `[0, 1)` per sample (one `rng.gen::<f64>()`) and pass it in, which
//! also keeps the number of RNG draws per sample at exactly one.

/// Reference linear CDF walk: returns the first category `i` for which
/// the remaining mass `x - w_0 - … - w_{i-1}` is strictly below `w_i`.
///
/// `None` means floating-point slack exhausted the table (`x` within a
/// few ulps of the total weight); callers fall back to the last
/// positive-weight category.
///
/// Weights must be non-negative; `x` is a uniform draw scaled to the
/// weights' total.
#[inline]
pub fn walk_categorical<I>(mut x: f64, weights: I) -> Option<usize>
where
    I: IntoIterator<Item = f64>,
{
    for (i, w) in weights.into_iter().enumerate() {
        debug_assert!(w >= 0.0, "negative weight {w} at category {i}");
        if x < w {
            return Some(i);
        }
        x -= w;
    }
    None
}

/// Index of the last positive weight — the documented fallback category
/// for floating-point slack in [`walk_categorical`].
///
/// # Panics
/// Panics if no weight is positive (an empty distribution cannot be
/// sampled).
#[inline]
pub fn last_positive_category<I>(weights: I) -> usize
where
    I: IntoIterator<Item = f64>,
{
    let mut last = None;
    for (i, w) in weights.into_iter().enumerate() {
        if w > 0.0 {
            last = Some(i);
        }
    }
    last.expect("distribution has no positive weight")
}

/// Most categories a [`CdfTable`] supports. The paper's distributions
/// top out at 9 (Table 2's hop counts); the fixed bound keeps the
/// threshold array inline — no heap indirection on the sampling path.
pub const MAX_CATEGORIES: usize = 12;

/// Precomputed threshold table over a fixed categorical distribution.
///
/// `locate(u)` returns exactly what
/// `walk_categorical(u, weights).unwrap_or(fallback)` would return, for
/// every representable `u ∈ [0, 1)`, with one ordered comparison per
/// category instead of a subtraction chain.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfTable {
    /// `thresholds[c]` is the smallest `f64` draw whose category exceeds
    /// `c`; a sentinel `> 1` marks categories never exceeded, and pads
    /// the unused tail so `locate` can scan the whole fixed array
    /// branchlessly.
    thresholds: [f64; MAX_CATEGORIES],
    /// Category reached when every threshold is passed.
    fallback: usize,
}

impl CdfTable {
    /// Builds the table for non-negative `weights` (summing to ~1) and a
    /// slack `fallback` category.
    ///
    /// The fallback must be at least the last walk-reachable category —
    /// both documented fallback conventions (last positive weight, last
    /// category) satisfy this — so that the category is a monotone
    /// non-decreasing function of the draw, which is what makes exact
    /// thresholds exist at all.
    ///
    /// # Panics
    /// Panics if `weights` is empty or longer than [`MAX_CATEGORIES`],
    /// a weight is negative, or `fallback` is out of range or below the
    /// last positive weight.
    pub fn new(weights: &[f64], fallback: usize) -> Self {
        assert!(!weights.is_empty(), "empty distribution");
        assert!(
            weights.len() <= MAX_CATEGORIES,
            "distribution has {} categories, CdfTable supports {MAX_CATEGORIES}",
            weights.len()
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "negative weight in distribution"
        );
        assert!(fallback < weights.len(), "fallback category out of range");
        assert!(
            fallback >= last_positive_category(weights.iter().copied()),
            "fallback below the last reachable category breaks monotonicity"
        );

        let reference = |u: f64| walk_categorical(u, weights.iter().copied()).unwrap_or(fallback);

        // For each category c < fallback, bit-level binary search for the
        // smallest f64 in [0, 1] whose reference category exceeds c.
        // Non-negative f64s order identically to their bit patterns, and
        // the reference category is monotone in the draw (subtracting a
        // constant is monotone under round-to-nearest), so the search is
        // exact.
        let one = 1.0f64.to_bits();
        // Unused slots keep the sentinel (> 1), so the branchless count
        // in `locate` never sees them.
        let mut thresholds = [2.0f64; MAX_CATEGORIES];
        for (c, slot) in thresholds.iter_mut().enumerate().take(fallback) {
            *slot = if reference(0.0) > c {
                0.0
            } else if reference(1.0) <= c {
                2.0 // sentinel: never exceeded inside [0, 1]
            } else {
                let (mut lo, mut hi) = (0u64, one);
                // Invariant: reference(lo) <= c < reference(hi).
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if reference(f64::from_bits(mid)) > c {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                f64::from_bits(hi)
            };
        }
        CdfTable {
            thresholds,
            fallback,
        }
    }

    /// Category of a uniform draw `u ∈ [0, 1)`.
    ///
    /// Branchless: thresholds are non-decreasing (the category function
    /// is monotone), so the category is simply the number of thresholds
    /// at or below the draw — `fallback` when all of them are (sentinel
    /// padding is never counted). A counting loop over a fixed-size
    /// array vectorizes and never mispredicts, unlike an early-exit
    /// scan on a random draw.
    #[inline]
    pub fn locate(&self, u: f64) -> usize {
        self.thresholds.iter().map(|&t| usize::from(u >= t)).sum()
    }

    /// Number of categories covered by the table.
    pub fn len(&self) -> usize {
        self.fallback + 1
    }

    /// `true` only for a single-category table (never empty).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Draws the `f64` grid an RNG with 53-bit mantissa produces, plus
    /// values straddling every threshold.
    fn exhaustive_check(weights: &[f64], fallback: usize) {
        let table = CdfTable::new(weights, fallback);
        let reference = |u: f64| walk_categorical(u, weights.iter().copied()).unwrap_or(fallback);
        // Dense deterministic sweep…
        let n = 200_001u64;
        for k in 0..n {
            let u = k as f64 / n as f64;
            assert_eq!(table.locate(u), reference(u), "u = {u}");
        }
        // …plus every threshold neighborhood down to single ulps.
        for &t in &table.thresholds {
            if !(0.0..=1.0).contains(&t) {
                continue;
            }
            let bits = t.to_bits();
            for b in bits.saturating_sub(3)..=bits.saturating_add(3) {
                let u = f64::from_bits(b);
                if (0.0..1.0).contains(&u) {
                    assert_eq!(table.locate(u), reference(u), "u = {u:e}");
                }
            }
        }
    }

    #[test]
    fn table_matches_reference_walk_on_paper_distributions() {
        // Table 2 shorter / longer columns.
        exhaustive_check(&[0.2, 0.3, 0.3, 0.05, 0.05, 0.05, 0.05, 0.0, 0.0], 6);
        exhaustive_check(&[0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.15, 0.15], 8);
        // Table 3 rows.
        exhaustive_check(&[0.5, 0.3, 0.2], 2);
        exhaustive_check(&[0.6, 0.25, 0.15], 2);
        exhaustive_check(&[0.8, 0.15, 0.05], 2);
    }

    #[test]
    fn degenerate_and_gapped_distributions() {
        exhaustive_check(&[1.0], 0);
        exhaustive_check(&[0.0, 1.0], 1);
        exhaustive_check(&[0.5, 0.0, 0.5], 2);
        // Fallback above the last positive weight (the AltPathDist
        // convention when a custom row zeroes the last category).
        exhaustive_check(&[0.7, 0.3, 0.0], 2);
    }

    #[test]
    fn walk_handles_slack() {
        // Weights summing slightly below the draw: walk must fall off.
        assert_eq!(walk_categorical(1.0, [0.4, 0.6 - 1e-12]), None);
        assert_eq!(walk_categorical(0.0, [0.4, 0.6]), Some(0));
        assert_eq!(walk_categorical(0.0, [0.0, 0.6]), Some(1), "skips zero");
    }

    #[test]
    fn last_positive_skips_trailing_zeros() {
        assert_eq!(last_positive_category([0.2, 0.8, 0.0, 0.0]), 1);
        assert_eq!(last_positive_category([1.0]), 0);
    }

    #[test]
    #[should_panic(expected = "no positive weight")]
    fn all_zero_distribution_panics() {
        last_positive_category([0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "breaks monotonicity")]
    fn fallback_below_reachable_panics() {
        let _ = CdfTable::new(&[0.5, 0.5], 0);
    }

    #[test]
    fn locate_is_monotone() {
        let table = CdfTable::new(&[0.2, 0.3, 0.3, 0.05, 0.05, 0.05, 0.05, 0.0, 0.0], 6);
        let mut prev = 0;
        for k in 0..10_000 {
            let u = k as f64 / 10_000.0;
            let c = table.locate(u);
            assert!(c >= prev, "category regressed at u = {u}");
            prev = c;
        }
        assert_eq!(table.len(), 7);
        assert!(!table.is_empty());
    }
}
