//! Descriptive statistics used by the experiment harness.
//!
//! The paper averages every experiment over 60 independent repetitions
//! (§6.1) and reports percentages, generation series (Fig. 4) and
//! popularity histograms (Tab. 7–9). This crate provides the small,
//! dependency-free numerical toolkit behind those reports:
//!
//! * [`Summary`] — streaming mean / variance (Welford) with confidence
//!   intervals,
//! * [`Series`] — aligned per-generation series averaged across runs,
//! * [`Histogram`] — counting histogram with fraction reports,
//! * [`chi_squared_uniformity`] and friends — goodness-of-fit helpers used
//!   by the distribution tests for Tables 2–3,
//! * [`sampling`] — the shared categorical sampler (linear CDF walk and
//!   precomputed exact-threshold tables) behind the path distributions
//!   and roulette selection.

#![deny(missing_docs)]

pub mod histogram;
pub mod plot;
pub mod sampling;
pub mod series;
pub mod summary;

pub use histogram::Histogram;
pub use plot::{ascii_chart, sparkline, PlotSeries};
pub use sampling::{last_positive_category, walk_categorical, CdfTable};
pub use series::Series;
pub use summary::Summary;

/// Pearson's chi-squared statistic for observed counts against expected
/// probabilities.
///
/// Categories with zero expected probability must have zero observations;
/// otherwise the statistic is infinite (returned as `f64::INFINITY`).
///
/// # Panics
/// Panics if the slices' lengths differ or `expected` does not sum to ~1.
pub fn chi_squared(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "category count mismatch");
    let p_sum: f64 = expected.iter().sum();
    assert!(
        (p_sum - 1.0).abs() < 1e-9,
        "expected probabilities sum to {p_sum}, not 1"
    );
    let n: u64 = observed.iter().sum();
    let n = n as f64;
    let mut stat = 0.0;
    for (&o, &p) in observed.iter().zip(expected) {
        let e = n * p;
        if e == 0.0 {
            if o > 0 {
                return f64::INFINITY;
            }
            continue;
        }
        let d = o as f64 - e;
        stat += d * d / e;
    }
    stat
}

/// Chi-squared statistic against the uniform distribution over
/// `observed.len()` categories.
pub fn chi_squared_uniformity(observed: &[u64]) -> f64 {
    let k = observed.len();
    assert!(k > 0, "no categories");
    let p = vec![1.0 / k as f64; k];
    chi_squared(observed, &p)
}

/// 99.9 % critical values of the chi-squared distribution for small degrees
/// of freedom (1..=15), used by statistical unit tests so they practically
/// never flake.
///
/// # Panics
/// Panics if `dof` is outside `1..=15`.
pub fn chi_squared_crit_999(dof: usize) -> f64 {
    const TABLE: [f64; 15] = [
        10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124, 27.877, 29.588, 31.264,
        32.909, 34.528, 36.123, 37.697,
    ];
    assert!((1..=15).contains(&dof), "dof {dof} outside table");
    TABLE[dof - 1]
}

/// Weighted mean of `(value, weight)` pairs; returns `None` when the total
/// weight is zero.
pub fn weighted_mean<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Option<f64> {
    let (mut num, mut den) = (0.0, 0.0);
    for (v, w) in pairs {
        num += v * w;
        den += w;
    }
    (den != 0.0).then(|| num / den)
}

/// A safe ratio: `num / den`, or 0 when `den == 0`. Experiment reports are
/// full of "percentage of X among Y" quantities where Y can be empty in
/// tiny configurations.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Formats a fraction as the paper prints it: a percentage with `digits`
/// decimal places (e.g. `0.23 %` in Tab. 6).
pub fn pct(fraction: f64, digits: usize) -> String {
    format!("{:.*}%", digits, fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_squared_perfect_fit_is_zero() {
        let obs = [25u64, 25, 25, 25];
        assert_eq!(chi_squared_uniformity(&obs), 0.0);
    }

    #[test]
    fn chi_squared_detects_skew() {
        let obs = [100u64, 0, 0, 0];
        assert!(chi_squared_uniformity(&obs) > chi_squared_crit_999(3));
    }

    #[test]
    fn chi_squared_zero_probability_category() {
        // Observation in an impossible category -> infinite statistic.
        let obs = [10u64, 1];
        assert_eq!(chi_squared(&obs, &[1.0, 0.0]), f64::INFINITY);
        // No observation there -> finite.
        let obs = [10u64, 0];
        assert_eq!(chi_squared(&obs, &[1.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "category count mismatch")]
    fn chi_squared_length_mismatch_panics() {
        let _ = chi_squared(&[1, 2], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn chi_squared_bad_probabilities_panic() {
        let _ = chi_squared(&[1, 2], &[0.3, 0.3]);
    }

    #[test]
    fn weighted_mean_basics() {
        assert_eq!(weighted_mean([(1.0, 1.0), (3.0, 1.0)]), Some(2.0));
        assert_eq!(weighted_mean([(1.0, 3.0), (5.0, 1.0)]), Some(2.0));
        assert_eq!(weighted_mean(std::iter::empty()), None);
        assert_eq!(weighted_mean([(1.0, 0.0)]), None);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(3, 4), 0.75);
        assert_eq!(ratio(3, 0), 0.0);
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.9702, 0), "97%");
        assert_eq!(pct(0.0023, 2), "0.23%");
    }

    #[test]
    fn crit_values_are_monotone() {
        for d in 2..=15 {
            assert!(chi_squared_crit_999(d) > chi_squared_crit_999(d - 1));
        }
    }
}
