//! Minimal terminal plotting for experiment output.
//!
//! The paper's Figure 4 is a line chart of cooperation level vs.
//! generation for four cases. [`ascii_chart`] renders the same picture in
//! a terminal so `ahn-exp fig4` can show the *shape* (who converges
//! where, how fast) without leaving the shell; the CSV export remains the
//! source of truth for real plotting.

/// One named series for [`ascii_chart`].
#[derive(Debug, Clone)]
pub struct PlotSeries<'a> {
    /// Legend label.
    pub label: &'a str,
    /// Y values, plotted against their index.
    pub values: &'a [f64],
    /// Character marking this series.
    pub marker: char,
}

/// Renders series as an ASCII chart of the given size. Y range is fixed
/// to `[0, 1]` (all our series are cooperation fractions). Markers
/// overwrite each other back-to-front, so order series by importance.
///
/// # Panics
/// Panics if `width` or `height` is zero.
pub fn ascii_chart(series: &[PlotSeries<'_>], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "empty chart area");
    let mut grid = vec![vec![' '; width]; height];
    let max_len = series.iter().map(|s| s.values.len()).max().unwrap_or(0);

    for s in series.iter().rev() {
        if s.values.is_empty() {
            continue;
        }
        // The column indexes a different row of `grid` each iteration, so
        // no single iterator replaces the range loop.
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            // Map the column to an index in the series.
            let idx = if max_len <= 1 {
                0
            } else {
                col * (max_len - 1) / (width - 1).max(1)
            };
            let Some(&v) = s.values.get(idx) else {
                continue;
            };
            let v = v.clamp(0.0, 1.0);
            let row = ((1.0 - v) * (height - 1) as f64).round() as usize;
            grid[row][col] = s.marker;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y = 1.0 - r as f64 / (height - 1).max(1) as f64;
        out.push_str(&format!("{:>5.0}% |", y * 100.0));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("       +{}\n", "-".repeat(width)));
    out.push_str(&format!(
        "        0{:>width$}\n",
        max_len.saturating_sub(1),
        width = width - 1
    ));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} {}", s.marker, s.label))
        .collect();
    out.push_str(&format!("        {}\n", legend.join("   ")));
    out
}

/// A one-line sparkline over `[0, 1]`-ranged values using block glyphs.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let v = v.clamp(0.0, 1.0);
            BLOCKS[((v * 7.0).round() as usize).min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_has_requested_dimensions() {
        let values = [0.0, 0.5, 1.0];
        let s = PlotSeries {
            label: "demo",
            values: &values,
            marker: '*',
        };
        let chart = ascii_chart(&[s], 30, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // height rows + axis + x labels + legend.
        assert_eq!(lines.len(), 13);
        assert!(lines[0].starts_with("  100% |"));
        assert!(lines[9].starts_with("    0% |"));
        assert!(chart.contains("* demo"));
    }

    #[test]
    fn rising_series_touches_both_corners() {
        let values: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
        let s = PlotSeries {
            label: "up",
            values: &values,
            marker: 'o',
        };
        let chart = ascii_chart(&[s], 40, 8);
        let lines: Vec<&str> = chart.lines().collect();
        // Top row has a marker near the right edge, bottom near the left.
        assert!(lines[0].trim_end().ends_with('o'));
        assert_eq!(lines[7].chars().nth(8), Some('o'), "{chart}");
    }

    #[test]
    fn multiple_series_share_the_grid() {
        let flat = [0.5; 10];
        let low = [0.1; 10];
        let chart = ascii_chart(
            &[
                PlotSeries {
                    label: "a",
                    values: &flat,
                    marker: 'a',
                },
                PlotSeries {
                    label: "b",
                    values: &low,
                    marker: 'b',
                },
            ],
            20,
            10,
        );
        assert!(chart.contains('a'));
        assert!(chart.contains('b'));
    }

    #[test]
    fn first_series_wins_collisions() {
        let v = [0.5; 5];
        let chart = ascii_chart(
            &[
                PlotSeries {
                    label: "front",
                    values: &v,
                    marker: 'F',
                },
                PlotSeries {
                    label: "back",
                    values: &v,
                    marker: 'B',
                },
            ],
            10,
            5,
        );
        assert!(chart.contains('F'));
        // The back marker is fully overwritten on the grid (it still
        // appears in the legend).
        let grid_part: String = chart.lines().take(5).collect();
        assert!(!grid_part.contains('B'));
    }

    #[test]
    fn empty_series_is_tolerated() {
        let chart = ascii_chart(
            &[PlotSeries {
                label: "none",
                values: &[],
                marker: 'x',
            }],
            10,
            4,
        );
        assert!(chart.contains("x none"));
    }

    #[test]
    fn sparkline_maps_extremes() {
        let line = sparkline(&[0.0, 1.0]);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    #[should_panic(expected = "empty chart area")]
    fn zero_size_panics() {
        let _ = ascii_chart(&[], 0, 5);
    }
}
