//! Property-based tests for the statistics toolkit.

use ahn_stats::{chi_squared_uniformity, ratio, weighted_mean, Histogram, Series, Summary};
use proptest::prelude::*;

proptest! {
    /// Welford mean/variance agree with the naive two-pass formulas.
    #[test]
    fn summary_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: Summary = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((s.mean().unwrap() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.variance().unwrap() - var).abs() < 1e-4 * (1.0 + var));
        }
        prop_assert_eq!(s.min().unwrap(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().unwrap(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging partitions is equivalent to a single pass, wherever the
    /// split point falls.
    #[test]
    fn summary_merge_any_split(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split_frac in 0.0f64..=1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        if xs.len() > 1 {
            prop_assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-6);
        }
    }

    /// Histogram totals and fractions are consistent.
    #[test]
    fn histogram_bookkeeping(keys in proptest::collection::vec(0u64..32, 0..300)) {
        let h: Histogram = keys.iter().copied().collect();
        prop_assert_eq!(h.total(), keys.len() as u64);
        let frac_sum: f64 = (0..32).map(|k| h.fraction(k)).sum();
        if !keys.is_empty() {
            prop_assert!((frac_sum - 1.0).abs() < 1e-9);
        }
        // ranked() is sorted and conserves counts.
        let ranked = h.ranked();
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        let count_sum: u64 = ranked.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(count_sum, h.total());
    }

    /// Series means are invariant to the order runs are added in.
    #[test]
    fn series_run_order_invariance(
        a in proptest::collection::vec(0.0f64..1.0, 1..20),
        b in proptest::collection::vec(0.0f64..1.0, 1..20),
    ) {
        let mut ab = Series::new();
        ab.add_run(&a);
        ab.add_run(&b);
        let mut ba = Series::new();
        ba.add_run(&b);
        ba.add_run(&a);
        let (ma, mb) = (ab.means(), ba.means());
        prop_assert_eq!(ma.len(), mb.len());
        for (x, y) in ma.iter().zip(&mb) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// chi-squared is zero iff observations are perfectly uniform.
    #[test]
    fn chi_squared_zero_iff_uniform(count in 1u64..100, k in 1usize..10) {
        let obs = vec![count; k];
        prop_assert!(chi_squared_uniformity(&obs) < 1e-9);
    }

    /// ratio() never divides by zero and is exact otherwise.
    #[test]
    fn ratio_total(num in 0u64..1000, den in 0u64..1000) {
        let r = ratio(num, den);
        if den == 0 {
            prop_assert_eq!(r, 0.0);
        } else {
            prop_assert!((r - num as f64 / den as f64).abs() < 1e-15);
        }
    }

    /// weighted_mean lies within the convex hull of its inputs.
    #[test]
    fn weighted_mean_in_hull(pairs in proptest::collection::vec((-100.0f64..100.0, 0.01f64..10.0), 1..30)) {
        let m = weighted_mean(pairs.iter().copied()).unwrap();
        let lo = pairs.iter().map(|&(v, _)| v).fold(f64::INFINITY, f64::min);
        let hi = pairs.iter().map(|&(v, _)| v).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }
}
