//! Micro-benchmarks of the simulation's hot paths.
//!
//! The single-game benchmark is the headline number: one Ad Hoc Network
//! Game (path generation + rating + decisions + payoffs + watchdog
//! updates) runs in well under a microsecond, which is what makes
//! paper-scale experiments (hundreds of millions of games) tractable.

use ahn_bench::{bench_arena, bench_bignet_arena, bench_rng};
use ahn_bitstr::{ops, BitStr};
use ahn_ga::{next_generation, next_generation_into, GaParams};
use ahn_game::{game::Scratch, play_game, Tournament};
use ahn_net::{
    paths::{path_rating, select_best_path, AltPathDist, PathGenerator, PathLengthDist},
    NodeId, PathMode, PathScratch, ReputationMatrix, TrustTable,
};
use ahn_strategy::Strategy;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_single_game(c: &mut Criterion) {
    let (mut arena, participants) = bench_arena(1);
    let mut rng = bench_rng(2);
    let mut scratch = Scratch::default();
    c.bench_function("game/play_game_50_nodes", |b| {
        b.iter(|| {
            let report = play_game(
                &mut arena,
                &mut rng,
                participants[0],
                &participants,
                0,
                &mut scratch,
            );
            black_box(report.outcome)
        })
    });
}

fn bench_tournament_round(c: &mut Criterion) {
    c.bench_function("game/tournament_50_nodes_10_rounds", |b| {
        let (mut arena, participants) = bench_arena(3);
        let mut rng = bench_rng(4);
        let tournament = Tournament::new(10);
        b.iter(|| {
            arena.begin_generation();
            tournament.run(&mut arena, &mut rng, &participants, 0);
            black_box(arena.metrics.env(0).nn_games)
        })
    });
}

fn bench_reputation(c: &mut Criterion) {
    let mut m = ReputationMatrix::new(130);
    let mut rng = bench_rng(5);
    use rand::Rng as _;
    for _ in 0..5_000 {
        let o = NodeId(rng.gen_range(0..130));
        let s = NodeId(rng.gen_range(0..130));
        if o != s {
            m.record_forward(o, s);
        }
    }
    c.bench_function("reputation/rate_lookup", |b| {
        b.iter(|| black_box(m.rate(NodeId(3), NodeId(77))))
    });
    c.bench_function("reputation/rate_or_unknown_lookup", |b| {
        b.iter(|| black_box(m.rate_or_unknown(NodeId(3), NodeId(77))))
    });
    c.bench_function("reputation/mean_forwarded_of_known_130", |b| {
        b.iter(|| black_box(m.mean_forwarded_of_known(NodeId(3))))
    });
    let trust = TrustTable::paper();
    c.bench_function("reputation/trust_level_lookup", |b| {
        b.iter(|| black_box(trust.level_opt(m.rate(NodeId(3), NodeId(77)))))
    });
    // The update path, including the incremental rate / row-aggregate
    // maintenance: one forward and one drop per iteration, on a matrix
    // that is periodically reset so the counters stay small.
    c.bench_function("reputation/record_forward_and_drop", |b| {
        let mut fresh = ReputationMatrix::new(130);
        let mut i = 0u32;
        b.iter(|| {
            fresh.record_forward(NodeId(3), NodeId(77));
            fresh.record_drop(NodeId(77), NodeId(3));
            i += 1;
            if i >= 1_000_000 {
                fresh.clear();
                i = 0;
            }
            black_box(fresh.rate_or_unknown(NodeId(3), NodeId(77)))
        })
    });
}

/// Sparse-row lookup and update against the dense equivalents, at the
/// paper scale (N = 50) and big-network scale (N = 1000) — so a
/// regression in either backing is attributable to its layer.
fn bench_sparse_reputation(c: &mut Criterion) {
    use rand::Rng as _;
    for n in [50u32, 1000] {
        let mut sparse = ReputationMatrix::new_sparse(n as usize);
        let mut rng = bench_rng(u64::from(n));
        for _ in 0..(n * 40) {
            let o = NodeId(rng.gen_range(0..n));
            let s = NodeId(rng.gen_range(0..n));
            if o != s {
                sparse.record_forward(o, s);
            }
        }
        // A known and an unknown pair, fixed across iterations.
        let (known_o, known_s) = (NodeId(3), NodeId(n - 1));
        sparse.record_forward(known_o, known_s);
        c.bench_function(&format!("reputation/sparse_lookup_hit_{n}"), |b| {
            b.iter(|| black_box(sparse.rate_or_unknown(known_o, known_s)))
        });
        c.bench_function(&format!("reputation/sparse_lookup_all_{n}"), |b| {
            let mut s = 1u32;
            b.iter(|| {
                s = if s + 1 >= n { 1 } else { s + 1 };
                black_box(sparse.rate_or_unknown(NodeId(0), NodeId(s)))
            })
        });
        c.bench_function(&format!("reputation/sparse_update_{n}"), |b| {
            let mut fresh = ReputationMatrix::new_sparse(n as usize);
            let mut i = 0u32;
            b.iter(|| {
                fresh.record_forward(known_o, known_s);
                fresh.record_drop(known_s, known_o);
                i += 1;
                if i >= 1_000_000 {
                    fresh.clear();
                    i = 0;
                }
                black_box(fresh.rate_or_unknown(known_o, known_s))
            })
        });
    }
}

/// An arena fixture builder (`bench_arena` / `bench_bignet_arena`).
type ArenaBuilder = fn(u64) -> (ahn_game::Arena, Vec<NodeId>);

/// One full SoA-arena tournament round (every participant sources one
/// game) at the paper scale and the 1 000-node sparse scale.
fn bench_arena_round(c: &mut Criterion) {
    let cases: [(&str, ArenaBuilder); 2] = [
        ("game/arena_round_50_nodes", bench_arena),
        ("game/arena_round_1000_nodes", bench_bignet_arena),
    ];
    for (name, build) in cases {
        let (mut arena, participants) = build(9);
        let mut rng = bench_rng(10);
        let mut scratch = Scratch::default();
        // Warm the reputation rows and scratch buffers so the bench
        // times the steady state, not first-touch growth.
        for _ in 0..2 {
            for &source in &participants {
                play_game(&mut arena, &mut rng, source, &participants, 0, &mut scratch);
            }
        }
        c.bench_function(name, |b| {
            b.iter(|| {
                for &source in &participants {
                    play_game(&mut arena, &mut rng, source, &participants, 0, &mut scratch);
                }
                black_box(arena.metrics.env(0).nn_games)
            })
        });
    }
}

fn bench_path_generation(c: &mut Criterion) {
    let generator = PathGenerator::for_mode(PathMode::Longer);
    let pool: Vec<NodeId> = (2..50u32).map(NodeId).collect();
    let mut rng = bench_rng(6);
    let mut scratch = Vec::new();
    c.bench_function("paths/generate_candidates_LP", |b| {
        b.iter(|| black_box(generator.generate(&mut rng, &pool, &mut scratch)))
    });
    let mut path_scratch = PathScratch::default();
    c.bench_function("paths/generate_into_candidates_LP", |b| {
        b.iter(|| {
            generator.generate_into(&mut rng, &pool, &mut path_scratch);
            black_box(path_scratch.n_candidates())
        })
    });

    // The precomputed-table samplers on their own.
    let lengths = PathLengthDist::paper_longer();
    c.bench_function("paths/sample_length_LP", |b| {
        b.iter(|| black_box(lengths.sample(&mut rng)))
    });
    let alts = AltPathDist::paper();
    c.bench_function("paths/sample_alt_count_5hops", |b| {
        b.iter(|| black_box(alts.sample(&mut rng, 5)))
    });

    let m = ReputationMatrix::new(50);
    let candidates: Vec<Vec<NodeId>> = (0..3)
        .map(|_| generator.generate(&mut rng, &pool, &mut scratch).remove(0))
        .collect();
    c.bench_function("paths/rate_and_select_3_candidates", |b| {
        b.iter(|| {
            let i = select_best_path(&m, NodeId(0), &candidates);
            black_box(path_rating(&m, NodeId(0), &candidates[i]))
        })
    });
}

fn bench_strategy_ops(c: &mut Criterion) {
    let mut rng = bench_rng(7);
    let s = Strategy::random(&mut rng);
    c.bench_function("strategy/decision_lookup", |b| {
        b.iter(|| {
            black_box(s.decision(
                black_box(ahn_net::TrustLevel::T2),
                black_box(ahn_net::ActivityLevel::Mi),
            ))
        })
    });
    c.bench_function("strategy/encode", |b| b.iter(|| black_box(s.encode())));
}

fn bench_ga(c: &mut Criterion) {
    let mut rng = bench_rng(8);
    let population: Vec<BitStr> = (0..100).map(|_| BitStr::random(&mut rng, 13)).collect();
    let fitnesses: Vec<f64> = (0..100).map(|i| i as f64).collect();
    let params = GaParams::paper();
    c.bench_function("ga/next_generation_100x13", |b| {
        b.iter(|| black_box(next_generation(&mut rng, &params, &population, &fitnesses)))
    });
    let mut offspring: Vec<BitStr> = Vec::new();
    c.bench_function("ga/next_generation_into_100x13", |b| {
        b.iter(|| {
            next_generation_into(&mut rng, &params, &population, &fitnesses, &mut offspring);
            black_box(offspring.len())
        })
    });
    let a = BitStr::random(&mut rng, 13);
    let bgen = BitStr::random(&mut rng, 13);
    c.bench_function("ga/one_point_crossover_13", |b| {
        b.iter(|| black_box(ops::one_point_crossover(&mut rng, &a, &bgen)))
    });
}

criterion_group!(
    benches,
    bench_single_game,
    bench_tournament_round,
    bench_reputation,
    bench_sparse_reputation,
    bench_arena_round,
    bench_path_generation,
    bench_strategy_ops,
    bench_ga,
);
criterion_main!(benches);
