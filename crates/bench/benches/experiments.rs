//! One benchmark per paper artifact (DESIGN.md §3).
//!
//! Each bench runs the code path that regenerates the artifact — the same
//! `run_replication` / report pipeline the `ahn-exp` binary uses — at a
//! reduced but dynamics-preserving scale (10-node tournaments, 30-round
//! reputation horizon, 8 generations). `cargo bench` therefore exercises
//! and times every experiment end to end; the full-scale numbers live in
//! EXPERIMENTS.md.

use ahn_bench::{bench_case, bench_config, bench_rng};
use ahn_core::{baselines, experiment::run_replication, report};
use ahn_ipdrp::{run_ipdrp, IpdrpConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Figure 4 — evolution of cooperation (cases 1–4 reduce to CSN-free and
/// CSN-heavy mini environments).
fn bench_fig4(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig4_cooperation");
    group.sample_size(10);
    group.bench_function("csn_free_case", |b| {
        let case = bench_case(&[0]);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_replication(&cfg, &case, seed).coop_by_gen)
        })
    });
    group.bench_function("csn_heavy_case", |b| {
        let case = bench_case(&[6]);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_replication(&cfg, &case, seed).coop_by_gen)
        })
    });
    group.finish();
}

/// Table 5 — per-environment cooperation and CSN-free paths.
fn bench_table5(c: &mut Criterion) {
    let cfg = bench_config();
    let case = bench_case(&[0, 3, 6]);
    let mut group = c.benchmark_group("table5_per_env");
    group.sample_size(10);
    group.bench_function("three_environments", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = run_replication(&cfg, &case, seed);
            black_box(
                r.final_by_env
                    .iter()
                    .map(|m| (m.cooperation_level(), m.csn_free_share()))
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.finish();
}

/// Table 6 — request-response accounting.
fn bench_table6(c: &mut Criterion) {
    let cfg = bench_config();
    let case = bench_case(&[3]);
    let mut group = c.benchmark_group("table6_requests");
    group.sample_size(10);
    group.bench_function("request_matrix", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = run_replication(&cfg, &case, seed);
            black_box((
                r.final_total.from_nn.fractions(),
                r.final_total.from_csn.fractions(),
            ))
        })
    });
    group.finish();
}

/// Tables 7–9 — strategy census over final populations (the census and
/// report rendering on top of one evolution).
fn bench_table7_8_9(c: &mut Criterion) {
    let cfg = bench_config();
    let case = bench_case(&[3]);
    // Build one result to isolate the census/report cost.
    let rep = run_replication(&cfg, &case, 42);
    let mut group = c.benchmark_group("table7_strategies");
    group.bench_function("census_and_top5", |b| {
        b.iter(|| {
            let mut census = ahn_strategy::analysis::StrategyCensus::new();
            census.add_population(&rep.final_population);
            black_box(census.top_strategies(5))
        })
    });
    group.bench_function("table8_substrat", |b| {
        let mut census = ahn_strategy::analysis::StrategyCensus::new();
        census.add_population(&rep.final_population);
        b.iter(|| {
            black_box(
                ahn_net::TrustLevel::ALL
                    .iter()
                    .map(|&t| census.sub_strategies(t, 0.03))
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.finish();

    // Render path (string formatting) for the full report.
    let aggregated = ahn_core::experiment::aggregate(&cfg, &case, &[rep]);
    c.bench_function("report/render_tables", |b| {
        b.iter(|| {
            black_box((
                report::table7(&[&aggregated, &aggregated]),
                report::table8_9(&aggregated, 0.03),
            ))
        })
    });
}

/// X3 — the IPDRP baseline evolution.
fn bench_ipdrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipdrp_evolution");
    group.sample_size(10);
    group.bench_function("pop40_30rounds_8gens", |b| {
        let config = IpdrpConfig {
            population: 40,
            rounds: 30,
            generations: 8,
            ..IpdrpConfig::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = bench_rng(seed);
            black_box(run_ipdrp(&mut rng, &config))
        })
    });
    group.finish();
}

/// X1 — the pathrater avoidance baseline.
fn bench_pathrater(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("baseline_pathrater");
    group.sample_size(10);
    group.bench_function("rated_vs_random", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(baselines::pathrater_comparison(&cfg, 12, 4, seed))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_table5,
    bench_table6,
    bench_table7_8_9,
    bench_ipdrp,
    bench_pathrater,
);
criterion_main!(benches);
