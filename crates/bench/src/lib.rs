//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches live in `benches/`:
//!
//! * `components` — micro-benchmarks of the hot paths (single game,
//!   tournament round, reputation ops, path generation, GA breeding);
//! * `experiments` — one bench per paper artifact (Figure 4,
//!   Tables 5–9, the IPDRP baseline X3 and the pathrater baseline X1) at
//!   a reduced but dynamics-preserving scale. Full-scale regeneration is
//!   the `ahn-exp` binary's job; these benches track the harness's
//!   performance so regressions in the simulation core are caught by
//!   `cargo bench`.
//!
//! The [`harness`] module is the `ahn-exp bench` measurement subsystem:
//! it times the artifact pipelines and game throughput and produces the
//! `BENCH_N.json` baseline reports (see PERFORMANCE.md).

#![deny(missing_docs)]

pub mod harness;

use ahn_core::{cases::CaseSpec, config::ExperimentConfig};
use ahn_game::{Arena, GameConfig};
use ahn_net::{NodeId, PathMode};
use ahn_strategy::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic RNG for benches.
pub fn bench_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A 50-node arena (paper tournament size) with mixed strategies and a
/// CSN minority.
pub fn bench_arena(seed: u64) -> (Arena, Vec<NodeId>) {
    let mut rng = bench_rng(seed);
    let strategies: Vec<Strategy> = (0..40).map(|_| Strategy::random(&mut rng)).collect();
    let arena = Arena::new(strategies, 10, GameConfig::paper(PathMode::Shorter), 1);
    let participants: Vec<NodeId> = (0..50u32).map(NodeId).collect();
    (arena, participants)
}

/// A 1 000-node arena (big-network scale: sparse reputation backing)
/// with the paper's 20% CSN share, all nodes participating.
pub fn bench_bignet_arena(seed: u64) -> (Arena, Vec<NodeId>) {
    let mut rng = bench_rng(seed);
    let strategies: Vec<Strategy> = (0..800).map(|_| Strategy::random(&mut rng)).collect();
    let arena = Arena::new(strategies, 200, GameConfig::paper(PathMode::Shorter), 1);
    debug_assert!(arena.reputation.is_sparse());
    let participants: Vec<NodeId> = (0..1000u32).map(NodeId).collect();
    (arena, participants)
}

/// The 16-cell scenario grid behind the `sweep_cells_per_second` bench
/// row: 2 cases x 2 payoff variants x 2 sizes x 2 seed blocks at a
/// dynamics-preserving smoke scale.
pub fn bench_sweep_grid() -> ahn_core::sweeps::SweepGrid {
    let mut base = bench_config();
    base.generations = 3;
    ahn_core::sweeps::SweepGrid {
        base,
        scenarios: None,
        cases: vec![1, 2],
        payoffs: vec!["paper".into(), "literal-ocr".into()],
        sizes: vec![10, 12],
        seed_blocks: vec![0, 1],
    }
}

/// The 8-cell reconstruction-search grid behind the
/// `calibrate_cells_per_second` bench row: 2 candidates x 2 cases x 2
/// seed blocks at a dynamics-preserving smoke scale (each cell a full
/// seeded experiment, scored against the paper targets).
pub fn bench_calibration_grid() -> ahn_core::CalibrationGrid {
    let mut base = bench_config();
    base.generations = 3;
    ahn_core::CalibrationGrid {
        base,
        cases: vec![1, 2],
        scales: vec![1.0],
        selections: vec!["paper".into()],
        size: 10,
        seed_blocks: vec![0, 1],
        max_candidates: 2,
    }
}

/// The reduced experiment configuration used by the per-artifact benches:
/// real dynamics (30-round reputation horizon in 10-node tournaments; see
/// EXPERIMENTS.md "scale sensitivity") at a cost Criterion can sample.
pub fn bench_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.replications = 1;
    cfg.generations = 8;
    cfg
}

/// The mini evaluation case matching [`bench_config`].
pub fn bench_case(csn_counts: &[usize]) -> CaseSpec {
    CaseSpec::mini("bench", csn_counts, 10, PathMode::Shorter)
}
