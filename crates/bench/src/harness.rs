//! The `ahn-exp bench` measurement harness.
//!
//! Wall-clock times the paper-artifact pipelines (Figure 4, Table 5, the
//! IPDRP baseline) at the fixed *bench scale* plus raw game throughput
//! on a paper-sized tournament, and packages the numbers as a serde
//! report. The `ahn-exp bench --json` command prints the report;
//! `BENCH_N.json` files at the repository root commit before/after pairs
//! of these reports so every performance PR leaves a trajectory
//! (measurement protocol: PERFORMANCE.md).
//!
//! Every pipeline is run [`MEASURE_RUNS`] times and the **minimum** is
//! reported: minima are the standard low-noise estimator for
//! deterministic workloads (everything above the minimum is scheduler
//! noise, not the code under test).

use crate::{
    bench_arena, bench_bignet_arena, bench_case, bench_config, bench_rng, bench_sweep_grid,
};
use ahn_core::experiment::run_replication;
use ahn_game::Tournament;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How often each pipeline is timed (minimum wins).
pub const MEASURE_RUNS: usize = 5;

/// Rounds of the throughput tournament (the paper's R).
const THROUGHPUT_ROUNDS: usize = 300;

/// Rounds of the big-network throughput tournament (1 000 nodes; 100
/// rounds keeps one run under a second while reaching the sparse rows'
/// steady state).
const BIGNET_ROUNDS: usize = 100;

/// Distinct seeds per replication pipeline, so the timing averages over
/// path-length and evolution variance instead of pinning one trajectory.
pub const SEEDS_PER_PIPELINE: u64 = 2;

/// Distinct job specs in the serve bench's cache-miss phase.
pub const SERVE_DISTINCT: usize = 24;

/// Submissions in the serve bench's cache-hit phase.
pub const SERVE_HIT_REQUESTS: usize = 600;

/// One timed bench run: artifact-pipeline seconds plus game throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report schema tag (`"ahn-bench/2"`; `"ahn-bench/1"` reports
    /// predate the environment and thread-scaling rows and still
    /// deserialize with those fields `None`).
    pub schema: String,
    /// Human description of the measured scale.
    pub scale: String,
    /// Seconds for the Figure-4 pipeline (CSN-free + CSN-heavy case,
    /// [`SEEDS_PER_PIPELINE`] seeded replications each).
    pub fig4_seconds: f64,
    /// Seconds for the Table-5 pipeline (three-environment case,
    /// [`SEEDS_PER_PIPELINE`] seeded replications).
    pub table5_seconds: f64,
    /// Seconds for the IPDRP baseline pipeline.
    pub ipdrp_seconds: f64,
    /// Steady-state Ad Hoc Network Games per second in a 50-node,
    /// 300-round tournament (the paper-scale inner loop).
    pub games_per_second: f64,
    /// Serving throughput, cache-miss side: sequential submissions of
    /// [`SERVE_DISTINCT`] distinct specs against an in-process
    /// `ahn_serve` server, each polled to completion (requests/s over
    /// the full HTTP + queue + worker + serialize path). `None` in
    /// reports measured before the serve subsystem existed.
    pub serve_miss_rps: Option<f64>,
    /// Serving throughput, cache-hit side: [`SERVE_HIT_REQUESTS`]
    /// submissions of already-cached specs over 4 keep-alive
    /// connections (requests/s). `None` in pre-serve reports.
    pub serve_hit_rps: Option<f64>,
    /// Steady-state games per second in a 1 000-node, 100-round
    /// tournament — the sparse-reputation inner loop at 20x the paper's
    /// network size. `None` in reports measured before the sparse
    /// substrate existed.
    pub bignet_games_per_second: Option<f64>,
    /// Scenario-sweep engine throughput: cells per second over the
    /// 16-cell grid of `bench_sweep_grid` (each cell a full seeded
    /// experiment). `None` in pre-sweep reports.
    pub sweep_cells_per_second: Option<f64>,
    /// Reconstruction-search throughput: cells per second over the
    /// 8-cell grid of `bench_calibration_grid` (candidate enumeration +
    /// per-candidate sweeps + scoring, the full `ahn-exp calibrate`
    /// path). `None` in reports measured before the calibration engine
    /// existed.
    pub calibrate_cells_per_second: Option<f64>,
    /// Distributed-sweep throughput: cells per second over the same
    /// 16-cell grid, but run through a pull-only `ahn_serve` node by
    /// external pull workers and merged by the coordinator
    /// (`run_sweep_via`) — the full claim/complete/journal-free path.
    /// Measured at 1, 2 and 4 workers; the best count is recorded (on a
    /// single-core host all three are expected to tie). `None` in
    /// reports measured before the distributed layer existed.
    pub distributed_cells_per_second: Option<f64>,
    /// Cores the measuring host exposed (`available_parallelism`,
    /// ignoring any `AHN_THREADS` cap). `None` in pre-`ahn-bench/2`
    /// reports.
    pub host_cores: Option<u64>,
    /// Effective worker-thread count at measurement time (host cores
    /// capped by `AHN_THREADS`). `None` in pre-`ahn-bench/2` reports.
    pub ahn_threads: Option<u64>,
    /// Whether the binary looked like a `-C target-cpu=native` build
    /// (the [`portable_build_warning`] probe came back clean). `None`
    /// in pre-`ahn-bench/2` reports.
    pub target_cpu_native: Option<bool>,
    /// Aggregate games per second across 1 concurrent paper-scale
    /// tournament pinned to `AHN_THREADS=1` — the thread-scaling
    /// anchor. `None` in pre-`ahn-bench/2` reports or when `--threads`
    /// excluded 1.
    pub games_per_second_t1: Option<f64>,
    /// Aggregate games per second across 4 concurrent paper-scale
    /// tournaments under `AHN_THREADS=4`. `None` when the host has
    /// fewer than 4 cores (a capped run would mismeasure scaling), when
    /// `--threads` excluded 4, or in pre-`ahn-bench/2` reports.
    pub games_per_second_t4: Option<f64>,
    /// Aggregate games per second across 8 concurrent paper-scale
    /// tournaments under `AHN_THREADS=8`. `None` on hosts with fewer
    /// than 8 cores, when `--threads` excluded 8, or in
    /// pre-`ahn-bench/2` reports.
    pub games_per_second_t8: Option<f64>,
    /// Parallel efficiency of the sweep engine:
    /// `(cells/s at t) / (t × cells/s at t=1)` where `t` is the largest
    /// of {4, 8} the host can actually run (falling back to the core
    /// count itself on 2–3-core hosts). 1.0 is perfect linear scaling.
    /// `None` on single-core hosts and in pre-`ahn-bench/2` reports.
    pub sweep_scaling_efficiency: Option<f64>,
}

/// A committed before/after baseline pair (the `BENCH_N.json` format).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchBaseline {
    /// File schema tag (`"ahn-bench-baseline/1"`).
    pub schema: String,
    /// What changed between `before` and `after`.
    pub note: String,
    /// Report measured on the tree *before* the change.
    pub before: BenchReport,
    /// Report measured on the tree *after* the change.
    pub after: BenchReport,
}

impl BenchBaseline {
    /// End-to-end speedup factors (`before / after`) per pipeline, in
    /// report order, plus the throughput ratio (`after / before`).
    pub fn speedups(&self) -> [(&'static str, f64); 4] {
        [
            ("fig4", self.before.fig4_seconds / self.after.fig4_seconds),
            (
                "table5",
                self.before.table5_seconds / self.after.table5_seconds,
            ),
            (
                "ipdrp",
                self.before.ipdrp_seconds / self.after.ipdrp_seconds,
            ),
            (
                "games_per_second",
                self.after.games_per_second / self.before.games_per_second,
            ),
        ]
    }
}

/// `Some(reason)` when this binary was probably **not** built with
/// `-C target-cpu=native` — the build configuration every committed
/// `BENCH_N.json` baseline assumes (`.cargo/config.toml`). Numbers from
/// a portable build are systematically slower and must never be
/// compared against a native baseline, so `ahn-exp bench` prints this
/// loudly.
///
/// Detection is a compile-time proxy: the portable `x86-64` baseline
/// predates SSE4.2 (2008), while `target-cpu=native` enables it on any
/// host this workspace realistically runs on. Non-x86 targets have no
/// comparably reliable probe and return `None`.
pub fn portable_build_warning() -> Option<String> {
    if cfg!(all(target_arch = "x86_64", not(target_feature = "sse4.2"))) {
        Some(
            "this binary was built without -C target-cpu=native (no SSE4.2): \
             numbers are NOT comparable to committed BENCH_N baselines — build \
             from the repository root so .cargo/config.toml applies"
                .into(),
        )
    } else {
        None
    }
}

/// Times `f` [`MEASURE_RUNS`] times and returns the minimum seconds.
fn time_min<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_RUNS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Pins `AHN_THREADS` for the lifetime of the guard and restores the
/// previous state (set or unset) on drop, so a thread-scaling phase
/// can never leak its cap into the rest of the suite.
struct ThreadCap {
    previous: Option<String>,
}

impl ThreadCap {
    fn pin(threads: usize) -> Self {
        let previous = std::env::var("AHN_THREADS").ok();
        std::env::set_var("AHN_THREADS", threads.to_string());
        ThreadCap { previous }
    }
}

impl Drop for ThreadCap {
    fn drop(&mut self) {
        match self.previous.take() {
            Some(value) => std::env::set_var("AHN_THREADS", value),
            None => std::env::remove_var("AHN_THREADS"),
        }
    }
}

/// Aggregate games per second of `t` concurrent paper-scale tournaments
/// under `AHN_THREADS=t` (one tournament per worker thread — the rayon
/// shim re-reads the cap per call, so the pin takes effect
/// immediately). Each worker owns its arena; nothing is shared, so
/// this measures pure kernel scaling, not lock contention.
fn measure_games_at(t: usize) -> f64 {
    use rayon::prelude::*;
    let _cap = ThreadCap::pin(t);
    let nodes = bench_arena(0).1.len();
    let games = (t * nodes * THROUGHPUT_ROUNDS) as f64;
    let seconds = time_min(|| {
        let runs: Vec<()> = (0..t)
            .into_par_iter()
            .map(|i| {
                let (mut arena, participants) = bench_arena(10 + i as u64);
                let mut rng = bench_rng(20 + i as u64);
                let tournament = Tournament::new(THROUGHPUT_ROUNDS);
                arena.begin_generation();
                tournament.run(&mut arena, &mut rng, &participants, 0);
                std::hint::black_box(arena);
            })
            .collect();
        std::hint::black_box(runs);
    });
    games / seconds
}

/// Thread-scaling rows: `games_per_second_t{1,4,8}` for each requested
/// count the host can genuinely run (a count above the core budget
/// would silently serialize and mismeasure), plus the sweep engine's
/// parallel efficiency. `threads` comes from `ahn-exp bench
/// --threads`.
fn measure_thread_scaling(
    threads: &[usize],
    grid: &ahn_core::sweeps::SweepGrid,
) -> (Option<f64>, Option<f64>, Option<f64>, Option<f64>) {
    let host = ahn_core::threads::host_cores();
    let row = |t: usize| {
        if threads.contains(&t) && t <= host {
            Some(measure_games_at(t))
        } else {
            None
        }
    };
    let t1 = row(1);
    let t4 = row(4);
    let t8 = row(8);
    (t1, t4, t8, measure_sweep_scaling(grid))
}

/// `(cells/s at t) / (t × cells/s at t=1)` over the bench sweep grid,
/// where `t` is the largest of {4, 8} within the core budget (the core
/// count itself on 2–3-core hosts). `None` on single-core hosts —
/// there is no scaling to measure.
fn measure_sweep_scaling(grid: &ahn_core::sweeps::SweepGrid) -> Option<f64> {
    let host = ahn_core::threads::host_cores();
    let t = host.min(8);
    if t < 2 {
        return None;
    }
    let cells = grid.cell_count() as f64;
    let rate_at = |t: usize| {
        let _cap = ThreadCap::pin(t);
        let seconds = time_min(|| {
            std::hint::black_box(ahn_core::sweeps::run_sweep(grid).expect("bench grid is valid"));
        });
        cells / seconds
    };
    let single = rate_at(1);
    let multi = rate_at(t);
    Some(multi / (t as f64 * single))
}

/// Runs the full measurement suite. `threads` selects which
/// `games_per_second_t{1,4,8}` rows to measure (subset of {1, 4, 8};
/// counts above the host's core budget are skipped and reported as
/// `None`).
pub fn run_bench(threads: &[usize]) -> BenchReport {
    let cfg = bench_config();

    // Figure 4: cooperation evolution, CSN-free and CSN-heavy.
    let fig4_cases = [bench_case(&[0]), bench_case(&[6])];
    let fig4_seconds = time_min(|| {
        for case in &fig4_cases {
            for seed in 0..SEEDS_PER_PIPELINE {
                std::hint::black_box(run_replication(&cfg, case, seed));
            }
        }
    });

    // Table 5: per-environment cooperation over three environments.
    let table5_case = bench_case(&[0, 3, 6]);
    let table5_seconds = time_min(|| {
        for seed in 0..SEEDS_PER_PIPELINE {
            std::hint::black_box(run_replication(&cfg, &table5_case, seed));
        }
    });

    // IPDRP baseline (X3).
    let ipdrp_config = ahn_ipdrp::IpdrpConfig {
        population: 40,
        rounds: 30,
        generations: 8,
        ..ahn_ipdrp::IpdrpConfig::default()
    };
    let ipdrp_seconds = time_min(|| {
        for seed in 0..SEEDS_PER_PIPELINE {
            let mut rng = bench_rng(seed + 1);
            std::hint::black_box(ahn_ipdrp::run_ipdrp(&mut rng, &ipdrp_config));
        }
    });

    // Raw throughput: one paper-scale tournament (50 nodes × 300
    // rounds = 15 000 games per run).
    let (mut arena, participants) = bench_arena(1);
    let mut rng = bench_rng(2);
    let tournament = Tournament::new(THROUGHPUT_ROUNDS);
    let games = (participants.len() * THROUGHPUT_ROUNDS) as f64;
    let tournament_seconds = time_min(|| {
        arena.begin_generation();
        tournament.run(&mut arena, &mut rng, &participants, 0);
    });

    // Big-network throughput: a 1 000-node tournament on the sparse
    // reputation substrate. The first run grows each observer's row to
    // its high-water mark; taking the minimum reports the steady state.
    let (mut bignet_arena, bignet_participants) = bench_bignet_arena(3);
    let mut bignet_rng = bench_rng(4);
    let bignet_tournament = Tournament::new(BIGNET_ROUNDS);
    let bignet_games = (bignet_participants.len() * BIGNET_ROUNDS) as f64;
    let bignet_seconds = time_min(|| {
        bignet_arena.begin_generation();
        bignet_tournament.run(&mut bignet_arena, &mut bignet_rng, &bignet_participants, 0);
    });

    // Scenario-sweep engine: a full 16-cell grid per run.
    let grid = bench_sweep_grid();
    let sweep_seconds = time_min(|| {
        std::hint::black_box(ahn_core::sweeps::run_sweep(&grid).expect("bench grid is valid"));
    });

    // Reconstruction search: an 8-cell calibration per run (candidate
    // enumeration included — it is part of every real search).
    let calibration = crate::bench_calibration_grid();
    let calibrate_seconds = time_min(|| {
        std::hint::black_box(
            ahn_core::run_calibration(&calibration).expect("bench calibration grid is valid"),
        );
    });

    // Serving throughput: an in-process ahn_serve server driven by the
    // loadtest client, cache-miss and cache-hit phases (best of
    // MEASURE_RUNS fresh servers — a fresh server per run so every miss
    // phase really misses).
    let (serve_miss_rps, serve_hit_rps) = measure_serve();

    // Distributed sweep: the same grid pulled cell by cell by external
    // workers and merged back by the coordinator.
    let distributed_cells_per_second = measure_distributed(&grid);

    // Thread scaling: concurrent tournaments under a pinned
    // AHN_THREADS, plus the sweep engine's parallel efficiency. Last,
    // so the pinned phases cannot perturb the ambient measurements
    // above.
    let (games_per_second_t1, games_per_second_t4, games_per_second_t8, sweep_scaling_efficiency) =
        measure_thread_scaling(threads, &grid);

    BenchReport {
        schema: "ahn-bench/2".into(),
        scale: format!(
            "pipelines: 10-node tournaments, {} rounds, {} generations, {} seeds; \
             throughput: 50-node tournament, {} rounds; bignet: 1000-node tournament, \
             {} rounds; sweep: {}-cell grid; calibrate: {}-cell search; serve: \
             {} distinct + {} hit requests; distributed: sweep grid via pull \
             workers, best of 1/2/4; scaling: concurrent tournaments at t in {:?}; \
             min of {} runs",
            cfg.rounds,
            cfg.generations,
            SEEDS_PER_PIPELINE,
            THROUGHPUT_ROUNDS,
            BIGNET_ROUNDS,
            grid.cell_count(),
            calibration.cell_count(),
            SERVE_DISTINCT,
            SERVE_HIT_REQUESTS,
            threads,
            MEASURE_RUNS
        ),
        fig4_seconds,
        table5_seconds,
        ipdrp_seconds,
        games_per_second: games / tournament_seconds,
        serve_miss_rps,
        serve_hit_rps,
        bignet_games_per_second: Some(bignet_games / bignet_seconds),
        sweep_cells_per_second: Some(grid.cell_count() as f64 / sweep_seconds),
        calibrate_cells_per_second: Some(calibration.cell_count() as f64 / calibrate_seconds),
        distributed_cells_per_second,
        host_cores: Some(ahn_core::threads::host_cores() as u64),
        ahn_threads: Some(ahn_core::threads::effective() as u64),
        target_cpu_native: Some(portable_build_warning().is_none()),
        games_per_second_t1,
        games_per_second_t4,
        games_per_second_t8,
        sweep_scaling_efficiency,
    }
}

/// Measures distributed-sweep throughput over `grid`: a fresh pull-only
/// server per timed run (so every cell is a real job, never a cache
/// hit), 1 / 2 / 4 pull-worker threads, best count wins. `None` when
/// the loopback server cannot run.
fn measure_distributed(grid: &ahn_core::sweeps::SweepGrid) -> Option<f64> {
    let cells = grid.cell_count() as f64;
    let mut best: Option<f64> = None;
    for worker_count in [1usize, 2, 4] {
        let mut best_seconds = f64::INFINITY;
        for _ in 0..MEASURE_RUNS {
            let Ok(handle) = ahn_serve::spawn(ahn_serve::ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 0,
                cache_cap: 2 * grid.cell_count(),
                queue_cap: 2 * grid.cell_count(),
                journal: None,
                ..ahn_serve::ServerConfig::default()
            }) else {
                return best;
            };
            let addr = handle.addr().to_string();
            let workers: Vec<_> = (0..worker_count)
                .map(|_| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        let mut transport = ahn_serve::HttpTransport::new(&addr);
                        let config = ahn_serve::WorkerConfig {
                            lease_ms: 60_000,
                            poll_ms: 1,
                            max_cells: 0,
                            idle_exit_polls: 50,
                            max_consecutive_errors: 3,
                            ..ahn_serve::WorkerConfig::default()
                        };
                        let _ = ahn_serve::run_worker(&mut transport, &config);
                    })
                })
                .collect();

            let start = Instant::now();
            let mut transport = ahn_serve::HttpTransport::new(&addr);
            let outcome = ahn_serve::run_sweep_via(&mut transport, grid, None, 1);
            let seconds = start.elapsed().as_secs_f64();
            for worker in workers {
                let _ = worker.join();
            }
            handle.shutdown();
            if outcome.is_ok() {
                best_seconds = best_seconds.min(seconds);
            }
        }
        if best_seconds.is_finite() {
            let rate = cells / best_seconds;
            best = Some(best.map_or(rate, |b| b.max(rate)));
        }
    }
    best
}

/// Measures serving throughput (see the `serve_*_rps` field docs);
/// `(None, None)` when the loopback server cannot run at all.
fn measure_serve() -> (Option<f64>, Option<f64>) {
    let mut best_miss: Option<f64> = None;
    let mut best_hit: Option<f64> = None;
    for _ in 0..MEASURE_RUNS {
        let Ok(handle) = ahn_serve::spawn(ahn_serve::ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_cap: 2 * SERVE_DISTINCT,
            queue_cap: 2 * SERVE_DISTINCT,
            journal: None,
            ..ahn_serve::ServerConfig::default()
        }) else {
            return (None, None);
        };
        let addr = handle.addr().to_string();

        // Miss phase: one connection, every spec distinct, each job
        // polled to completion.
        let miss = ahn_serve::run_loadtest(&ahn_serve::LoadtestConfig {
            addr: addr.clone(),
            connections: 1,
            requests: SERVE_DISTINCT,
            distinct: SERVE_DISTINCT,
        });
        // Hit phase: same specs, now all cached, under 4 connections.
        let hit = ahn_serve::run_loadtest(&ahn_serve::LoadtestConfig {
            addr,
            connections: 4,
            requests: SERVE_HIT_REQUESTS,
            distinct: SERVE_DISTINCT,
        });
        handle.shutdown();

        if let Ok(report) = miss {
            if report.errors == 0 {
                best_miss = Some(best_miss.unwrap_or(0.0).max(report.requests_per_second));
            }
        }
        if let Ok(report) = hit {
            if report.errors == 0 && report.cache_hits == report.requests {
                best_hit = Some(best_hit.unwrap_or(0.0).max(report.requests_per_second));
            }
        }
    }
    (best_miss, best_hit)
}

/// Renders a report as an aligned human-readable table.
pub fn render(report: &BenchReport) -> String {
    let mut out = format!(
        "ahn bench ({})\n\
         pipeline            seconds\n\
         fig4             {:>10.4}\n\
         table5           {:>10.4}\n\
         ipdrp            {:>10.4}\n\
         throughput       {:>10.0} games/s\n",
        report.scale,
        report.fig4_seconds,
        report.table5_seconds,
        report.ipdrp_seconds,
        report.games_per_second,
    );
    if let Some(gps) = report.bignet_games_per_second {
        out.push_str(&format!("bignet (1000n)   {gps:>10.0} games/s\n"));
    }
    if let Some(cps) = report.sweep_cells_per_second {
        out.push_str(&format!("sweep            {cps:>10.2} cells/s\n"));
    }
    if let Some(cps) = report.calibrate_cells_per_second {
        out.push_str(&format!("calibrate        {cps:>10.2} cells/s\n"));
    }
    if let Some(cps) = report.distributed_cells_per_second {
        out.push_str(&format!("distributed      {cps:>10.2} cells/s\n"));
    }
    if let Some(rps) = report.serve_miss_rps {
        out.push_str(&format!("serve (miss)     {rps:>10.0} req/s\n"));
    }
    if let Some(rps) = report.serve_hit_rps {
        out.push_str(&format!("serve (hit)      {rps:>10.0} req/s\n"));
    }
    for (name, row) in [
        ("throughput @t=1", report.games_per_second_t1),
        ("throughput @t=4", report.games_per_second_t4),
        ("throughput @t=8", report.games_per_second_t8),
    ] {
        if let Some(gps) = row {
            out.push_str(&format!("{name}  {gps:>10.0} games/s\n"));
        }
    }
    if let Some(eff) = report.sweep_scaling_efficiency {
        out.push_str(&format!("sweep scaling    {eff:>10.2} efficiency\n"));
    }
    if let (Some(cores), Some(t)) = (report.host_cores, report.ahn_threads) {
        let build = match report.target_cpu_native {
            Some(true) => "native",
            Some(false) => "portable",
            None => "unknown",
        };
        out.push_str(&format!(
            "env: {t} worker thread(s) on {cores} core(s), {build} build\n"
        ));
    }
    out
}

/// Compares a fresh report against a committed baseline's `after` side.
///
/// Returns `Err` with a description when any pipeline is more than
/// `factor`× slower, or throughput more than `factor`× lower, than the
/// baseline — the CI regression gate.
pub fn check_regression(
    current: &BenchReport,
    baseline: &BenchBaseline,
    factor: f64,
) -> Result<(), String> {
    assert!(factor >= 1.0, "regression factor must be >= 1");
    let mut failures = Vec::new();
    let pipelines = [
        ("fig4", current.fig4_seconds, baseline.after.fig4_seconds),
        (
            "table5",
            current.table5_seconds,
            baseline.after.table5_seconds,
        ),
        ("ipdrp", current.ipdrp_seconds, baseline.after.ipdrp_seconds),
    ];
    for (name, now, base) in pipelines {
        if now > base * factor {
            failures.push(format!(
                "{name}: {now:.4}s is more than {factor}x the baseline {base:.4}s"
            ));
        }
    }
    if current.games_per_second * factor < baseline.after.games_per_second {
        failures.push(format!(
            "throughput: {:.0} games/s is less than 1/{factor} of the baseline {:.0}",
            current.games_per_second, baseline.after.games_per_second
        ));
    }
    // Optional rows gate only once a baseline has recorded them
    // (older baselines carry `None`): the serve rates since BENCH_3,
    // the bignet/sweep throughputs since BENCH_4.
    let rates = [
        (
            "serve miss",
            current.serve_miss_rps,
            baseline.after.serve_miss_rps,
        ),
        (
            "serve hit",
            current.serve_hit_rps,
            baseline.after.serve_hit_rps,
        ),
        (
            "bignet throughput",
            current.bignet_games_per_second,
            baseline.after.bignet_games_per_second,
        ),
        (
            "sweep throughput",
            current.sweep_cells_per_second,
            baseline.after.sweep_cells_per_second,
        ),
        (
            "calibrate throughput",
            current.calibrate_cells_per_second,
            baseline.after.calibrate_cells_per_second,
        ),
        (
            "distributed throughput",
            current.distributed_cells_per_second,
            baseline.after.distributed_cells_per_second,
        ),
    ];
    for (name, now, base) in rates {
        let Some(base) = base else { continue };
        match now {
            None => failures.push(format!(
                "{name}: the baseline records {base:.0} req/s but the current report \
                 has no measurement"
            )),
            Some(now) if now * factor < base => failures.push(format!(
                "{name}: {now:.0} req/s is less than 1/{factor} of the baseline {base:.0}"
            )),
            Some(_) => {}
        }
    }
    // Thread-scaling rows gate like the rates above, but only when the
    // *current* host could have produced them: a baseline measured on
    // an 8-core box must not fail CI on a 4-core (or 1-core) runner
    // where the t8 row is legitimately absent. The efficiency row
    // needs at least 2 cores for the same reason.
    let host = current.host_cores.unwrap_or(0);
    let scaling = [
        (
            1u64,
            "t1 throughput",
            current.games_per_second_t1,
            baseline.after.games_per_second_t1,
        ),
        (
            4,
            "t4 throughput",
            current.games_per_second_t4,
            baseline.after.games_per_second_t4,
        ),
        (
            8,
            "t8 throughput",
            current.games_per_second_t8,
            baseline.after.games_per_second_t8,
        ),
        (
            2,
            "sweep scaling efficiency",
            current.sweep_scaling_efficiency,
            baseline.after.sweep_scaling_efficiency,
        ),
    ];
    for (needs_cores, name, now, base) in scaling {
        let Some(base) = base else { continue };
        if host < needs_cores {
            continue;
        }
        match now {
            None => failures.push(format!(
                "{name}: the baseline records {base:.2} but the current report has \
                 no measurement despite {host} host cores"
            )),
            Some(now) if now * factor < base => failures.push(format!(
                "{name}: {now:.2} is less than 1/{factor} of the baseline {base:.2}"
            )),
            Some(_) => {}
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(factor: f64) -> BenchReport {
        BenchReport {
            schema: "ahn-bench/2".into(),
            scale: "test".into(),
            fig4_seconds: 1.0 * factor,
            table5_seconds: 2.0 * factor,
            ipdrp_seconds: 0.5 * factor,
            games_per_second: 1e6 / factor,
            serve_miss_rps: Some(1e3 / factor),
            serve_hit_rps: Some(1e4 / factor),
            bignet_games_per_second: Some(1e5 / factor),
            sweep_cells_per_second: Some(1e2 / factor),
            calibrate_cells_per_second: Some(1e2 / factor),
            distributed_cells_per_second: Some(1e2 / factor),
            host_cores: Some(8),
            ahn_threads: Some(8),
            target_cpu_native: Some(true),
            games_per_second_t1: Some(1e6 / factor),
            games_per_second_t4: Some(3.5e6 / factor),
            games_per_second_t8: Some(6e6 / factor),
            sweep_scaling_efficiency: Some(0.9 / factor),
        }
    }

    fn baseline() -> BenchBaseline {
        BenchBaseline {
            schema: "ahn-bench-baseline/1".into(),
            note: "test".into(),
            before: report(2.0),
            after: report(1.0),
        }
    }

    #[test]
    fn equal_report_passes_the_gate() {
        check_regression(&report(1.0), &baseline(), 2.0).unwrap();
    }

    #[test]
    fn slightly_slower_passes_within_factor() {
        check_regression(&report(1.8), &baseline(), 2.0).unwrap();
    }

    #[test]
    fn gross_regression_fails_the_gate() {
        let err = check_regression(&report(2.5), &baseline(), 2.0).unwrap_err();
        assert!(err.contains("fig4"), "{err}");
        assert!(err.contains("throughput"), "{err}");
    }

    #[test]
    fn speedups_divide_the_right_way() {
        let s = baseline().speedups();
        for (name, factor) in s {
            assert!((factor - 2.0).abs() < 1e-12, "{name}: {factor}");
        }
    }

    #[test]
    fn pre_serve_baselines_do_not_gate_serving() {
        // A BENCH_2-era baseline (no serve numbers) accepts any current
        // serve measurement, present or absent.
        let mut old = baseline();
        old.after.serve_miss_rps = None;
        old.after.serve_hit_rps = None;
        check_regression(&report(1.0), &old, 2.0).unwrap();
        let mut absent = report(1.0);
        absent.serve_miss_rps = None;
        absent.serve_hit_rps = None;
        check_regression(&absent, &old, 2.0).unwrap();
        // But once the baseline records serving throughput, a report
        // without it fails loudly instead of passing silently.
        let err = check_regression(&absent, &baseline(), 2.0).unwrap_err();
        assert!(err.contains("no measurement"), "{err}");
    }

    #[test]
    fn serve_regression_fails_the_gate() {
        let mut slow = report(1.0);
        slow.serve_hit_rps = Some(1e4 / 3.0);
        let err = check_regression(&slow, &baseline(), 2.0).unwrap_err();
        assert!(err.contains("serve hit"), "{err}");
        assert!(!err.contains("serve miss"), "{err}");
    }

    #[test]
    fn pre_serve_report_json_still_parses() {
        // The committed BENCH_2.json predates the serve fields; its
        // reports must keep deserializing (as None).
        let json = "{\"schema\":\"ahn-bench/1\",\"scale\":\"s\",\"fig4_seconds\":1.0,\
                    \"table5_seconds\":2.0,\"ipdrp_seconds\":0.5,\"games_per_second\":1e6}";
        let report: BenchReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.serve_miss_rps, None);
        assert_eq!(report.serve_hit_rps, None);
        assert_eq!(report.bignet_games_per_second, None);
        assert_eq!(report.sweep_cells_per_second, None);
        assert_eq!(report.calibrate_cells_per_second, None);
        assert_eq!(report.distributed_cells_per_second, None);
    }

    #[test]
    fn ahn_bench_1_report_json_still_parses() {
        // A BENCH_6-era report: every ahn-bench/1 field present, none
        // of the ahn-bench/2 environment or thread-scaling rows. Must
        // keep deserializing with the new fields None.
        let json = "{\"schema\":\"ahn-bench/1\",\"scale\":\"s\",\"fig4_seconds\":1.0,\
                    \"table5_seconds\":2.0,\"ipdrp_seconds\":0.5,\"games_per_second\":1e6,\
                    \"serve_miss_rps\":700.0,\"serve_hit_rps\":18000.0,\
                    \"bignet_games_per_second\":7e5,\"sweep_cells_per_second\":1100.0,\
                    \"calibrate_cells_per_second\":1200.0,\
                    \"distributed_cells_per_second\":470.0}";
        let report: BenchReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.bignet_games_per_second, Some(7e5));
        assert_eq!(report.host_cores, None);
        assert_eq!(report.ahn_threads, None);
        assert_eq!(report.target_cpu_native, None);
        assert_eq!(report.games_per_second_t1, None);
        assert_eq!(report.games_per_second_t4, None);
        assert_eq!(report.games_per_second_t8, None);
        assert_eq!(report.sweep_scaling_efficiency, None);
    }

    #[test]
    fn thread_rows_gate_only_on_capable_hosts() {
        // A 1-core runner: every scaling row may be absent even though
        // the baseline records all of them.
        let mut small_host = report(1.0);
        small_host.host_cores = Some(1);
        small_host.games_per_second_t4 = None;
        small_host.games_per_second_t8 = None;
        small_host.sweep_scaling_efficiency = None;
        check_regression(&small_host, &baseline(), 2.0).unwrap();
        // A 4-core runner must produce t1 and t4 (and efficiency) but
        // may skip t8.
        let mut four_core = small_host.clone();
        four_core.host_cores = Some(4);
        let err = check_regression(&four_core, &baseline(), 2.0).unwrap_err();
        assert!(err.contains("t4 throughput"), "{err}");
        assert!(err.contains("sweep scaling"), "{err}");
        assert!(!err.contains("t8 throughput"), "{err}");
        // And on a capable host a slow row fails like any other rate.
        let mut slow = report(1.0);
        slow.games_per_second_t4 = Some(3.5e6 / 3.0);
        let err = check_regression(&slow, &baseline(), 2.0).unwrap_err();
        assert!(err.contains("t4 throughput"), "{err}");
        assert!(!err.contains("t1 throughput"), "{err}");
    }

    #[test]
    fn pre_v2_baselines_do_not_gate_thread_rows() {
        // BENCH_2..6 baselines carry no scaling rows; a fresh report
        // is never compared against them.
        let mut old = baseline();
        old.after.host_cores = None;
        old.after.ahn_threads = None;
        old.after.target_cpu_native = None;
        old.after.games_per_second_t1 = None;
        old.after.games_per_second_t4 = None;
        old.after.games_per_second_t8 = None;
        old.after.sweep_scaling_efficiency = None;
        let mut absent = report(1.0);
        absent.games_per_second_t1 = None;
        absent.games_per_second_t4 = None;
        absent.games_per_second_t8 = None;
        absent.sweep_scaling_efficiency = None;
        check_regression(&absent, &old, 2.0).unwrap();
    }

    #[test]
    fn render_includes_scaling_and_env_rows() {
        let text = render(&report(1.0));
        assert!(text.contains("throughput @t=1"), "{text}");
        assert!(text.contains("throughput @t=8"), "{text}");
        assert!(text.contains("sweep scaling"), "{text}");
        assert!(text.contains("8 worker thread(s) on 8 core(s)"), "{text}");
        assert!(text.contains("native build"), "{text}");
        // Rows the host could not measure are omitted, not rendered as
        // zeros.
        let mut sparse = report(1.0);
        sparse.games_per_second_t4 = None;
        sparse.games_per_second_t8 = None;
        sparse.sweep_scaling_efficiency = None;
        let text = render(&sparse);
        assert!(text.contains("throughput @t=1"), "{text}");
        assert!(!text.contains("throughput @t=4"), "{text}");
        assert!(!text.contains("sweep scaling"), "{text}");
    }

    #[test]
    fn bignet_and_sweep_rows_gate_like_serve_rows() {
        // Pre-BENCH-4 baselines (rows absent) never gate them...
        let mut old = baseline();
        old.after.bignet_games_per_second = None;
        old.after.sweep_cells_per_second = None;
        old.after.calibrate_cells_per_second = None;
        check_regression(&report(1.0), &old, 2.0).unwrap();
        // ...but once recorded, a slow or missing row fails loudly.
        let mut slow = report(1.0);
        slow.bignet_games_per_second = Some(1e5 / 3.0);
        let err = check_regression(&slow, &baseline(), 2.0).unwrap_err();
        assert!(err.contains("bignet throughput"), "{err}");
        let mut absent = report(1.0);
        absent.sweep_cells_per_second = None;
        let err = check_regression(&absent, &baseline(), 2.0).unwrap_err();
        assert!(err.contains("sweep throughput"), "{err}");
        assert!(err.contains("no measurement"), "{err}");
        // The calibrate row follows the same protocol.
        let mut slow = report(1.0);
        slow.calibrate_cells_per_second = Some(1e2 / 3.0);
        let err = check_regression(&slow, &baseline(), 2.0).unwrap_err();
        assert!(err.contains("calibrate throughput"), "{err}");
        // So does the distributed row.
        let mut slow = report(1.0);
        slow.distributed_cells_per_second = Some(1e2 / 3.0);
        let err = check_regression(&slow, &baseline(), 2.0).unwrap_err();
        assert!(err.contains("distributed throughput"), "{err}");
    }

    #[test]
    fn portable_build_warning_matches_compile_features() {
        // This workspace builds with target-cpu=native
        // (.cargo/config.toml), so on x86_64 the warning must be silent;
        // the cfg! mirror keeps the test meaningful on any target.
        let expect_warning = cfg!(all(target_arch = "x86_64", not(target_feature = "sse4.2")));
        assert_eq!(portable_build_warning().is_some(), expect_warning);
    }

    #[test]
    fn baseline_serde_roundtrip() {
        let b = baseline();
        let json = serde_json::to_string(&b).unwrap();
        let back: BenchBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
