//! Socket-level integration tests: a real server on an ephemeral port,
//! a real TCP client, full submit/poll/cache round trips.

use ahn_serve::loadtest::{one_shot, run_loadtest, LoadtestConfig};
use ahn_serve::server::{spawn, ServerConfig, ServerHandle};
use serde_json::Value;
use std::time::{Duration, Instant};

fn boot(workers: usize, cache_cap: usize, queue_cap: usize) -> (ServerHandle, String) {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        cache_cap,
        queue_cap,
        journal: None,
        // Short drain: some tests shut down with work still queued and
        // must not wait out the default drain budget.
        drain_ms: 250,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn get(addr: &str, path: &str) -> (u16, Value) {
    let (status, body) = one_shot(addr, "GET", path, "").expect("request");
    let value = serde_json::from_str(&body).unwrap_or(Value::Null);
    (status, value)
}

fn post(addr: &str, path: &str, body: &str) -> (u16, Value) {
    let (status, body) = one_shot(addr, "POST", path, body).expect("request");
    let value = serde_json::from_str(&body).unwrap_or(Value::Null);
    (status, value)
}

/// Polls a job until done, panicking on failure or timeout.
fn await_job(addr: &str, job_id: u64) -> Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, value) = get(addr, &format!("/v1/jobs/{job_id}"));
        assert_eq!(status, 200, "job poll failed: {value:?}");
        match &value["status"] {
            Value::String(s) if s == "done" => return value,
            Value::String(s) if s == "failed" => panic!("job failed: {value:?}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {job_id} timed out");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn healthz_metrics_presets_and_errors() {
    let (handle, addr) = boot(1, 8, 8);

    let (status, health) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health["status"], Value::String("ok".into()));

    let (status, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        metrics["schema"],
        Value::String("ahn-serve-metrics/2".into())
    );
    // v2 additions: an uptime gauge and per-stage latency histograms.
    assert!(matches!(metrics["uptime_seconds"], Value::U64(_)));
    assert!(
        matches!(metrics["latency"]["request_other_us"]["count"], Value::U64(n) if n >= 1),
        "the /healthz request above must have landed in request_other_us: {:?}",
        metrics["latency"]
    );

    let (status, presets) = get(&addr, "/v1/presets");
    assert_eq!(status, 200);
    match &presets {
        Value::Seq(items) => {
            let names: Vec<_> = items.iter().map(|p| p["name"].clone()).collect();
            assert_eq!(items.len(), 3, "{names:?}");
        }
        other => panic!("presets should be an array: {other:?}"),
    }

    let (status, scenarios) = get(&addr, "/v1/scenarios");
    assert_eq!(status, 200);
    match &scenarios {
        Value::Seq(items) => {
            assert!(items.len() >= 6, "base + at least 5 attacker scenarios");
            let names: Vec<_> = items.iter().map(|s| s["name"].clone()).collect();
            assert!(names.contains(&Value::String("base".into())), "{names:?}");
            assert!(
                names.contains(&Value::String("slanderers".into())),
                "{names:?}"
            );
            let with_attackers = items
                .iter()
                .filter(|s| !matches!(s["attackers"], Value::Null))
                .count();
            assert!(with_attackers >= 5, "{with_attackers} attacker scenarios");
        }
        other => panic!("scenarios should be an array: {other:?}"),
    }
    let (status, _) = post(&addr, "/v1/scenarios", "");
    assert_eq!(status, 405);

    let (status, _) = get(&addr, "/no/such/route");
    assert_eq!(status, 404);
    let (status, _) = post(&addr, "/healthz", "");
    assert_eq!(status, 405);
    let (status, err) = post(&addr, "/v1/experiments", "this is not json");
    assert_eq!(status, 400);
    assert!(matches!(err["error"], Value::String(_)));
    let (status, _) = post(&addr, "/v1/experiments", "{\"Preset\":{\"name\":\"nope\"}}");
    assert_eq!(status, 400);
    let (status, _) = get(&addr, "/v1/jobs/999999");
    assert_eq!(status, 404);
    let (status, _) = get(&addr, "/v1/jobs/not-a-number");
    assert_eq!(status, 400);

    handle.shutdown();
}

#[test]
fn submit_poll_cache_roundtrip() {
    let (handle, addr) = boot(2, 8, 8);
    let body = "{\"Preset\":{\"name\":\"ipdrp\"}}";

    // First submission: a miss that queues a job.
    let (status, ack) = post(&addr, "/v1/experiments", body);
    assert_eq!(status, 202, "{ack:?}");
    assert_eq!(ack["cached"], Value::Bool(false));
    let Value::U64(job_id) = ack["job_id"] else {
        panic!("no job id in {ack:?}");
    };

    let done = await_job(&addr, job_id);
    let history = &done["result"];
    assert!(
        matches!(history, Value::Seq(items) if !items.is_empty()),
        "ipdrp result should be a non-empty generation array"
    );

    // Second, identical submission: an inline cache hit...
    let (status, hit) = post(&addr, "/v1/experiments", body);
    assert_eq!(status, 200, "{hit:?}");
    assert_eq!(hit["cached"], Value::Bool(true));
    assert_eq!(hit["status"], Value::String("done".into()));
    // ...with a byte-identical result (determinism end to end).
    assert_eq!(hit["result"], *history);

    // The equivalent explicit spec shares the cache entry: resolve the
    // preset client-side and submit the expanded body.
    let explicit = serde_json::to_string(
        &ahn_serve::protocol::presets()
            .into_iter()
            .find(|p| p.name == "ipdrp")
            .unwrap()
            .body,
    )
    .unwrap();
    let (status, hit2) = post(&addr, "/v1/experiments", &explicit);
    assert_eq!(status, 200, "{hit2:?}");
    assert_eq!(hit2["cached"], Value::Bool(true));

    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(metrics["cache_hits"], Value::U64(2));
    assert_eq!(metrics["cache_misses"], Value::U64(1));
    assert_eq!(metrics["jobs_completed"], Value::U64(1));
    match metrics["cache_hit_rate"] {
        Value::F64(rate) => assert!((rate - 2.0 / 3.0).abs() < 1e-9, "{rate}"),
        ref other => panic!("hit rate should be a float: {other:?}"),
    }
    match metrics["games_simulated"] {
        Value::U64(games) => assert_eq!(games, 8 * 30 * 20),
        ref other => panic!("{other:?}"),
    }
    // The compute-time gauges reflect the one real job that ran.
    match metrics["job_seconds_total"] {
        Value::F64(s) => assert!(s > 0.0, "job ran for {s}s"),
        ref other => panic!("job_seconds_total should be a float: {other:?}"),
    }
    match metrics["job_seconds_mean"] {
        Value::F64(s) => assert!(s > 0.0),
        ref other => panic!("job_seconds_mean should be a float: {other:?}"),
    }
    // One job was queued while both workers were free, so the observed
    // peak is at most 1 — but the field must exist and be consistent.
    match metrics["queue_depth_peak"] {
        Value::U64(peak) => assert!(peak <= 1, "{peak}"),
        ref other => panic!("queue_depth_peak should be an integer: {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn experiment_job_returns_experiment_results() {
    let (handle, addr) = boot(2, 8, 8);
    let spec = ahn_serve::loadtest::smoke_spec(7);
    let body = serde_json::to_string(&spec).unwrap();

    let (status, ack) = post(&addr, "/v1/experiments", &body);
    assert_eq!(status, 202, "{ack:?}");
    let Value::U64(job_id) = ack["job_id"] else {
        panic!("no job id in {ack:?}");
    };
    let done = await_job(&addr, job_id);

    // The result deserializes into the real aggregate type.
    let results: Vec<ahn_core::ExperimentResult> =
        serde_json::from_value(done["result"].clone()).expect("typed result");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].case_name, "loadtest");
    assert_eq!(results[0].replications, 1);

    // And matches a local run of the same pure function bit for bit.
    let ahn_serve::protocol::JobSpec::Experiment { config, cases } = spec else {
        panic!("smoke spec is an experiment");
    };
    let local = ahn_core::run_experiment(&config, &cases[0]);
    assert_eq!(
        serde_json::to_value(&results[0]).unwrap(),
        serde_json::to_value(&local).unwrap(),
        "served result must equal the local pure-function result"
    );

    handle.shutdown();
}

#[test]
fn loadtest_mixed_run_hits_cache() {
    let (handle, addr) = boot(2, 32, 32);
    let report = run_loadtest(&LoadtestConfig {
        addr: addr.clone(),
        connections: 3,
        requests: 30,
        distinct: 3,
    })
    .expect("loadtest");

    assert_eq!(report.requests, 30);
    assert_eq!(report.errors, 0, "{report:?}");
    // 3 distinct specs cost >=1 real job each (coalescing may merge
    // concurrent first submissions); everything else hits the cache.
    assert!(report.cache_hits >= 20, "{report:?}");
    assert!(report.jobs_completed >= 1, "{report:?}");
    assert!(report.p99_ms >= report.p50_ms);
    assert!(report.requests_per_second > 0.0);

    let metrics = report.server_metrics.expect("metrics snapshot");
    assert!(metrics.cache_hit_rate > 0.0);
    // Every distinct spec misses exactly once; concurrent duplicates of
    // an in-flight spec coalesce, everything else hits.
    assert_eq!(metrics.cache_misses, 3);
    assert_eq!(
        metrics.cache_hits + metrics.coalesced + metrics.cache_misses,
        30
    );

    handle.shutdown();
}

#[test]
fn oversized_and_endless_lines_get_bounced_not_buffered() {
    use std::io::{BufReader, Read, Write};
    use std::net::TcpStream;

    let (handle, addr) = boot(1, 4, 4);

    // A request line far beyond MAX_LINE_BYTES: the server must answer
    // 400 (or drop the connection) instead of buffering it. The server
    // may bounce the line (and close) before the client finishes
    // writing, so a mid-write EPIPE is a legitimate outcome, not a
    // test failure.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let huge = vec![b'A'; 4 * ahn_serve::http::MAX_LINE_BYTES];
    let _ = stream.write_all(&huge);
    let _ = stream.write_all(b"\r\n\r\n");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    let _ = reader.read_to_string(&mut response);
    assert!(
        response.is_empty() || response.starts_with("HTTP/1.1 400"),
        "got: {response:?}"
    );

    // An endless header stream hits the MAX_HEADERS guard (same story:
    // the 400-and-close can race the remaining header writes).
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    for i in 0..(2 * ahn_serve::http::MAX_HEADERS) {
        let _ = stream.write_all(format!("X-{i}: y\r\n").as_bytes());
    }
    let _ = stream.write_all(b"\r\n");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    let _ = reader.read_to_string(&mut response);
    assert!(response.starts_with("HTTP/1.1 400"), "got: {response:?}");

    // The server is still healthy afterwards.
    let (status, _) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn panicking_job_fails_cleanly_and_workers_survive() {
    // A hand-rolled body that dodges client-side validation cannot
    // exist (submit validates server-side), so go one level down: a
    // spec that passes validation but panics is not constructible via
    // the HTTP surface anymore. Instead, prove the 400 path for the
    // shapes that used to panic workers.
    let (handle, addr) = boot(1, 4, 4);
    let body = "{\"Experiment\":{\"config\":null,\"cases\":[]}}";
    let (status, _) = post(&addr, "/v1/experiments", body);
    assert_eq!(status, 400);
    let no_envs = format!(
        "{{\"Experiment\":{{\"config\":{},\"cases\":[{{\"name\":\"x\",\"envs\":[],\"mode\":\"Shorter\"}}]}}}}",
        serde_json::to_string(&ahn_core::ExperimentConfig::smoke()).unwrap()
    );
    let (status, err) = post(&addr, "/v1/experiments", &no_envs);
    assert_eq!(status, 400, "{err:?}");
    // And the worker still processes real jobs afterwards.
    let (status, _) = post(
        &addr,
        "/v1/experiments",
        "{\"Preset\":{\"name\":\"ipdrp\"}}",
    );
    assert_eq!(status, 202);
    handle.shutdown();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let (handle, addr) = boot(1, 4, 4);
    let (status, body) = post(&addr, "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(body["status"], Value::String("shutting-down".into()));
    // join() returns only after the accept loop and workers exit.
    handle.join();
    // The port no longer accepts new work.
    assert!(one_shot(&addr, "GET", "/healthz", "").is_err());
}

#[test]
fn keep_alive_connection_serves_many_requests() {
    use ahn_serve::http::{read_response, write_request};
    use std::io::BufReader;
    use std::net::TcpStream;

    let (handle, addr) = boot(1, 4, 4);
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    for _ in 0..50 {
        write_request(&mut stream, "GET", "/healthz", "").unwrap();
        let (status, body) = read_response(&mut reader).unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
    }
    drop(stream);

    let (_, metrics) = get(&addr, "/metrics");
    match metrics["http_requests"] {
        Value::U64(n) => assert!(n >= 51, "{n}"),
        ref other => panic!("{other:?}"),
    }
    handle.shutdown();
}

#[test]
fn sweep_submission_returns_per_cell_jobs_that_hit_the_cache_on_repeat() {
    let (handle, addr) = boot(2, 32, 32);

    // A 2x2 grid (two cases x two sizes) at smoke scale.
    let mut base = ahn_core::ExperimentConfig::smoke();
    base.generations = 3;
    base.replications = 1;
    let grid = ahn_core::SweepGrid::new(base, &[1, 2], &[10, 12], 1);
    let body = serde_json::to_string(&grid).unwrap();

    let (status, first) = post(&addr, "/v1/sweeps", &body);
    assert_eq!(status, 200, "{first:?}");
    let Value::Seq(cells) = first["cells"].clone() else {
        panic!("cells should be an array: {first:?}");
    };
    assert_eq!(cells.len(), 4, "2x2 grid expands to 4 cells");

    // Every cell queued a fresh job with its grid coordinates attached.
    let mut job_ids = Vec::new();
    for cell in &cells {
        assert_eq!(cell["cached"], Value::Bool(false), "{cell:?}");
        let Value::U64(id) = cell["job_id"] else {
            panic!("fresh cell should carry a job id: {cell:?}");
        };
        assert!(matches!(cell["spec"]["case_no"], Value::U64(_)));
        job_ids.push(id);
    }
    for id in job_ids {
        await_job(&addr, id);
    }

    // Resubmitting the identical grid hits the cache on every cell,
    // results inline.
    let (status, second) = post(&addr, "/v1/sweeps", &body);
    assert_eq!(status, 200);
    let Value::Seq(cells) = second["cells"].clone() else {
        panic!("cells should be an array: {second:?}");
    };
    for cell in &cells {
        assert_eq!(cell["cached"], Value::Bool(true), "{cell:?}");
        assert_eq!(cell["status"], Value::String("done".into()));
        assert!(
            matches!(cell["result"], Value::Seq(ref items) if !items.is_empty()),
            "cached cell must return its result inline: {cell:?}"
        );
    }

    // And a *direct* single-experiment submission of one cell's spec
    // shares the sweep's cache entry (same canonical job).
    let spec = grid.cell_specs().into_iter().next().unwrap();
    let (config, case) = grid.resolve(&spec).unwrap();
    let direct = serde_json::to_string(&ahn_serve::protocol::JobSpec::Experiment {
        config,
        cases: vec![case],
    })
    .unwrap();
    let (status, hit) = post(&addr, "/v1/experiments", &direct);
    assert_eq!(status, 200, "{hit:?}");
    assert_eq!(hit["cached"], Value::Bool(true));

    // Grid-level validation errors come back as 400s.
    let (status, err) = post(&addr, "/v1/sweeps", "{\"not\":\"a grid\"}");
    assert_eq!(status, 400);
    assert!(matches!(err["error"], Value::String(_)));
    let mut bad = grid.clone();
    bad.cases = vec![9];
    let (status, _) = post(&addr, "/v1/sweeps", &serde_json::to_string(&bad).unwrap());
    assert_eq!(status, 400);

    // A grid whose tiny body expands past the cell cap is rejected up
    // front (repeated axis values are legal JSON but hostile work).
    let mut huge = grid;
    huge.cases = vec![1; 100];
    huge.sizes = vec![10; 100];
    huge.seed_blocks = (0..100).collect();
    let (status, err) = post(&addr, "/v1/sweeps", &serde_json::to_string(&huge).unwrap());
    assert_eq!(status, 400, "{err:?}");
    let Value::String(msg) = &err["error"] else {
        panic!("{err:?}");
    };
    assert!(msg.contains("cap"), "{msg}");

    handle.shutdown();
}

#[test]
fn calibration_submission_expands_caches_and_shares_cells_with_direct_runs() {
    let (handle, addr) = boot(2, 32, 32);

    // Two candidates x two cases x one seed block at smoke scale.
    let grid = ahn_core::CalibrationGrid::smoke();
    let body = serde_json::to_string(&grid).unwrap();

    let (status, first) = post(&addr, "/v1/calibrations", &body);
    assert_eq!(status, 200, "{first:?}");
    let Value::Seq(cells) = first["cells"].clone() else {
        panic!("cells should be an array: {first:?}");
    };
    assert_eq!(cells.len(), grid.cell_count(), "{cells:?}");

    let mut job_ids = Vec::new();
    for cell in &cells {
        assert_eq!(cell["cached"], Value::Bool(false), "{cell:?}");
        let Value::U64(id) = cell["job_id"] else {
            panic!("fresh cell should carry a job id: {cell:?}");
        };
        assert!(matches!(cell["spec"]["candidate"], Value::U64(_)));
        assert!(matches!(cell["spec"]["case_no"], Value::U64(_)));
        job_ids.push(id);
    }
    for id in job_ids {
        await_job(&addr, id);
    }

    // Resubmitting the identical search hits the cache on every cell.
    let (status, second) = post(&addr, "/v1/calibrations", &body);
    assert_eq!(status, 200);
    let Value::Seq(cells) = second["cells"].clone() else {
        panic!("cells should be an array: {second:?}");
    };
    for cell in &cells {
        assert_eq!(cell["cached"], Value::Bool(true), "{cell:?}");
        assert_eq!(cell["status"], Value::String("done".into()));
    }

    // A direct single-experiment submission of one cell's resolved spec
    // shares the calibration's cache entry.
    let candidate = grid.candidates().into_iter().next().unwrap();
    let sweep = grid.sweep_for(&candidate).unwrap();
    let (config, case) = sweep.resolve(&sweep.cell_specs()[0]).unwrap();
    let direct = serde_json::to_string(&ahn_serve::protocol::JobSpec::Experiment {
        config,
        cases: vec![case],
    })
    .unwrap();
    let (status, hit) = post(&addr, "/v1/experiments", &direct);
    assert_eq!(status, 200, "{hit:?}");
    assert_eq!(hit["cached"], Value::Bool(true));

    // Malformed and invalid grids come back as 400s.
    let (status, err) = post(&addr, "/v1/calibrations", "{\"not\":\"a grid\"}");
    assert_eq!(status, 400);
    assert!(matches!(err["error"], Value::String(_)));
    let mut bad = grid.clone();
    bad.selections = vec!["galactic".into()];
    let (status, _) = post(
        &addr,
        "/v1/calibrations",
        &serde_json::to_string(&bad).unwrap(),
    );
    assert_eq!(status, 400);

    // An uncapped search (146+ candidates x cases x blocks) trips the
    // cell cap up front.
    let mut huge = grid;
    huge.max_candidates = 0;
    huge.cases = vec![1, 2, 3, 4];
    huge.seed_blocks = (0..4).collect();
    let (status, err) = post(
        &addr,
        "/v1/calibrations",
        &serde_json::to_string(&huge).unwrap(),
    );
    assert_eq!(status, 400, "{err:?}");
    let Value::String(msg) = &err["error"] else {
        panic!("{err:?}");
    };
    assert!(msg.contains("cap"), "{msg}");

    handle.shutdown();
}

#[test]
fn work_endpoints_validate_count_and_never_spin_when_idle() {
    // A pull-only node: zero in-process workers, all compute external.
    let (handle, addr) = boot(0, 8, 8);

    // Claiming from an empty queue is a clean miss, not an error.
    let (status, empty) = post(&addr, "/v1/work/claim", "");
    assert_eq!(status, 200);
    assert_eq!(empty["status"], Value::String("empty".into()));
    let (status, _) = post(&addr, "/v1/work/claim", "not json");
    assert_eq!(status, 400);

    // The lease sweep is request-driven and bounded: with no leases
    // outstanding, an idle node's metrics only move by our own probes.
    let (_, before) = get(&addr, "/metrics");
    std::thread::sleep(Duration::from_millis(60));
    let (_, after) = get(&addr, "/metrics");
    assert_eq!(before["lease_requeues"], Value::U64(0));
    assert_eq!(after["lease_requeues"], Value::U64(0));
    let (Value::U64(req_before), Value::U64(req_after)) = (
        before["http_requests"].clone(),
        after["http_requests"].clone(),
    ) else {
        panic!("http_requests should be integers");
    };
    assert_eq!(
        req_after,
        req_before + 1,
        "an idle node must serve nothing but the probe itself"
    );

    // Queue one job, claim it on a 1ms lease, and abandon it: the
    // next /metrics sweep requeues the expired lease exactly once.
    let body = serde_json::to_string(&ahn_serve::loadtest::smoke_spec(11)).unwrap();
    let (status, ack) = post(&addr, "/v1/experiments", &body);
    assert_eq!(status, 202, "{ack:?}");
    let (status, grant) = post(&addr, "/v1/work/claim", "{\"lease_ms\":1}");
    assert_eq!(status, 200);
    let Value::U64(job_id) = grant["job_id"] else {
        panic!("claim should grant the queued job: {grant:?}");
    };
    let Value::U64(key) = grant["key"] else {
        panic!("grant should carry the spec hash: {grant:?}");
    };
    std::thread::sleep(Duration::from_millis(20));
    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(metrics["lease_requeues"], Value::U64(1));
    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(
        metrics["lease_requeues"],
        Value::U64(1),
        "a swept lease must not be requeued again"
    );

    // Reclaim the requeued cell and exercise the completion guards.
    let (status, grant2) = post(&addr, "/v1/work/claim", "{\"lease_ms\":60000}");
    assert_eq!(status, 200);
    assert_eq!(grant2["job_id"], Value::U64(job_id), "same cell, new lease");
    let Value::U64(lease_id) = grant2["lease_id"] else {
        panic!("{grant2:?}");
    };

    // Both result and error set: rejected.
    let both = format!(
        "{{\"lease_id\":{lease_id},\"job_id\":{job_id},\"key\":{key},\"result\":\"[]\",\"error\":\"x\"}}"
    );
    let (status, _) = post(&addr, "/v1/work/complete", &both);
    assert_eq!(status, 400);
    // A key that disagrees with the job's spec hash: rejected.
    let wrong_key = format!(
        "{{\"lease_id\":{lease_id},\"job_id\":{job_id},\"key\":{},\"error\":\"x\"}}",
        key ^ 1
    );
    let (status, err) = post(&addr, "/v1/work/complete", &wrong_key);
    assert_eq!(status, 400, "{err:?}");
    // A job the server never issued: 404.
    let unknown = format!("{{\"lease_id\":0,\"job_id\":999999,\"key\":{key},\"error\":\"x\"}}");
    let (status, _) = post(&addr, "/v1/work/complete", &unknown);
    assert_eq!(status, 404);

    // Delivering an error settles the job as failed.
    let failure = format!(
        "{{\"lease_id\":{lease_id},\"job_id\":{job_id},\"key\":{key},\"error\":\"worker exploded\"}}"
    );
    let (status, recorded) = post(&addr, "/v1/work/complete", &failure);
    assert_eq!(status, 200);
    assert_eq!(recorded["status"], Value::String("recorded".into()));
    let (status, job) = get(&addr, &format!("/v1/jobs/{job_id}"));
    assert_eq!(status, 200);
    assert_eq!(job["status"], Value::String("failed".into()));

    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(metrics["work_claims"], Value::U64(2));
    assert_eq!(metrics["work_claim_empty"], Value::U64(1));
    assert_eq!(metrics["jobs_failed"], Value::U64(1));
    handle.shutdown();
}

#[test]
fn stalling_client_is_evicted_by_the_request_deadline() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        cache_cap: 4,
        queue_cap: 4,
        read_timeout_ms: 150,
        idle_timeout_ms: 150,
        drain_ms: 100,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // A slowloris: one byte of a request line, then silence.
    let mut stall = TcpStream::connect(&addr).unwrap();
    stall.write_all(b"G").unwrap();

    // Healthy clients are served while the staller waits out its
    // deadline — a stalled connection costs one thread, never the node.
    let (status, _) = get(&addr, "/healthz");
    assert_eq!(status, 200);

    // The server evicts the staller with 408 at the deadline instead of
    // buffering half a request forever.
    let started = Instant::now();
    let mut response = String::new();
    stall
        .read_to_string(&mut response)
        .expect("read eviction response");
    assert!(response.starts_with("HTTP/1.1 408"), "got {response:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "eviction must come from the deadline, not a test timeout"
    );

    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(metrics["requests_timed_out"], Value::U64(1));
    handle.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_reaped_silently() {
    use std::io::Read;
    use std::net::TcpStream;

    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        cache_cap: 4,
        queue_cap: 4,
        read_timeout_ms: 5_000,
        idle_timeout_ms: 100,
        drain_ms: 100,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // A connection that never sends a byte: closed at the idle deadline
    // with no response and no timeout metric — this is normal keep-alive
    // hygiene, not an evicted request.
    let mut idle = TcpStream::connect(&addr).unwrap();
    let started = Instant::now();
    let mut buf = Vec::new();
    idle.read_to_end(&mut buf).expect("server closes cleanly");
    assert!(buf.is_empty(), "idle close must be silent: {buf:?}");
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "the idle deadline (100ms), not the request deadline (5s), must close"
    );

    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(metrics["requests_timed_out"], Value::U64(0));
    handle.shutdown();
}

#[test]
fn drain_flips_readyz_refuses_new_work_and_exits_within_budget() {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        cache_cap: 8,
        queue_cap: 8,
        drain_ms: 800,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let (status, ready) = get(&addr, "/readyz");
    assert_eq!(status, 200);
    assert_eq!(ready["status"], Value::String("ready".into()));

    // Queue one cell on this pull-only node so the drain has
    // outstanding work to wait on (nothing will ever claim it).
    let body = serde_json::to_string(&ahn_serve::loadtest::smoke_spec(21)).unwrap();
    let (status, _) = post(&addr, "/v1/experiments", &body);
    assert_eq!(status, 202);

    let started = Instant::now();
    let (status, ack) = post(&addr, "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(ack["status"], Value::String("shutting-down".into()));

    // During the drain window: not ready, no new submissions, no claims
    // — but the node still answers (completions could still land). The
    // drain flag flips just after the shutdown ack is written, so allow
    // a few polls for it to land.
    let ready = loop {
        let (status, ready) = get(&addr, "/readyz");
        if status == 503 {
            break ready;
        }
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "readiness never flipped"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(ready["status"], Value::String("draining".into()));
    let (status, refused) = post(&addr, "/v1/experiments", &body);
    assert_eq!(status, 503, "{refused:?}");
    let (status, claim) = post(&addr, "/v1/work/claim", "{\"lease_ms\":1000}");
    assert_eq!(status, 200);
    assert_eq!(claim["status"], Value::String("empty".into()));
    assert_eq!(claim["reason"], Value::String("draining".into()));
    // The drain gauge is live mid-drain, not only at the end.
    let (_, metrics) = get(&addr, "/metrics");
    assert!(
        matches!(metrics["drain_seconds"], Value::F64(s) if s >= 0.0),
        "{:?}",
        metrics["drain_seconds"]
    );

    // The stuck cell pins the drain to its full budget — and no longer.
    handle.join();
    assert!(started.elapsed() >= Duration::from_millis(800));
    assert!(started.elapsed() < Duration::from_secs(10));
    assert!(one_shot(&addr, "GET", "/healthz", "").is_err());
}

#[test]
fn full_queue_answers_503() {
    // One worker, a queue of one, and three *distinct* slow-ish jobs
    // submitted back to back: the third submission must find the worker
    // busy and the queue occupied.
    let (handle, addr) = boot(1, 8, 1);
    let slow_body = |seed: u64| {
        let mut spec = ahn_serve::loadtest::smoke_spec(seed);
        if let ahn_serve::protocol::JobSpec::Experiment { config, .. } = &mut spec {
            // ~hundreds of ms per job: enough to keep the worker busy
            // while the test submits, far from the test timeout.
            config.generations = 40;
            config.replications = 8;
        }
        serde_json::to_string(&spec).unwrap()
    };

    let (s1, _) = post(&addr, "/v1/experiments", &slow_body(1));
    assert_eq!(s1, 202);
    let mut saw_503 = false;
    for seed in 2..20 {
        let (status, _) = post(&addr, "/v1/experiments", &slow_body(seed));
        match status {
            202 => continue,
            503 => {
                saw_503 = true;
                break;
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(saw_503, "a 1-deep queue should overflow under a burst");

    let (_, metrics) = get(&addr, "/metrics");
    match metrics["rejected_queue_full"] {
        Value::U64(n) => assert!(n >= 1),
        ref other => panic!("{other:?}"),
    }
    handle.shutdown();
}
