//! Fault-injection tests for the distributed sweep layer: real servers
//! on ephemeral ports, real pull workers on threads, seeded
//! [`FlakyTransport`] failures — and one invariant throughout: the
//! merged report is byte-identical to a single-process run no matter
//! how many workers ran, which crashed, or what got delivered twice.

use ahn_serve::jobs::run_job;
use ahn_serve::loadtest::one_shot;
use ahn_serve::protocol::{WorkCompletion, WorkGrant};
use ahn_serve::server::{spawn, ServerConfig, ServerHandle};
use ahn_serve::{
    run_calibration_via, run_sweep_via, run_worker, FaultPlan, FlakyTransport, HttpTransport,
    WorkerConfig, WorkerReport,
};
use serde_json::Value;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Boots a server; `workers: 0` makes it pull-only (all compute happens
/// in `ahn-exp worker`-style pull loops).
fn boot(workers: usize, journal: Option<&std::path::Path>) -> (ServerHandle, String) {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        cache_cap: 64,
        queue_cap: 64,
        journal: journal.map(|p| p.display().to_string()),
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ahn-distributed-test-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// A 4-cell sweep (2 cases x 2 seed blocks) small enough to run many
/// times per test but exercising distinct per-cell seeds.
fn small_grid() -> ahn_core::SweepGrid {
    let mut base = ahn_core::ExperimentConfig::smoke();
    base.generations = 3;
    base.replications = 1;
    ahn_core::SweepGrid {
        base,
        cases: vec![1, 3],
        payoffs: vec!["paper".into()],
        sizes: vec![10],
        seed_blocks: vec![0, 1],
    }
}

/// Starts a pull worker on a thread with the given fault schedule.
/// Returns the worker's report and how many faults were injected.
fn start_worker(
    addr: &str,
    plan: FaultPlan,
    lease_ms: u64,
) -> JoinHandle<(Result<WorkerReport, String>, u64)> {
    let addr = addr.to_string();
    std::thread::spawn(move || {
        let mut transport = FlakyTransport::new(HttpTransport::new(&addr), plan);
        let config = WorkerConfig {
            lease_ms,
            poll_ms: 5,
            max_cells: 0,
            // Generous idle tolerance (~2s): the worker must outlive
            // submission gaps and lease-expiry waits mid-test.
            idle_exit_polls: 400,
            max_consecutive_errors: 200,
        };
        let outcome = run_worker(&mut transport, &config);
        (outcome, transport.injected())
    })
}

fn get(addr: &str, path: &str) -> (u16, Value) {
    let (status, body) = one_shot(addr, "GET", path, "").expect("request");
    (status, serde_json::from_str(&body).unwrap_or(Value::Null))
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    one_shot(addr, "POST", path, body).expect("request")
}

fn metric_u64(addr: &str, field: &str) -> u64 {
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    match metrics[field] {
        Value::U64(n) => n,
        ref other => panic!("metric {field} should be an integer, got {other:?}"),
    }
}

#[test]
fn one_two_and_four_workers_merge_bit_identically() {
    let grid = small_grid();
    let local = ahn_core::run_sweep(&grid).expect("local sweep");
    let local_json = serde_json::to_string_pretty(&local).unwrap();

    for worker_count in [1usize, 2, 4] {
        let (handle, addr) = boot(0, None);
        let workers: Vec<_> = (0..worker_count)
            .map(|_| start_worker(&addr, FaultPlan::none(), 60_000))
            .collect();

        let mut transport = HttpTransport::new(&addr);
        let report = run_sweep_via(&mut transport, &grid, None, 2)
            .unwrap_or_else(|e| panic!("{worker_count}-worker sweep failed: {e}"));
        let distributed_json = serde_json::to_string_pretty(&report).unwrap();
        assert_eq!(
            distributed_json, local_json,
            "{worker_count} workers changed the report bytes"
        );

        for worker in workers {
            let (outcome, _) = worker.join().expect("worker thread");
            outcome.expect("healthy worker exits cleanly");
        }
        handle.shutdown();
    }
}

#[test]
fn flaky_workers_cannot_change_a_byte() {
    let grid = small_grid();
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_sweep(&grid).expect("local sweep")).unwrap();

    let (handle, addr) = boot(0, None);
    // Two lossy workers: dropped requests stall claims, dropped
    // responses make the server process completions the worker never
    // sees — forcing the retry-then-duplicate path. Short leases heal
    // claims whose grant got lost in flight.
    let plans = [
        FaultPlan {
            seed: 11,
            drop_request_percent: 20,
            drop_response_percent: 20,
            die_after_calls: None,
        },
        FaultPlan {
            seed: 12,
            drop_request_percent: 20,
            drop_response_percent: 20,
            die_after_calls: None,
        },
    ];
    let workers: Vec<_> = plans
        .iter()
        .map(|plan| start_worker(&addr, *plan, 300))
        .collect();

    let mut transport = HttpTransport::new(&addr);
    let report = run_sweep_via(&mut transport, &grid, None, 2).expect("flaky distributed sweep");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "injected faults changed the report bytes"
    );

    let mut total_injected = 0;
    for worker in workers {
        let (_, injected) = worker.join().expect("worker thread");
        total_injected += injected;
    }
    // Each worker polls idle for hundreds of calls before exiting, so a
    // 40% fault schedule cannot miss every call.
    assert!(total_injected > 0, "the fault plans never fired");
    handle.shutdown();
}

#[test]
fn worker_crash_mid_cell_expires_the_lease_and_another_worker_finishes() {
    let grid = small_grid();
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_sweep(&grid).expect("local sweep")).unwrap();

    let (handle, addr) = boot(0, None);

    // Queue all four cells up front so the crasher has work to claim.
    for spec in grid.cell_specs() {
        let (config, case) = grid.resolve(&spec).unwrap();
        let body = serde_json::to_string(&ahn_serve::JobSpec::Experiment {
            config,
            cases: vec![case],
        })
        .unwrap();
        let (status, response) = post(&addr, "/v1/experiments", &body);
        assert_eq!(status, 202, "{response}");
    }

    // The crasher claims a cell (call 0 succeeds), computes it, then
    // dies permanently before any completion lands — kill -9 between
    // compute and report. Its short lease is now orphaned.
    let crasher = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let plan = FaultPlan {
                seed: 0,
                drop_request_percent: 0,
                drop_response_percent: 0,
                die_after_calls: Some(1),
            };
            let mut transport = FlakyTransport::new(HttpTransport::new(&addr), plan);
            let config = WorkerConfig {
                lease_ms: 150,
                poll_ms: 2,
                max_cells: 0,
                idle_exit_polls: 0,
                max_consecutive_errors: 3,
            };
            run_worker(&mut transport, &config)
        }
    });
    assert!(
        crasher.join().expect("crasher thread").is_err(),
        "the dead transport must kill the crasher"
    );

    // A healthy worker takes over: once the 150ms lease expires, its
    // next claim sweeps the orphan back to the queue front.
    let healthy = start_worker(&addr, FaultPlan::none(), 60_000);
    let mut transport = HttpTransport::new(&addr);
    let report = run_sweep_via(&mut transport, &grid, None, 2).expect("recovery sweep");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "crash recovery changed the report bytes"
    );
    assert!(
        metric_u64(&addr, "lease_requeues") >= 1,
        "the orphaned lease must have been requeued"
    );
    healthy
        .join()
        .expect("healthy thread")
        .0
        .expect("clean exit");
    handle.shutdown();
}

#[test]
fn duplicate_completion_keeps_the_first_result() {
    let (handle, addr) = boot(0, None);
    let spec = ahn_serve::loadtest::smoke_spec(3);
    let body = serde_json::to_string(&spec).unwrap();
    let (status, response) = post(&addr, "/v1/experiments", &body);
    assert_eq!(status, 202, "{response}");

    // Claim the cell and compute it exactly like a worker would.
    let (status, granted) = post(&addr, "/v1/work/claim", "{\"lease_ms\":60000}");
    assert_eq!(status, 200, "{granted}");
    let grant: WorkGrant = serde_json::from_str(&granted).expect("work grant");
    assert_eq!(grant.spec.cache_key().unwrap(), grant.key);
    let result = run_job(&grant.spec).expect("compute cell");

    let completion = serde_json::to_string(&WorkCompletion {
        lease_id: grant.lease_id,
        job_id: grant.job_id,
        key: grant.key,
        result: Some(result.clone()),
        error: None,
    })
    .unwrap();

    // First delivery wins; the byte-identical replay is a duplicate.
    let (status, first) = post(&addr, "/v1/work/complete", &completion);
    assert_eq!((status, first.as_str()), (200, "{\"status\":\"recorded\"}"));
    let (status, second) = post(&addr, "/v1/work/complete", &completion);
    assert_eq!(
        (status, second.as_str()),
        (200, "{\"status\":\"duplicate\"}")
    );
    assert_eq!(metric_u64(&addr, "work_duplicate"), 1);
    assert_eq!(metric_u64(&addr, "work_completed"), 1);

    // The job's recorded result is the first delivery, bit for bit.
    let (status, job) = get(&addr, &format!("/v1/jobs/{}", grant.job_id));
    assert_eq!(status, 200);
    assert_eq!(job["status"], Value::String("done".into()));
    assert_eq!(
        serde_json::to_string(&job["result"]).unwrap(),
        result,
        "stored result must be the delivered bytes"
    );
    handle.shutdown();
}

#[test]
fn coordinator_resumes_from_journal_and_recomputes_only_missing_cells() {
    let grid = small_grid();
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_sweep(&grid).expect("local sweep")).unwrap();
    let journal = tmp("coordinator-resume");

    // Phase 1: checkpoint half the grid (one seed block = 2 of 4 cells)
    // through a server with its own compute workers.
    let mut half = grid.clone();
    half.seed_blocks = vec![0];
    {
        let (handle, addr) = boot(1, None);
        let mut transport = HttpTransport::new(&addr);
        run_sweep_via(&mut transport, &half, Some(&journal), 2).expect("half sweep");
        handle.shutdown();
    }

    // Phase 2: a fresh server (empty cache) finishes the full grid.
    // Only the two cells missing from the journal may run as jobs.
    let (handle, addr) = boot(1, None);
    let mut transport = HttpTransport::new(&addr);
    let report = run_sweep_via(&mut transport, &grid, Some(&journal), 2).expect("resumed sweep");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "journal resume changed the report bytes"
    );
    assert_eq!(
        metric_u64(&addr, "jobs_completed"),
        2,
        "checkpointed cells must not be recomputed"
    );
    handle.shutdown();

    // Phase 3: crash the coordinator mid-run against a fresh journal,
    // then resume. Any partial checkpoint state must converge to the
    // same bytes.
    let crash_journal = tmp("coordinator-crash");
    let (handle, addr) = boot(1, None);
    let plan = FaultPlan {
        seed: 0,
        drop_request_percent: 0,
        drop_response_percent: 0,
        die_after_calls: Some(6),
    };
    let mut flaky = FlakyTransport::new(HttpTransport::new(&addr), plan);
    let crashed = run_sweep_via(&mut flaky, &grid, Some(&crash_journal), 2);
    assert!(crashed.is_err(), "the dead transport must fail the run");

    let mut transport = HttpTransport::new(&addr);
    let report =
        run_sweep_via(&mut transport, &grid, Some(&crash_journal), 2).expect("crash resume");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "crash/resume changed the report bytes"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&crash_journal);
}

#[test]
fn distributed_calibration_matches_local_including_pareto_front() {
    let grid = ahn_core::CalibrationGrid::smoke();
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_calibration(&grid).expect("local calibration"))
            .unwrap();
    let journal = tmp("calibration");

    let (handle, addr) = boot(0, None);
    let workers: Vec<_> = (0..2)
        .map(|_| start_worker(&addr, FaultPlan::none(), 60_000))
        .collect();
    let mut transport = HttpTransport::new(&addr);
    let report = run_calibration_via(&mut transport, &grid, Some(&journal), 2)
        .expect("distributed calibration");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "distributed calibration changed the report bytes"
    );
    for worker in workers {
        worker.join().expect("worker thread").0.expect("clean exit");
    }
    handle.shutdown();

    // Resume from the journal alone: a pull-only server with *no*
    // workers anywhere can still produce the full report.
    let (handle, addr) = boot(0, None);
    let mut transport = HttpTransport::new(&addr);
    let resumed = run_calibration_via(&mut transport, &grid, Some(&journal), 2)
        .expect("journal-only calibration");
    assert_eq!(
        serde_json::to_string_pretty(&resumed).unwrap(),
        local_json,
        "journal-only resume changed the report bytes"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn server_journal_replays_onto_a_fresh_store_identically() {
    let journal = tmp("server-journal");
    let spec = ahn_serve::loadtest::smoke_spec(9);
    let body = serde_json::to_string(&spec).unwrap();
    let key = spec.cache_key().unwrap();

    // Server A computes the job and records it in its on-disk store.
    let first_result = {
        let (handle, addr) = boot(1, Some(&journal));
        let (status, response) = post(&addr, "/v1/experiments", &body);
        assert_eq!(status, 202, "{response}");
        let ack: Value = serde_json::from_str(&response).unwrap();
        let Value::U64(job_id) = ack["job_id"] else {
            panic!("no job id in {response}");
        };
        let deadline = Instant::now() + Duration::from_secs(60);
        let result = loop {
            let (status, job) = get(&addr, &format!("/v1/jobs/{job_id}"));
            assert_eq!(status, 200);
            match &job["status"] {
                Value::String(s) if s == "done" => {
                    break serde_json::to_string(&job["result"]).unwrap()
                }
                Value::String(s) if s == "failed" => panic!("job failed: {job:?}"),
                _ => {
                    assert!(Instant::now() < deadline, "job timed out");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        };
        handle.shutdown();
        result
    };

    // The journal on disk holds exactly that completion, checksummed.
    let replayed = ahn_serve::journal::replay(&journal).expect("replay journal");
    assert_eq!(replayed.discarded, 0);
    assert_eq!(replayed.records.len(), 1);
    assert_eq!(replayed.records[0].key, key);
    assert_eq!(replayed.records[0].result, first_result);

    // Server B (same journal, zero compute anywhere) answers the same
    // submission inline from the replayed cache — byte-identical.
    let (handle, addr) = boot(0, Some(&journal));
    let (status, response) = post(&addr, "/v1/experiments", &body);
    assert_eq!(
        status, 200,
        "replayed journal must warm the cache: {response}"
    );
    let hit: Value = serde_json::from_str(&response).unwrap();
    assert_eq!(hit["cached"], Value::Bool(true));
    assert_eq!(
        serde_json::to_string(&hit["result"]).unwrap(),
        first_result,
        "replayed result must be bit-identical"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&journal);
}
