//! Fault-injection tests for the distributed sweep layer: real servers
//! on ephemeral ports, real pull workers on threads, seeded
//! [`FlakyTransport`] failures — and one invariant throughout: the
//! merged report is byte-identical to a single-process run no matter
//! how many workers ran, which crashed, or what got delivered twice.

use ahn_serve::jobs::run_job;
use ahn_serve::loadtest::one_shot;
use ahn_serve::protocol::{WorkCompletion, WorkGrant};
use ahn_serve::server::{spawn, ServerConfig, ServerHandle};
use ahn_serve::{
    run_calibration_via, run_sweep_via, run_worker, BackoffPolicy, CircuitBreaker, FaultPlan,
    FlakyTransport, HttpTransport, WorkerConfig, WorkerReport,
};
use serde_json::Value;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Boots a server; `workers: 0` makes it pull-only (all compute happens
/// in `ahn-exp worker`-style pull loops).
fn boot(workers: usize, journal: Option<&std::path::Path>) -> (ServerHandle, String) {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        cache_cap: 64,
        queue_cap: 64,
        journal: journal.map(|p| p.display().to_string()),
        // Short drain: several tests shut down with work still queued
        // and must not wait out the default drain budget.
        drain_ms: 250,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ahn-distributed-test-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// A 4-cell sweep (2 cases x 2 seed blocks) small enough to run many
/// times per test but exercising distinct per-cell seeds.
fn small_grid() -> ahn_core::SweepGrid {
    let mut base = ahn_core::ExperimentConfig::smoke();
    base.generations = 3;
    base.replications = 1;
    ahn_core::SweepGrid {
        base,
        scenarios: None,
        cases: vec![1, 3],
        payoffs: vec!["paper".into()],
        sizes: vec![10],
        seed_blocks: vec![0, 1],
    }
}

/// Starts a pull worker on a thread with the given fault schedule.
/// Returns the worker's report and how many faults were injected.
fn start_worker(
    addr: &str,
    plan: FaultPlan,
    lease_ms: u64,
) -> JoinHandle<(Result<WorkerReport, String>, u64)> {
    let addr = addr.to_string();
    std::thread::spawn(move || {
        let mut transport = FlakyTransport::new(HttpTransport::new(&addr), plan);
        let config = WorkerConfig {
            lease_ms,
            poll_ms: 5,
            max_cells: 0,
            // Generous idle tolerance (~2s): the worker must outlive
            // submission gaps and lease-expiry waits mid-test.
            idle_exit_polls: 400,
            max_consecutive_errors: 200,
            // Fast backoff so injected faults cost milliseconds, not
            // the production-scale default delays.
            backoff: BackoffPolicy {
                base_ms: 1,
                cap_ms: 8,
                seed: 3,
            },
        };
        let outcome = run_worker(&mut transport, &config);
        (outcome, transport.injected())
    })
}

/// Starts a pull worker behind the full resilience stack — circuit
/// breaker over seeded chaos over HTTP, the `ahn-exp worker --chaos-*`
/// configuration in-process. Fast backoff keeps retries test-friendly;
/// zero cooldown makes every post-trip call a half-open probe, so the
/// breaker exercises its state machine without fail-fast nondeterminism.
/// Returns `(report, injected faults, breaker trips)`.
fn start_hardened_worker(
    addr: &str,
    plan: FaultPlan,
    lease_ms: u64,
) -> JoinHandle<(Result<WorkerReport, String>, u64, u64)> {
    let addr = addr.to_string();
    std::thread::spawn(move || {
        let mut transport = CircuitBreaker::new(
            FlakyTransport::new(HttpTransport::new(&addr), plan),
            2,
            Duration::ZERO,
        );
        let config = WorkerConfig {
            lease_ms,
            poll_ms: 5,
            max_cells: 0,
            idle_exit_polls: 400,
            max_consecutive_errors: 500,
            backoff: BackoffPolicy {
                base_ms: 1,
                cap_ms: 8,
                seed: 7,
            },
        };
        let outcome = run_worker(&mut transport, &config);
        (outcome, transport.inner().injected(), transport.opens())
    })
}

fn get(addr: &str, path: &str) -> (u16, Value) {
    let (status, body) = one_shot(addr, "GET", path, "").expect("request");
    (status, serde_json::from_str(&body).unwrap_or(Value::Null))
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    one_shot(addr, "POST", path, body).expect("request")
}

fn metric_u64(addr: &str, field: &str) -> u64 {
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    match metrics[field] {
        Value::U64(n) => n,
        ref other => panic!("metric {field} should be an integer, got {other:?}"),
    }
}

#[test]
fn one_two_and_four_workers_merge_bit_identically() {
    let grid = small_grid();
    let local = ahn_core::run_sweep(&grid).expect("local sweep");
    let local_json = serde_json::to_string_pretty(&local).unwrap();

    for worker_count in [1usize, 2, 4] {
        let (handle, addr) = boot(0, None);
        let workers: Vec<_> = (0..worker_count)
            .map(|_| start_worker(&addr, FaultPlan::none(), 60_000))
            .collect();

        let mut transport = HttpTransport::new(&addr);
        let report = run_sweep_via(&mut transport, &grid, None, 2)
            .unwrap_or_else(|e| panic!("{worker_count}-worker sweep failed: {e}"));
        let distributed_json = serde_json::to_string_pretty(&report).unwrap();
        assert_eq!(
            distributed_json, local_json,
            "{worker_count} workers changed the report bytes"
        );

        for worker in workers {
            let (outcome, _) = worker.join().expect("worker thread");
            outcome.expect("healthy worker exits cleanly");
        }
        handle.shutdown();
    }
}

#[test]
fn flaky_workers_cannot_change_a_byte() {
    let grid = small_grid();
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_sweep(&grid).expect("local sweep")).unwrap();

    let (handle, addr) = boot(0, None);
    // Two lossy workers: dropped requests stall claims, dropped
    // responses make the server process completions the worker never
    // sees — forcing the retry-then-duplicate path. Short leases heal
    // claims whose grant got lost in flight.
    let plans = [
        FaultPlan {
            seed: 11,
            drop_request_percent: 20,
            drop_response_percent: 20,
            ..FaultPlan::none()
        },
        FaultPlan {
            seed: 12,
            drop_request_percent: 20,
            drop_response_percent: 20,
            ..FaultPlan::none()
        },
    ];
    let workers: Vec<_> = plans
        .iter()
        .map(|plan| start_worker(&addr, *plan, 300))
        .collect();

    let mut transport = HttpTransport::new(&addr);
    let report = run_sweep_via(&mut transport, &grid, None, 2).expect("flaky distributed sweep");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "injected faults changed the report bytes"
    );

    let mut total_injected = 0;
    for worker in workers {
        let (_, injected) = worker.join().expect("worker thread");
        total_injected += injected;
    }
    // Each worker polls idle for hundreds of calls before exiting, so a
    // 40% fault schedule cannot miss every call.
    assert!(total_injected > 0, "the fault plans never fired");
    handle.shutdown();
}

#[test]
fn worker_crash_mid_cell_expires_the_lease_and_another_worker_finishes() {
    let grid = small_grid();
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_sweep(&grid).expect("local sweep")).unwrap();

    let (handle, addr) = boot(0, None);

    // Queue all four cells up front so the crasher has work to claim.
    for spec in grid.cell_specs() {
        let (config, case) = grid.resolve(&spec).unwrap();
        let body = serde_json::to_string(&ahn_serve::JobSpec::Experiment {
            config,
            cases: vec![case],
        })
        .unwrap();
        let (status, response) = post(&addr, "/v1/experiments", &body);
        assert_eq!(status, 202, "{response}");
    }

    // The crasher claims a cell (call 0 succeeds), computes it, then
    // dies permanently before any completion lands — kill -9 between
    // compute and report. Its short lease is now orphaned.
    let crasher = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let plan = FaultPlan {
                die_after_calls: Some(1),
                ..FaultPlan::none()
            };
            let mut transport = FlakyTransport::new(HttpTransport::new(&addr), plan);
            let config = WorkerConfig {
                lease_ms: 150,
                poll_ms: 2,
                max_cells: 0,
                idle_exit_polls: 0,
                max_consecutive_errors: 3,
                ..WorkerConfig::default()
            };
            run_worker(&mut transport, &config)
        }
    });
    assert!(
        crasher.join().expect("crasher thread").is_err(),
        "the dead transport must kill the crasher"
    );

    // A healthy worker takes over: once the 150ms lease expires, its
    // next claim sweeps the orphan back to the queue front.
    let healthy = start_worker(&addr, FaultPlan::none(), 60_000);
    let mut transport = HttpTransport::new(&addr);
    let report = run_sweep_via(&mut transport, &grid, None, 2).expect("recovery sweep");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "crash recovery changed the report bytes"
    );
    assert!(
        metric_u64(&addr, "lease_requeues") >= 1,
        "the orphaned lease must have been requeued"
    );
    healthy
        .join()
        .expect("healthy thread")
        .0
        .expect("clean exit");
    handle.shutdown();
}

#[test]
fn duplicate_completion_keeps_the_first_result() {
    let (handle, addr) = boot(0, None);
    let spec = ahn_serve::loadtest::smoke_spec(3);
    let body = serde_json::to_string(&spec).unwrap();
    let (status, response) = post(&addr, "/v1/experiments", &body);
    assert_eq!(status, 202, "{response}");

    // Claim the cell and compute it exactly like a worker would.
    let (status, granted) = post(&addr, "/v1/work/claim", "{\"lease_ms\":60000}");
    assert_eq!(status, 200, "{granted}");
    let grant: WorkGrant = serde_json::from_str(&granted).expect("work grant");
    assert_eq!(grant.spec.cache_key().unwrap(), grant.key);
    let result = run_job(&grant.spec).expect("compute cell");

    let completion = serde_json::to_string(&WorkCompletion {
        lease_id: grant.lease_id,
        job_id: grant.job_id,
        key: grant.key,
        result: Some(result.clone()),
        error: None,
        trace_id: grant.trace_id,
        compute_us: None,
    })
    .unwrap();

    // First delivery wins; the byte-identical replay is a duplicate.
    let (status, first) = post(&addr, "/v1/work/complete", &completion);
    assert_eq!((status, first.as_str()), (200, "{\"status\":\"recorded\"}"));
    let (status, second) = post(&addr, "/v1/work/complete", &completion);
    assert_eq!(
        (status, second.as_str()),
        (200, "{\"status\":\"duplicate\"}")
    );
    assert_eq!(metric_u64(&addr, "work_duplicate"), 1);
    assert_eq!(metric_u64(&addr, "work_completed"), 1);

    // The job's recorded result is the first delivery, bit for bit.
    let (status, job) = get(&addr, &format!("/v1/jobs/{}", grant.job_id));
    assert_eq!(status, 200);
    assert_eq!(job["status"], Value::String("done".into()));
    assert_eq!(
        serde_json::to_string(&job["result"]).unwrap(),
        result,
        "stored result must be the delivered bytes"
    );
    handle.shutdown();
}

#[test]
fn coordinator_resumes_from_journal_and_recomputes_only_missing_cells() {
    let grid = small_grid();
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_sweep(&grid).expect("local sweep")).unwrap();
    let journal = tmp("coordinator-resume");

    // Phase 1: checkpoint half the grid (one seed block = 2 of 4 cells)
    // through a server with its own compute workers.
    let mut half = grid.clone();
    half.seed_blocks = vec![0];
    {
        let (handle, addr) = boot(1, None);
        let mut transport = HttpTransport::new(&addr);
        run_sweep_via(&mut transport, &half, Some(&journal), 2).expect("half sweep");
        handle.shutdown();
    }

    // Phase 2: a fresh server (empty cache) finishes the full grid.
    // Only the two cells missing from the journal may run as jobs.
    let (handle, addr) = boot(1, None);
    let mut transport = HttpTransport::new(&addr);
    let report = run_sweep_via(&mut transport, &grid, Some(&journal), 2).expect("resumed sweep");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "journal resume changed the report bytes"
    );
    assert_eq!(
        metric_u64(&addr, "jobs_completed"),
        2,
        "checkpointed cells must not be recomputed"
    );
    handle.shutdown();

    // Phase 3: crash the coordinator mid-run against a fresh journal,
    // then resume. Any partial checkpoint state must converge to the
    // same bytes.
    let crash_journal = tmp("coordinator-crash");
    let (handle, addr) = boot(1, None);
    let plan = FaultPlan {
        die_after_calls: Some(6),
        ..FaultPlan::none()
    };
    let mut flaky = FlakyTransport::new(HttpTransport::new(&addr), plan);
    let crashed = run_sweep_via(&mut flaky, &grid, Some(&crash_journal), 2);
    assert!(crashed.is_err(), "the dead transport must fail the run");

    let mut transport = HttpTransport::new(&addr);
    let report =
        run_sweep_via(&mut transport, &grid, Some(&crash_journal), 2).expect("crash resume");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "crash/resume changed the report bytes"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&crash_journal);
}

#[test]
fn distributed_calibration_matches_local_including_pareto_front() {
    let grid = ahn_core::CalibrationGrid::smoke();
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_calibration(&grid).expect("local calibration"))
            .unwrap();
    let journal = tmp("calibration");

    let (handle, addr) = boot(0, None);
    let workers: Vec<_> = (0..2)
        .map(|_| start_worker(&addr, FaultPlan::none(), 60_000))
        .collect();
    let mut transport = HttpTransport::new(&addr);
    let report = run_calibration_via(&mut transport, &grid, Some(&journal), 2)
        .expect("distributed calibration");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "distributed calibration changed the report bytes"
    );
    for worker in workers {
        worker.join().expect("worker thread").0.expect("clean exit");
    }
    handle.shutdown();

    // Resume from the journal alone: a pull-only server with *no*
    // workers anywhere can still produce the full report.
    let (handle, addr) = boot(0, None);
    let mut transport = HttpTransport::new(&addr);
    let resumed = run_calibration_via(&mut transport, &grid, Some(&journal), 2)
        .expect("journal-only calibration");
    assert_eq!(
        serde_json::to_string_pretty(&resumed).unwrap(),
        local_json,
        "journal-only resume changed the report bytes"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn churn_under_latency_stalls_partial_writes_and_breakers_cannot_change_a_byte() {
    let grid = small_grid();
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_sweep(&grid).expect("local sweep")).unwrap();

    let (handle, addr) = boot(0, None);
    // Two workers behind breaker-over-chaos transports: dropped calls
    // trip retries, stalls burn their transport deadline budget, partial
    // writes feed the server malformed JSON, and two consecutive
    // failures trip the breaker. Short leases heal every lost grant.
    let plans = [
        FaultPlan {
            seed: 21,
            drop_request_percent: 10,
            drop_response_percent: 10,
            latency_percent: 15,
            latency_ms: 5,
            stall_percent: 10,
            stall_ms: 10,
            partial_write_percent: 10,
            die_after_calls: None,
        },
        FaultPlan {
            seed: 22,
            drop_request_percent: 10,
            drop_response_percent: 10,
            latency_percent: 15,
            latency_ms: 5,
            stall_percent: 10,
            stall_ms: 10,
            partial_write_percent: 10,
            die_after_calls: None,
        },
    ];
    let workers: Vec<_> = plans
        .iter()
        .map(|plan| start_hardened_worker(&addr, *plan, 300))
        .collect();

    let mut transport = HttpTransport::new(&addr);
    let report = run_sweep_via(&mut transport, &grid, None, 2).expect("churned sweep");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "timeouts, breakers, and chaos changed the report bytes"
    );

    let (mut total_injected, mut total_opens) = (0, 0);
    for worker in workers {
        let (_, injected, opens) = worker.join().expect("worker thread");
        total_injected += injected;
        total_opens += opens;
    }
    assert!(total_injected > 0, "the fault plans never fired");
    // ~45% of calls fail, so two consecutive failures (a trip) are
    // certain across hundreds of deterministic per-worker schedules.
    assert!(total_opens > 0, "the breakers never tripped");
    // Workers report trip deltas on their (many) trailing idle claims,
    // so the server-side fold must have seen at least one.
    assert!(
        metric_u64(&addr, "breaker_open_total") > 0,
        "claim-reported trips must fold into breaker_open_total"
    );
    // All four cells were computed externally; the local-compute gauge
    // stays honest at zero on a pull-only node.
    assert_eq!(metric_u64(&addr, "cells_completed_external"), 4);
    assert_eq!(metric_u64(&addr, "games_simulated"), 0);
    handle.shutdown();
}

#[test]
fn claim_reported_breaker_trips_fold_into_the_metric() {
    let (handle, addr) = boot(0, None);
    let (status, body) = post(
        &addr,
        "/v1/work/claim",
        "{\"lease_ms\":1000,\"breaker_trips\":3}",
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(metric_u64(&addr, "breaker_open_total"), 3);
    // The field is optional: plain claims add nothing.
    let (status, _) = post(&addr, "/v1/work/claim", "{\"lease_ms\":1000}");
    assert_eq!(status, 200);
    assert_eq!(metric_u64(&addr, "breaker_open_total"), 3);
    handle.shutdown();
}

#[test]
fn drain_mid_sweep_then_restart_resumes_byte_identically_from_a_torn_journal() {
    let mut grid = small_grid();
    grid.seed_blocks = vec![0, 1, 2, 3]; // 8 cells: enough to drain mid-run
    let cells = grid.cell_specs().len() as u64;
    let local_json =
        serde_json::to_string_pretty(&ahn_core::run_sweep(&grid).expect("local sweep")).unwrap();
    let journal = tmp("drain-midrun");

    // Phase 1: a pull-only server, one worker slowed by injected
    // latency, and a checkpointing coordinator on a thread. Once the
    // journal holds at least one completion, drain the server out from
    // under both of them.
    let (handle, addr) = boot(0, None);
    let slow = FaultPlan {
        seed: 5,
        latency_percent: 100,
        latency_ms: 30,
        ..FaultPlan::none()
    };
    let worker = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut transport = FlakyTransport::new(HttpTransport::new(&addr), slow);
            // Low error tolerance + fast backoff: once the server is
            // gone this worker gives up in well under a second.
            let config = WorkerConfig {
                lease_ms: 60_000,
                poll_ms: 2,
                max_cells: 0,
                idle_exit_polls: 400,
                max_consecutive_errors: 10,
                backoff: BackoffPolicy {
                    base_ms: 1,
                    cap_ms: 5,
                    seed: 3,
                },
            };
            run_worker(&mut transport, &config)
        }
    });
    let coordinator = std::thread::spawn({
        let addr = addr.clone();
        let grid = grid.clone();
        let journal = journal.clone();
        move || {
            let mut transport = HttpTransport::new(&addr);
            run_sweep_via(&mut transport, &grid, Some(&journal), 2)
        }
    });
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let checkpointed = ahn_serve::journal::replay(&journal)
            .map(|r| r.records.len())
            .unwrap_or(0);
        if checkpointed >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no cell was ever checkpointed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, _) = post(&addr, "/v1/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
    assert!(
        coordinator.join().expect("coordinator thread").is_err(),
        "the drained server must fail the mid-run coordinator"
    );
    let _ = worker.join().expect("worker thread");

    // Phase 1.5: tear the journal's trailing record, as a crash mid-append
    // would. Replay discards exactly the torn tail and keeps the rest.
    let bytes = std::fs::read(&journal).expect("journal exists");
    assert!(!bytes.is_empty());
    std::fs::write(&journal, &bytes[..bytes.len() - 3]).expect("tear the tail");
    let replayed = ahn_serve::journal::replay(&journal).expect("replay torn journal");
    assert_eq!(replayed.discarded, 1, "exactly the torn record is dropped");
    let salvaged = replayed.records.len() as u64;
    assert!(salvaged < cells);

    // Phase 2: a fresh server and a healthy worker resume from the torn
    // journal — byte-identical, recomputing only the missing cells.
    let (handle, addr) = boot(0, None);
    let healthy = start_worker(&addr, FaultPlan::none(), 60_000);
    let mut transport = HttpTransport::new(&addr);
    let report = run_sweep_via(&mut transport, &grid, Some(&journal), 2).expect("resumed sweep");
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        local_json,
        "drain/tear/resume changed the report bytes"
    );
    assert_eq!(
        metric_u64(&addr, "cells_completed_external"),
        cells - salvaged,
        "checkpointed cells must not be recomputed (and none double-counted)"
    );
    healthy
        .join()
        .expect("healthy thread")
        .0
        .expect("clean exit");
    handle.shutdown();
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn server_journal_replays_onto_a_fresh_store_identically() {
    let journal = tmp("server-journal");
    let spec = ahn_serve::loadtest::smoke_spec(9);
    let body = serde_json::to_string(&spec).unwrap();
    let key = spec.cache_key().unwrap();

    // Server A computes the job and records it in its on-disk store.
    let first_result = {
        let (handle, addr) = boot(1, Some(&journal));
        let (status, response) = post(&addr, "/v1/experiments", &body);
        assert_eq!(status, 202, "{response}");
        let ack: Value = serde_json::from_str(&response).unwrap();
        let Value::U64(job_id) = ack["job_id"] else {
            panic!("no job id in {response}");
        };
        let deadline = Instant::now() + Duration::from_secs(60);
        let result = loop {
            let (status, job) = get(&addr, &format!("/v1/jobs/{job_id}"));
            assert_eq!(status, 200);
            match &job["status"] {
                Value::String(s) if s == "done" => {
                    break serde_json::to_string(&job["result"]).unwrap()
                }
                Value::String(s) if s == "failed" => panic!("job failed: {job:?}"),
                _ => {
                    assert!(Instant::now() < deadline, "job timed out");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        };
        handle.shutdown();
        result
    };

    // The journal on disk holds exactly that completion, checksummed.
    let replayed = ahn_serve::journal::replay(&journal).expect("replay journal");
    assert_eq!(replayed.discarded, 0);
    assert_eq!(replayed.records.len(), 1);
    assert_eq!(replayed.records[0].key, key);
    assert_eq!(replayed.records[0].result, first_result);

    // Server B (same journal, zero compute anywhere) answers the same
    // submission inline from the replayed cache — byte-identical.
    let (handle, addr) = boot(0, Some(&journal));
    let (status, response) = post(&addr, "/v1/experiments", &body);
    assert_eq!(
        status, 200,
        "replayed journal must warm the cache: {response}"
    );
    let hit: Value = serde_json::from_str(&response).unwrap();
    assert_eq!(hit["cached"], Value::Bool(true));
    assert_eq!(
        serde_json::to_string(&hit["result"]).unwrap(),
        first_result,
        "replayed result must be bit-identical"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&journal);
}
