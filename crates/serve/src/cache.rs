//! LRU result cache keyed by the canonical config hash.
//!
//! Every experiment is a pure function of its submitted specification
//! (tests/determinism.rs), so a finished result can be replayed for any
//! structurally identical submission. Keys are
//! [`ahn_core::config::canonical_hash`] values of the resolved job
//! specification; entries are the already-serialized result JSON shared
//! as `Arc<str>` so a cache hit costs one clone of a pointer.
//!
//! The implementation is a plain `HashMap` plus a recency `Vec` (most
//! recently used last). Touch and insert are O(len) in the worst case —
//! irrelevant at result-cache sizes (hundreds of entries, each worth
//! seconds-to-hours of compute) and in exchange the structure is
//! obviously correct and dependency-free.

use std::collections::HashMap;
use std::sync::Arc;

/// A bounded least-recently-used map from config hash to result JSON.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    entries: HashMap<u64, Arc<str>>,
    /// Keys ordered least → most recently used.
    recency: Vec<u64>,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` results. A zero
    /// capacity disables caching (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            entries: HashMap::with_capacity(capacity.min(1024)),
            recency: Vec::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<str>> {
        let value = self.entries.get(&key)?.clone();
        self.touch(key);
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry when full.
    pub fn put(&mut self, key: u64, value: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.insert(key, value).is_some() {
            self.touch(key);
            return;
        }
        if self.entries.len() > self.capacity {
            let evicted = self.recency.remove(0);
            self.entries.remove(&evicted);
        }
        self.recency.push(key);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Moves `key` to the most-recently-used position.
    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.recency.iter().position(|&k| k == key) {
            self.recency.remove(pos);
            self.recency.push(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.get(1).is_none());
        c.put(1, v("one"));
        assert_eq!(c.get(1).as_deref(), Some("one"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put(1, v("one"));
        c.put(2, v("two"));
        // Touch 1 so 2 is the LRU entry.
        assert!(c.get(1).is_some());
        c.put(3, v("three"));
        assert!(c.get(2).is_none(), "2 was least recently used");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut c = LruCache::new(2);
        c.put(1, v("one"));
        c.put(2, v("two"));
        c.put(1, v("one again"));
        assert_eq!(c.len(), 2);
        c.put(3, v("three"));
        // 2 was LRU after 1's refresh.
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1).as_deref(), Some("one again"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put(1, v("one"));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }
}
