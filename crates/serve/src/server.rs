//! The HTTP job server: routing, submission flow, worker wiring,
//! graceful shutdown.
//!
//! ```text
//! POST /v1/experiments   submit a JobSpec; cache hit -> result inline,
//!                        miss -> 202 + job id (503 when the queue is full)
//! POST /v1/sweeps        submit a SweepGrid; expands to one job per
//!                        cell, each cached/coalesced/queued exactly
//!                        like an equivalent /v1/experiments submission
//! POST /v1/calibrations  submit a CalibrationGrid (reconstruction
//!                        search); expands to one job per candidate x
//!                        case x seed-block cell through the same
//!                        cache/coalesce/enqueue flow
//! GET  /v1/jobs/{id}     poll a job; done -> result inline
//! GET  /v1/presets       ready-to-POST bodies for fig4/table5/ipdrp
//! GET  /v1/scenarios     the adversary-zoo registry (names usable on
//!                        a sweep grid's scenario axis)
//! GET  /healthz          liveness probe (200 while the process serves)
//! GET  /readyz           readiness probe: 200 while accepting work,
//!                        503 once draining (load balancers stop
//!                        routing; liveness stays green)
//! GET  /metrics          counters: requests, cache hit rate, queue
//!                        depth (current + peak), job compute seconds,
//!                        games/s, hardening (timeouts/breaker/drain)
//! POST /v1/work/claim    lease one queued cell to an external worker
//!                        (empty queue -> {"status":"empty"})
//! POST /v1/work/complete deliver a leased cell's result; duplicates of
//!                        an already-finished job are discarded
//! POST /v1/shutdown      graceful drain: readiness flips to 503, new
//!                        submissions answer 503, claims answer empty;
//!                        queued and leased cells get up to `drain_ms`
//!                        to finish (completions are still accepted and
//!                        journaled), then the node exits
//! ```
//!
//! Connections get one OS thread each (keep-alive, so a load generator
//! with N connections costs N threads); experiment compute runs on the
//! bounded worker pool of [`crate::jobs`], never on connection threads.
//! Every connection read runs under the [`crate::http::Deadlines`] of
//! the config — a slowloris client is evicted with 408, an idle
//! keep-alive connection is closed silently, and neither can pin its
//! thread past the deadline.

use crate::cache::LruCache;
use crate::http::{read_request_deadlined, write_response, Deadlines, ReadOutcome, Request};
use crate::jobs::{run_job, JobStatus, JobStore, JournalStore, MemStore, QueuedJob};
use crate::metrics::Metrics;
use crate::protocol::{
    presets, ClaimRequest, JobSpec, SubmitAck, WorkCompletion, WorkGrant, DEFAULT_LEASE_MS,
    MAX_LEASE_MS,
};
use ahn_obs::{trace_id_of_key, TraceEvent, TraceLog};
use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Most cells one `POST /v1/sweeps` or `POST /v1/calibrations`
/// submission may expand to. Keeps a small hostile body from wedging
/// the connection thread with millions of cache lookups and an
/// unbounded response.
pub const MAX_SWEEP_CELLS: usize = 1024;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7172` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads executing experiment jobs. `0` is legal and means
    /// pull-only: every job waits for an external worker to claim it
    /// via `POST /v1/work/claim`.
    pub workers: usize,
    /// Result-cache capacity (finished results, LRU-evicted).
    pub cache_cap: usize,
    /// Waiting-job capacity; a full queue answers 503.
    pub queue_cap: usize,
    /// Path of the on-disk completion journal. `None` keeps everything
    /// in memory; `Some(path)` switches to the [`JournalStore`] backend:
    /// every completion is appended durably and replayed into the
    /// result cache on the next boot, so a restarted node resumes
    /// without recomputing finished cells.
    pub journal: Option<String>,
    /// Total budget for reading one request (headers + body) once its
    /// request line arrived, milliseconds; a client that drips bytes
    /// slower is evicted with 408. `0` disables the deadline.
    pub read_timeout_ms: u64,
    /// Longest a keep-alive connection may sit idle between requests,
    /// milliseconds; expiry closes the connection silently. `0`
    /// disables the deadline.
    pub idle_timeout_ms: u64,
    /// Socket write timeout per response write, milliseconds; a client
    /// that stops reading its response is disconnected. `0` disables
    /// the deadline.
    pub write_timeout_ms: u64,
    /// Drain budget of a graceful shutdown, milliseconds: how long the
    /// node waits for queued, leased and in-flight cells to settle
    /// before exiting anyway. `0` exits immediately (the
    /// pre-hardening behavior).
    pub drain_ms: u64,
    /// Path of the structured trace log. `None` (the default) emits
    /// nothing; `Some(path)` appends one checksummed JSON line per span
    /// event (submit/enqueue/lease/complete/…) so a cell's lifecycle can
    /// be joined across nodes with `ahn-exp trace`.
    pub trace: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7172".into(),
            workers: 2,
            cache_cap: 128,
            queue_cap: 64,
            journal: None,
            read_timeout_ms: 10_000,
            idle_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            drain_ms: 5_000,
            trace: None,
        }
    }
}

/// One finished-or-pending job in the table.
#[derive(Debug, Clone)]
struct JobRecord {
    status: JobStatus,
    result: Option<Arc<str>>,
    error: Option<String>,
}

/// Mutable server state behind one lock (cache, job table, in-flight
/// dedup map). One mutex keeps the lock ordering trivially correct; all
/// critical sections are bookkeeping-sized.
struct State {
    cache: LruCache,
    jobs: HashMap<u64, JobRecord>,
    /// cache key -> job id, for submissions while an identical job is
    /// already queued or running (request coalescing).
    inflight: HashMap<u64, u64>,
    /// Finished job ids, oldest first, for table pruning.
    finished: VecDeque<u64>,
    /// Finished jobs kept for polling before pruning.
    retain_finished: usize,
}

struct Shared {
    config: ServerConfig,
    local_addr: SocketAddr,
    metrics: Metrics,
    state: Mutex<State>,
    store: Arc<dyn JobStore>,
    next_job_id: AtomicU64,
    running: AtomicBool,
    /// Set the moment a shutdown is requested: readiness flips to 503,
    /// submissions bounce, claims answer empty. `running` only follows
    /// once the drain budget is spent or the work is settled.
    draining: AtomicBool,
    /// In-process worker threads currently inside `run_job` — the
    /// third kind of outstanding work (besides queued and leased) a
    /// drain must wait on.
    busy_jobs: AtomicU64,
    /// Structured trace log, when `--trace` is configured.
    trace: Option<TraceLog>,
    /// lease id → grant time, for the `claim_rtt_us` histogram (grant →
    /// completion accepted). Entries whose completion never arrives are
    /// pruned once older than [`MAX_LEASE_MS`].
    lease_starts: Mutex<HashMap<u64, Instant>>,
}

impl Shared {
    /// Appends a span event to the trace log, if one is configured.
    /// Never called under the state lock (trace emission does file
    /// I/O).
    fn emit(&self, event: TraceEvent) {
        if let Some(trace) = &self.trace {
            trace.emit(event);
        }
    }
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`] or POST `/v1/shutdown`.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Requests a graceful drain-then-stop and waits for workers and
    /// the accept loop to exit. Outstanding work (queued, leased,
    /// in-flight) gets up to `drain_ms` to settle; readiness answers
    /// 503 and new work is refused throughout.
    pub fn shutdown(self) {
        initiate_shutdown(&self.shared);
        self.join();
    }

    /// Waits until the server stops (via `/v1/shutdown` or
    /// [`ServerHandle::shutdown`]).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// Binds the listener, starts the worker pool and the accept loop, and
/// returns immediately.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    // Surface the silent AHN_THREADS cap: each worker's experiment
    // fans out through the rayon shim, so the effective per-experiment
    // thread count is a real capacity parameter.
    ahn_core::threads::log_once("serve");
    let workers = config.workers;
    let mut cache = LruCache::new(config.cache_cap);
    let store: Arc<dyn JobStore> = match &config.journal {
        None => Arc::new(MemStore::new(config.queue_cap)),
        Some(path) => {
            let journal = JournalStore::open(config.queue_cap, std::path::Path::new(path))?;
            // Checkpoint/resume: completions recorded by the previous
            // incarnation become cache hits, so resubmitted cells are
            // answered without recomputation.
            for record in journal.recovered() {
                cache.put(record.key, Arc::from(record.result.as_str()));
            }
            Arc::new(journal)
        }
    };
    // The trace node name carries the bound address so logs from several
    // serve incarnations (e.g. before/after a chaos restart) stay
    // distinguishable after joining.
    let trace = match &config.trace {
        None => None,
        Some(path) => Some(TraceLog::open(
            std::path::Path::new(path),
            &format!("serve:{local_addr}"),
        )?),
    };
    let shared = Arc::new(Shared {
        store,
        state: Mutex::new(State {
            cache,
            jobs: HashMap::new(),
            inflight: HashMap::new(),
            finished: VecDeque::new(),
            retain_finished: (4 * config.cache_cap).max(256),
        }),
        config,
        local_addr,
        metrics: Metrics::default(),
        next_job_id: AtomicU64::new(1),
        running: AtomicBool::new(true),
        draining: AtomicBool::new(false),
        busy_jobs: AtomicU64::new(0),
        trace,
        lease_starts: Mutex::new(HashMap::new()),
    });

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ahn-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("ahn-serve-accept".into())
        .spawn(move || {
            accept_loop(&accept_shared, listener);
            // The accept loop owns the workers' lifetime: once it stops
            // accepting, close the queue (idempotent) and join them.
            accept_shared.store.close();
            for handle in worker_handles {
                let _ = handle.join();
            }
        })
        .expect("spawn accept thread");

    Ok(ServerHandle { shared, accept })
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if !shared.running.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("ahn-serve-conn".into())
            .spawn(move || handle_connection(&conn_shared, stream));
    }
}

/// Graceful drain, then stop. The first caller flips `draining` (so
/// readiness answers 503, submissions bounce and claims answer empty),
/// waits up to `drain_ms` for outstanding work — queued cells, leased
/// cells, jobs inside in-process workers — to settle (completions keep
/// being accepted and journaled throughout), then stops the accept
/// loop, poking it with a throwaway connection so it observes the flag.
/// Leases still outstanding at the deadline are abandoned safely: their
/// cells were journaled if finished, and requeue on resubmission
/// otherwise.
fn initiate_shutdown(shared: &Shared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return; // another caller is already draining
    }
    let started = Instant::now();
    let budget = Duration::from_millis(shared.config.drain_ms);
    loop {
        // The lazy lease sweep keeps running during the drain so a cell
        // abandoned by a crashed worker still requeues (and can be
        // picked up by in-process workers) instead of pinning the wait.
        let requeued = shared.store.sweep_expired();
        Metrics::add(&shared.metrics.lease_requeues, requeued as u64);
        let outstanding =
            shared.store.outstanding() + shared.busy_jobs.load(Ordering::SeqCst) as usize;
        Metrics::set(
            &shared.metrics.drain_nanos,
            started.elapsed().as_nanos() as u64,
        );
        if outstanding == 0 || started.elapsed() >= budget {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    shared.running.store(false, Ordering::SeqCst);
    shared.store.close();
    let _ = TcpStream::connect(shared.local_addr);
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let millis = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    let deadlines = Deadlines {
        idle: millis(shared.config.idle_timeout_ms),
        request: millis(shared.config.read_timeout_ms),
    };
    if stream
        .set_write_timeout(millis(shared.config.write_timeout_ms))
        .is_err()
    {
        return;
    }
    let mut stream = stream;
    let mut reader = BufReader::new(read_half);
    loop {
        match read_request_deadlined(&mut reader, &deadlines) {
            Ok(ReadOutcome::Request(req)) => {
                Metrics::bump(&shared.metrics.http_requests);
                let started = Instant::now();
                let (status, body, shutdown) = route(shared, &req);
                shared
                    .metrics
                    .request_histogram(&req.path)
                    .record(started.elapsed().as_micros() as u64);
                let write_ok = write_response(&mut stream, status, &body, req.close).is_ok();
                if shutdown {
                    initiate_shutdown(shared);
                }
                if !write_ok || req.close || shutdown {
                    break;
                }
            }
            Ok(ReadOutcome::Malformed(reason)) => {
                Metrics::bump(&shared.metrics.http_requests);
                let _ = write_response(&mut stream, 400, &error_body(&reason), true);
                break;
            }
            Ok(ReadOutcome::TimedOut) => {
                // A started-but-stalled request: evict loudly so the
                // slowloris shows up in metrics, then hang up.
                Metrics::bump(&shared.metrics.requests_timed_out);
                let _ = write_response(&mut stream, 408, &error_body("request deadline"), true);
                break;
            }
            Ok(ReadOutcome::Closed) | Err(_) => break,
        }
    }
}

/// Dispatches one request; returns `(status, body, initiate_shutdown)`.
fn route(shared: &Arc<Shared>, req: &Request) -> (u16, String, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".into(), false),
        ("GET", "/readyz") => {
            // Readiness, distinct from liveness: a draining node is
            // alive (finishing work, accepting completions) but must
            // not receive new traffic.
            if shared.draining.load(Ordering::SeqCst) {
                (503, "{\"status\":\"draining\"}".into(), false)
            } else {
                (200, "{\"status\":\"ready\"}".into(), false)
            }
        }
        ("GET", "/metrics") => {
            // A metrics scrape doubles as a lazy lease sweep: cells
            // abandoned by crashed workers are requeued here (and on
            // every claim/complete), never by a background thread — an
            // idle node does zero work between requests.
            let requeued = shared.store.sweep_expired();
            Metrics::add(&shared.metrics.lease_requeues, requeued as u64);
            let (queue_depth, cached) = {
                let state = shared.state.lock().expect("state lock");
                (shared.store.depth(), state.cache.len())
            };
            let snapshot = shared
                .metrics
                .snapshot(queue_depth, cached, shared.config.workers);
            match serde_json::to_string(&snapshot) {
                Ok(body) => (200, body, false),
                Err(e) => (500, error_body(&e.to_string()), false),
            }
        }
        ("GET", "/v1/presets") => match serde_json::to_string(&presets()) {
            Ok(body) => (200, body, false),
            Err(e) => (500, error_body(&e.to_string()), false),
        },
        // The adversary-zoo registry: pure data straight from
        // `ahn_core::scenarios`, so clients can enumerate the scenario
        // axis they may put in a `/v1/sweeps` grid.
        ("GET", "/v1/scenarios") => match serde_json::to_string(&ahn_core::builtin_scenarios()) {
            Ok(body) => (200, body, false),
            Err(e) => (500, error_body(&e.to_string()), false),
        },
        // A draining node takes no new work: submissions answer 503 so
        // callers retry elsewhere (or later), and claims answer empty
        // so pull workers idle out instead of erroring. Completions for
        // work already leased keep landing below.
        ("POST", "/v1/experiments" | "/v1/sweeps" | "/v1/calibrations")
            if shared.draining.load(Ordering::SeqCst) =>
        {
            (
                503,
                error_body("server is draining, no new submissions"),
                false,
            )
        }
        ("POST", "/v1/work/claim") if shared.draining.load(Ordering::SeqCst) => {
            Metrics::bump(&shared.metrics.work_claim_empty);
            (
                200,
                "{\"status\":\"empty\",\"reason\":\"draining\"}".into(),
                false,
            )
        }
        ("POST", "/v1/experiments") => submit(shared, &req.body),
        ("POST", "/v1/sweeps") => submit_sweep(shared, &req.body),
        ("POST", "/v1/calibrations") => submit_calibration(shared, &req.body),
        ("POST", "/v1/work/claim") => work_claim(shared, &req.body),
        ("POST", "/v1/work/complete") => work_complete(shared, &req.body),
        ("GET", path) if path.starts_with("/v1/jobs/") => job_status(shared, path),
        ("POST", "/v1/shutdown") => (200, "{\"status\":\"shutting-down\"}".into(), true),
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/v1/presets" | "/v1/scenarios"
            | "/v1/experiments" | "/v1/sweeps" | "/v1/calibrations" | "/v1/work/claim"
            | "/v1/work/complete" | "/v1/shutdown",
        ) => (405, error_body("method not allowed"), false),
        (_, path) if path.starts_with("/v1/jobs/") => {
            (405, error_body("method not allowed"), false)
        }
        _ => (404, error_body("no such route"), false),
    }
}

/// How one cache/coalesce/enqueue attempt ended — shared by the
/// single-experiment and sweep submission routes.
enum SubmitOutcome {
    /// The result was already cached; the JSON is ready to embed.
    Cached(Arc<str>),
    /// A job covers this spec (freshly queued, or an identical
    /// in-flight job the caller was attached to).
    Job { id: u64, status: JobStatus },
    /// The queue is full; nothing was recorded.
    QueueFull,
}

/// Runs one resolved, validated spec through the cache lookup →
/// coalesce → enqueue flow, bumping the submission metrics and emitting
/// the cell's root trace spans (submit/enqueue/coalesce).
fn submit_spec(shared: &Arc<Shared>, spec: JobSpec, key: u64) -> SubmitOutcome {
    /// Which path the submission took, remembered across the lock scope
    /// so trace emission (file I/O) happens after the lock is released.
    enum Flow {
        Hit,
        Coalesced(u64),
        Enqueued(u64),
        Rejected,
    }
    let (outcome, flow) = {
        let mut state = shared.state.lock().expect("state lock");
        Metrics::bump(&shared.metrics.submissions);

        if let Some(result) = state.cache.get(key) {
            Metrics::bump(&shared.metrics.cache_hits);
            (SubmitOutcome::Cached(result), Flow::Hit)
        } else if let Some(&job_id) = state.inflight.get(&key) {
            // An identical job is already queued or running: attach the
            // caller to it instead of recomputing.
            Metrics::bump(&shared.metrics.coalesced);
            let status = state
                .jobs
                .get(&job_id)
                .map(|r| r.status)
                .unwrap_or(JobStatus::Queued);
            (
                SubmitOutcome::Job { id: job_id, status },
                Flow::Coalesced(job_id),
            )
        } else {
            Metrics::bump(&shared.metrics.cache_misses);
            let id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
            state.jobs.insert(
                id,
                JobRecord {
                    status: JobStatus::Queued,
                    result: None,
                    error: None,
                },
            );
            state.inflight.insert(key, id);
            // Enqueue while holding the state lock so a worker cannot
            // finish the job before its record and inflight entry exist.
            let queued = QueuedJob {
                id,
                key,
                spec,
                enqueued_at: Instant::now(),
            };
            if shared.store.try_push(queued).is_err() {
                state.jobs.remove(&id);
                state.inflight.remove(&key);
                Metrics::bump(&shared.metrics.rejected_queue_full);
                (SubmitOutcome::QueueFull, Flow::Rejected)
            } else {
                Metrics::raise(
                    &shared.metrics.queue_depth_peak,
                    shared.store.depth() as u64,
                );
                (
                    SubmitOutcome::Job {
                        id,
                        status: JobStatus::Queued,
                    },
                    Flow::Enqueued(id),
                )
            }
        }
    };
    if shared.trace.is_some() {
        let tid = trace_id_of_key(key);
        match flow {
            Flow::Hit => shared.emit(
                TraceEvent::new(tid, "submit")
                    .key(key)
                    .outcome(true)
                    .detail("cache_hit".into()),
            ),
            Flow::Coalesced(id) => shared.emit(TraceEvent::new(tid, "coalesce").key(key).job(id)),
            Flow::Enqueued(id) => {
                shared.emit(TraceEvent::new(tid, "submit").key(key).job(id));
                shared.emit(TraceEvent::new(tid, "enqueue").key(key).job(id));
            }
            Flow::Rejected => shared.emit(
                TraceEvent::new(tid, "submit")
                    .key(key)
                    .outcome(false)
                    .detail("queue_full".into()),
            ),
        }
    }
    outcome
}

/// The `POST /v1/experiments` flow: parse, resolve, validate, hash,
/// then the shared [`submit_spec`] flow.
fn submit(shared: &Arc<Shared>, body: &[u8]) -> (u16, String, bool) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8"), false),
    };
    let spec: JobSpec = match serde_json::from_str(text) {
        Ok(s) => s,
        Err(e) => {
            return (
                400,
                error_body(&format!("cannot parse JobSpec: {e}")),
                false,
            )
        }
    };
    let spec = match spec.resolve() {
        Ok(s) => s,
        Err(e) => return (400, error_body(&e), false),
    };
    if let Err(e) = spec.validate() {
        return (400, error_body(&e), false);
    }
    let key = match spec.cache_key() {
        Ok(k) => k,
        Err(e) => return (500, error_body(&e), false),
    };

    match submit_spec(shared, spec, key) {
        // Format outside the critical section: the response embeds the
        // whole result JSON, and an O(result-size) copy under the state
        // lock would serialize the cache-hit hot path.
        SubmitOutcome::Cached(result) => (
            200,
            format!("{{\"job_id\":null,\"status\":\"done\",\"cached\":true,\"result\":{result}}}"),
            false,
        ),
        SubmitOutcome::Job { id, status } => {
            let ack = SubmitAck {
                job_id: id,
                status: status.as_str().into(),
                cached: false,
            };
            (
                202,
                serde_json::to_string(&ack).unwrap_or_else(|_| "{}".into()),
                false,
            )
        }
        SubmitOutcome::QueueFull => (503, error_body("job queue is full, retry later"), false),
    }
}

/// Validates, hashes and submits one expanded grid cell, formatting its
/// response entry (shared by the sweep and calibration routes); errors
/// carry the ready-to-send `(status, body)`.
fn submit_cell_entry(
    shared: &Arc<Shared>,
    spec: JobSpec,
    coords: &str,
) -> Result<String, (u16, String)> {
    if let Err(e) = spec.validate() {
        return Err((400, error_body(&e)));
    }
    let key = spec.cache_key().map_err(|e| (500, error_body(&e)))?;
    Ok(match submit_spec(shared, spec, key) {
        SubmitOutcome::Cached(result) => format!(
            "{{\"spec\":{coords},\"job_id\":null,\"status\":\"done\",\
             \"cached\":true,\"result\":{result}}}"
        ),
        SubmitOutcome::Job { id, status } => format!(
            "{{\"spec\":{coords},\"job_id\":{id},\"status\":\"{}\",\"cached\":false}}",
            status.as_str()
        ),
        SubmitOutcome::QueueFull => format!(
            "{{\"spec\":{coords},\"job_id\":null,\"status\":\"rejected\",\
             \"cached\":false}}"
        ),
    })
}

/// The `POST /v1/sweeps` flow: parse a [`ahn_core::sweeps::SweepGrid`],
/// expand it to one single-case experiment job per cell, and run every
/// cell through the same cache/coalesce/enqueue flow as
/// `POST /v1/experiments`. Because a cell's job spec is byte-identical
/// to the equivalent direct submission, cells share the result cache
/// with single experiments (and with every other sweep that contains
/// them).
///
/// The response is one entry per cell, in grid order: cached cells
/// carry their result inline, fresh/coalesced cells a `job_id` to poll
/// at `GET /v1/jobs/{id}`, and cells bounced by a full queue the status
/// `"rejected"` (the caller retries just those).
fn submit_sweep(shared: &Arc<Shared>, body: &[u8]) -> (u16, String, bool) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8"), false),
    };
    let grid: ahn_core::sweeps::SweepGrid = match serde_json::from_str(text) {
        Ok(g) => g,
        Err(e) => {
            return (
                400,
                error_body(&format!("cannot parse SweepGrid: {e}")),
                false,
            )
        }
    };
    // Cap the expansion before anything O(cells) runs (validation
    // included): a kilobyte of repeated axis values would otherwise
    // expand to millions of cells of server-side work and an unbounded
    // response body.
    if grid.cell_count() > MAX_SWEEP_CELLS {
        return (
            400,
            error_body(&format!(
                "sweep expands to {} cells, above the server cap of {MAX_SWEEP_CELLS}; \
                 split the grid into smaller submissions",
                grid.cell_count()
            )),
            false,
        );
    }
    if let Err(e) = grid.validate() {
        return (400, error_body(&e), false);
    }

    let mut cells = Vec::with_capacity(grid.cell_count());
    for cell_spec in grid.cell_specs() {
        let (config, case) = match grid.resolve(&cell_spec) {
            Ok(resolved) => resolved,
            Err(e) => return (400, error_body(&e), false),
        };
        let spec = JobSpec::Experiment {
            config,
            cases: vec![case],
        };
        let spec_json = serde_json::to_string(&cell_spec).unwrap_or_else(|_| "{}".into());
        match submit_cell_entry(shared, spec, &spec_json) {
            Ok(entry) => cells.push(entry),
            Err((status, body)) => return (status, body, false),
        }
    }
    let body = format!("{{\"cells\":[{}]}}", cells.join(","));
    (200, body, false)
}

/// The `POST /v1/calibrations` flow: parse an
/// [`ahn_core::calibrate::CalibrationGrid`], expand it to one
/// single-case experiment job per candidate × case × seed-block cell,
/// and run every cell through the same cache/coalesce/enqueue flow as
/// `POST /v1/experiments`. A calibration cell resolves to exactly the
/// `(config, case)` pair the equivalent direct submission or sweep
/// would use, so repeated searches — and searches overlapping a sweep —
/// hit the result cache per cell.
///
/// The response lists one entry per cell in deterministic order
/// (candidates outermost, then the candidate's sweep-cell order):
/// cached cells carry their result inline, fresh/coalesced cells a
/// `job_id`, queue-bounced cells the status `"rejected"`.
fn submit_calibration(shared: &Arc<Shared>, body: &[u8]) -> (u16, String, bool) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8"), false),
    };
    let grid: ahn_core::calibrate::CalibrationGrid = match serde_json::from_str(text) {
        Ok(g) => g,
        Err(e) => {
            return (
                400,
                error_body(&format!("cannot parse CalibrationGrid: {e}")),
                false,
            )
        }
    };
    // Cap the expansion before anything O(cells) runs, like /v1/sweeps.
    if grid.cell_count() > MAX_SWEEP_CELLS {
        return (
            400,
            error_body(&format!(
                "calibration expands to {} cells, above the server cap of {MAX_SWEEP_CELLS}; \
                 lower max_candidates or split the search",
                grid.cell_count()
            )),
            false,
        );
    }
    if let Err(e) = grid.validate() {
        return (400, error_body(&e), false);
    }

    let mut cells = Vec::with_capacity(grid.cell_count());
    for candidate in grid.candidates() {
        let sweep = match grid.sweep_for(&candidate) {
            Ok(s) => s,
            Err(e) => return (400, error_body(&e), false),
        };
        for cell_spec in sweep.cell_specs() {
            let (config, case) = match sweep.resolve(&cell_spec) {
                Ok(resolved) => resolved,
                Err(e) => return (400, error_body(&e), false),
            };
            let spec = JobSpec::Experiment {
                config,
                cases: vec![case],
            };
            let coords = format!(
                "{{\"candidate\":{},\"case_no\":{},\"seed_block\":{}}}",
                candidate.id, cell_spec.case_no, cell_spec.seed_block
            );
            match submit_cell_entry(shared, spec, &coords) {
                Ok(entry) => cells.push(entry),
                Err((status, body)) => return (status, body, false),
            }
        }
    }
    let body = format!("{{\"cells\":[{}]}}", cells.join(","));
    (200, body, false)
}

/// The `GET /v1/jobs/{id}` flow.
fn job_status(shared: &Arc<Shared>, path: &str) -> (u16, String, bool) {
    let id_text = &path["/v1/jobs/".len()..];
    let Ok(id) = id_text.parse::<u64>() else {
        return (400, error_body(&format!("bad job id {id_text:?}")), false);
    };
    // Copy the record's cheap parts (the result is an Arc) and format
    // outside the critical section.
    let record = {
        let state = shared.state.lock().expect("state lock");
        match state.jobs.get(&id) {
            Some(record) => record.clone(),
            None => {
                return (
                    404,
                    error_body("no such job (pruned or never created)"),
                    false,
                )
            }
        }
    };
    let body = match record.status {
        JobStatus::Done => {
            let result = record.result.as_deref().unwrap_or("null");
            format!("{{\"job_id\":{id},\"status\":\"done\",\"result\":{result}}}")
        }
        JobStatus::Failed => {
            let error = serde_json::to_string(record.error.as_deref().unwrap_or("unknown"))
                .unwrap_or_else(|_| "\"unknown\"".into());
            format!("{{\"job_id\":{id},\"status\":\"failed\",\"error\":{error}}}")
        }
        status => format!("{{\"job_id\":{id},\"status\":\"{}\"}}", status.as_str()),
    };
    (200, body, false)
}

/// The `POST /v1/work/claim` flow: sweep expired leases (the only
/// sweep trigger besides `/v1/work/complete` and `/metrics` — request
/// driven, so an idle node never spins), then lease the front of the
/// queue to the caller. An empty queue answers `{"status":"empty"}`.
fn work_claim(shared: &Arc<Shared>, body: &[u8]) -> (u16, String, bool) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8"), false),
    };
    let request: ClaimRequest = if text.trim().is_empty() {
        ClaimRequest::default()
    } else {
        match serde_json::from_str(text) {
            Ok(r) => r,
            Err(e) => {
                return (
                    400,
                    error_body(&format!("cannot parse claim request: {e}")),
                    false,
                )
            }
        }
    };
    let lease_ms = request
        .lease_ms
        .unwrap_or(DEFAULT_LEASE_MS)
        .clamp(1, MAX_LEASE_MS);
    // Fold worker-reported breaker trips into the fleet-wide counter
    // (best-effort telemetry; deltas lost with a dropped claim are
    // re-sent with the worker's next claim).
    if let Some(trips) = request.breaker_trips {
        Metrics::add(&shared.metrics.breaker_open_total, trips);
    }
    // Same contract for backoff sleep: each claim samples the worker's
    // sleep total since its last acknowledged claim.
    if let Some(backoff_ms) = request.backoff_ms {
        shared.metrics.backoff_sleep_ms.record(backoff_ms);
    }

    let requeued = shared.store.sweep_expired();
    Metrics::add(&shared.metrics.lease_requeues, requeued as u64);

    loop {
        let Some(leased) = shared.store.claim(Duration::from_millis(lease_ms)) else {
            Metrics::bump(&shared.metrics.work_claim_empty);
            return (200, "{\"status\":\"empty\"}".into(), false);
        };
        // A requeued copy of a job can race its own late completion;
        // skip anything already settled instead of handing out a cell
        // whose result is in the cache.
        let still_pending = {
            let mut state = shared.state.lock().expect("state lock");
            match state.jobs.get_mut(&leased.job.id) {
                Some(record) if matches!(record.status, JobStatus::Queued | JobStatus::Running) => {
                    record.status = JobStatus::Running;
                    true
                }
                _ => false,
            }
        };
        if !still_pending {
            shared.store.complete_lease(leased.lease_id);
            continue;
        }
        Metrics::bump(&shared.metrics.work_claims);
        // The cell just left the queue: that ends its queue wait and
        // starts its claim round trip.
        shared
            .metrics
            .queue_wait_us
            .record(leased.job.enqueued_at.elapsed().as_micros() as u64);
        {
            let mut starts = shared.lease_starts.lock().expect("lease starts lock");
            // Completions that never arrive would leak entries; drop
            // anything older than the longest possible lease.
            if starts.len() >= 1024 {
                let horizon = Duration::from_millis(MAX_LEASE_MS);
                starts.retain(|_, at| at.elapsed() < horizon);
            }
            starts.insert(leased.lease_id, Instant::now());
        }
        let trace_id = trace_id_of_key(leased.job.key);
        shared.emit(
            TraceEvent::new(trace_id, "lease")
                .key(leased.job.key)
                .job(leased.job.id)
                .lease(leased.lease_id),
        );
        let grant = WorkGrant {
            lease_id: leased.lease_id,
            job_id: leased.job.id,
            key: leased.job.key,
            lease_ms,
            trace_id: Some(trace_id),
            spec: leased.job.spec,
        };
        return match serde_json::to_string(&grant) {
            Ok(body) => (200, body, false),
            Err(e) => (500, error_body(&e.to_string()), false),
        };
    }
}

/// The `POST /v1/work/complete` flow, mirroring the bookkeeping of
/// [`worker_loop`]: first completion wins (`{"status":"recorded"}`),
/// later deliveries for the same job — retried leases, expired leases
/// whose worker finished late — are discarded as
/// `{"status":"duplicate"}`. The completion is accepted even when the
/// lease already expired: the result is still bit-identical, only the
/// lease bookkeeping is gone.
fn work_complete(shared: &Arc<Shared>, body: &[u8]) -> (u16, String, bool) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8"), false),
    };
    let completion: WorkCompletion = match serde_json::from_str(text) {
        Ok(c) => c,
        Err(e) => {
            return (
                400,
                error_body(&format!("cannot parse completion: {e}")),
                false,
            )
        }
    };
    if completion.result.is_some() == completion.error.is_some() {
        return (
            400,
            error_body("exactly one of result and error must be set"),
            false,
        );
    }
    let requeued = shared.store.sweep_expired();
    Metrics::add(&shared.metrics.lease_requeues, requeued as u64);
    shared.store.complete_lease(completion.lease_id);

    // The completion ends the lease's round trip (grant → accepted);
    // expired leases whose start was pruned simply go unsampled.
    if let Some(granted_at) = shared
        .lease_starts
        .lock()
        .expect("lease starts lock")
        .remove(&completion.lease_id)
    {
        shared
            .metrics
            .claim_rtt_us
            .record(granted_at.elapsed().as_micros() as u64);
    }
    // Compute time is worker-measured: the server cannot see the remote
    // clock, so it trusts the self-report (telemetry, not accounting).
    if let Some(compute_us) = completion.compute_us {
        shared.metrics.job_compute_us.record(compute_us);
    }
    let trace_id = trace_id_of_key(completion.key);

    let mut state = shared.state.lock().expect("state lock");
    let status = match state.jobs.get(&completion.job_id) {
        Some(record) => record.status,
        None => {
            return (
                404,
                error_body("no such job (pruned or never created)"),
                false,
            )
        }
    };
    if matches!(status, JobStatus::Done | JobStatus::Failed) {
        Metrics::bump(&shared.metrics.work_duplicate);
        drop(state);
        shared.emit(
            TraceEvent::new(trace_id, "duplicate")
                .key(completion.key)
                .job(completion.job_id)
                .lease(completion.lease_id),
        );
        return (200, "{\"status\":\"duplicate\"}".into(), false);
    }
    // Idempotency cross-check: while a job is pending its cache key is
    // in the inflight map, so a completion whose key disagrees with the
    // server's record is a client bug, not a mergeable result.
    if state.inflight.get(&completion.key) != Some(&completion.job_id) {
        return (
            400,
            error_body("completion key does not match the job's spec hash"),
            false,
        );
    }

    let mut recorded: Option<Arc<str>> = None;
    match &completion.result {
        Some(json) => {
            let result: Arc<str> = Arc::from(json.as_str());
            state.cache.put(completion.key, Arc::clone(&result));
            if let Some(record) = state.jobs.get_mut(&completion.job_id) {
                record.status = JobStatus::Done;
                record.result = Some(Arc::clone(&result));
            }
            recorded = Some(result);
            Metrics::bump(&shared.metrics.jobs_completed);
            Metrics::bump(&shared.metrics.work_completed);
            // Externally computed cells count here, *not* in
            // `games_simulated`: that gauge stays honest local compute
            // (this node never simulated these games).
            Metrics::bump(&shared.metrics.cells_completed_external);
        }
        None => {
            if let Some(record) = state.jobs.get_mut(&completion.job_id) {
                record.status = JobStatus::Failed;
                record.error = completion.error.clone();
            }
            Metrics::bump(&shared.metrics.jobs_failed);
        }
    }
    state.inflight.remove(&completion.key);
    state.finished.push_back(completion.job_id);
    while state.finished.len() > state.retain_finished {
        if let Some(old) = state.finished.pop_front() {
            state.jobs.remove(&old);
        }
    }
    drop(state);
    // Journal outside the state lock: durability is per-store (no-op in
    // memory, one flushed line on disk) and must not serialize requests.
    if let Some(result) = recorded {
        shared.store.record_completion(completion.key, &result);
    }
    let mut complete = TraceEvent::new(trace_id, "complete")
        .key(completion.key)
        .job(completion.job_id)
        .lease(completion.lease_id)
        .outcome(completion.result.is_some());
    if let Some(compute_us) = completion.compute_us {
        complete = complete.dur_us(compute_us);
    }
    shared.emit(complete);
    (200, "{\"status\":\"recorded\"}".into(), false)
}

/// Worker thread body: drain the queue until it closes.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.store.pop_blocking() {
        // A requeued copy of a job an external worker finished late is
        // already settled; skip it rather than recompute.
        let still_pending = {
            let mut state = shared.state.lock().expect("state lock");
            match state.jobs.get_mut(&job.id) {
                Some(record) if matches!(record.status, JobStatus::Queued | JobStatus::Running) => {
                    record.status = JobStatus::Running;
                    true
                }
                _ => false,
            }
        };
        if !still_pending {
            continue;
        }

        // Visible to the drain loop: a job inside `run_job` is neither
        // queued nor leased, but a drain must still wait for it.
        shared.busy_jobs.fetch_add(1, Ordering::SeqCst);
        shared
            .metrics
            .queue_wait_us
            .record(job.enqueued_at.elapsed().as_micros() as u64);
        let trace_id = trace_id_of_key(job.key);
        let started = Instant::now();
        let outcome = run_job(&job.spec);
        let elapsed_nanos = started.elapsed().as_nanos() as u64;
        shared.metrics.job_compute_us.record(elapsed_nanos / 1_000);
        shared.emit(
            TraceEvent::new(trace_id, "compute")
                .key(job.key)
                .job(job.id)
                .dur_us(elapsed_nanos / 1_000)
                .outcome(outcome.is_ok()),
        );

        if let Ok(json) = &outcome {
            // Durable before visible: journal the completion (no-op in
            // memory) outside the state lock.
            shared.store.record_completion(job.key, json);
        }
        let mut state = shared.state.lock().expect("state lock");
        match outcome {
            Ok(json) => {
                let result: Arc<str> = Arc::from(json);
                state.cache.put(job.key, Arc::clone(&result));
                if let Some(record) = state.jobs.get_mut(&job.id) {
                    record.status = JobStatus::Done;
                    record.result = Some(result);
                }
                Metrics::bump(&shared.metrics.jobs_completed);
                Metrics::add(&shared.metrics.games_simulated, job.spec.games());
                Metrics::add(&shared.metrics.busy_nanos, elapsed_nanos);
            }
            Err(error) => {
                if let Some(record) = state.jobs.get_mut(&job.id) {
                    record.status = JobStatus::Failed;
                    record.error = Some(error);
                }
                Metrics::bump(&shared.metrics.jobs_failed);
            }
        }
        let succeeded = state
            .jobs
            .get(&job.id)
            .map(|r| r.status == JobStatus::Done)
            .unwrap_or(false);
        state.inflight.remove(&job.key);
        state.finished.push_back(job.id);
        while state.finished.len() > state.retain_finished {
            if let Some(old) = state.finished.pop_front() {
                state.jobs.remove(&old);
            }
        }
        drop(state);
        shared.emit(
            TraceEvent::new(trace_id, "complete")
                .key(job.key)
                .job(job.id)
                .outcome(succeeded),
        );
        // Decrement only after the result is visible: the drain loop
        // must not observe zero outstanding work while a completed
        // job's bookkeeping is still in flight.
        shared.busy_jobs.fetch_sub(1, Ordering::SeqCst);
    }
}

/// `{"error": <json-escaped message>}`.
fn error_body(message: &str) -> String {
    format!(
        "{{\"error\":{}}}",
        serde_json::to_string(message).unwrap_or_else(|_| "\"error\"".into())
    )
}
