//! The JSON wire protocol of the job server.
//!
//! A submission body is an externally tagged [`JobSpec`]:
//!
//! ```json
//! {"Experiment": {"config": { ...ExperimentConfig... },
//!                 "cases":  [ ...CaseSpec... ]}}
//! {"Ipdrp":      {"config": { ...IpdrpConfig... }, "seed": 1}}
//! {"Preset":     {"name": "fig4"}}
//! ```
//!
//! `GET /v1/presets` returns ready-to-POST bodies for every preset, so a
//! client never has to author a config by hand to get started.

use ahn_core::{canonical_hash, cases::CaseSpec, config::ExperimentConfig};
use ahn_ipdrp::IpdrpConfig;
use serde::{Deserialize, Serialize};

/// One unit of server work, as submitted by a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobSpec {
    /// Run [`ahn_core::run_experiment`] for every case and return the
    /// `Vec<ExperimentResult>` in case order.
    Experiment {
        /// Experiment parameters (presets: `configs/example.json`).
        config: ExperimentConfig,
        /// Evaluation cases, each a full experiment.
        cases: Vec<CaseSpec>,
    },
    /// Run the IPDRP baseline and return its `Vec<IpdrpGeneration>`.
    Ipdrp {
        /// IPDRP parameters.
        config: IpdrpConfig,
        /// RNG seed.
        seed: u64,
    },
    /// A named server-side pipeline, expanded before queueing (see
    /// [`presets`]).
    Preset {
        /// Preset name: `fig4`, `table5` or `ipdrp`.
        name: String,
    },
}

impl JobSpec {
    /// Expands a `Preset` submission into the concrete job it names;
    /// concrete specs pass through unchanged.
    pub fn resolve(self) -> Result<JobSpec, String> {
        match self {
            JobSpec::Preset { name } => presets()
                .into_iter()
                .find(|p| p.name == name)
                .map(|p| p.body)
                .ok_or_else(|| format!("unknown preset {name:?} (try GET /v1/presets)")),
            concrete => Ok(concrete),
        }
    }

    /// Validates a resolved spec before it is hashed or queued.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            JobSpec::Experiment { config, cases } => {
                config.validate()?;
                if cases.is_empty() {
                    return Err("cases must not be empty".into());
                }
                for case in cases {
                    // Deserialization bypasses the constructors'
                    // assertions, so re-check the environment
                    // invariants here: a bad spec must become a 400,
                    // never a worker panic.
                    if case.envs.is_empty() {
                        return Err(format!("{:?} has no environments", case.name));
                    }
                    for env in &case.envs {
                        if env.size < 3 {
                            return Err(format!(
                                "{:?}: an environment of {} participants cannot route \
                                 (source, relay and destination need 3)",
                                case.name, env.size
                            ));
                        }
                        if env.csn >= env.size {
                            return Err(format!(
                                "{:?}: {} CSN cannot fit an environment of {} participants",
                                case.name, env.csn, env.size
                            ));
                        }
                    }
                    if config.population < case.required_normal() {
                        return Err(format!(
                            "population {} cannot fill {:?}, which needs {} normal players",
                            config.population,
                            case.name,
                            case.required_normal()
                        ));
                    }
                }
                Ok(())
            }
            JobSpec::Ipdrp { config, .. } => {
                if config.population < 2 || config.population % 2 != 0 {
                    return Err("ipdrp population must be even and >= 2".into());
                }
                if config.rounds == 0 || config.generations == 0 {
                    return Err("ipdrp rounds and generations must be positive".into());
                }
                Ok(())
            }
            JobSpec::Preset { .. } => Err("presets must be resolved before validation".into()),
        }
    }

    /// The result-cache key: the canonical structural hash of the
    /// resolved spec (`ahn_core::config::canonical_hash`). Structurally
    /// identical submissions — whether spelled out or named via a preset
    /// — share one cache entry.
    pub fn cache_key(&self) -> Result<u64, String> {
        canonical_hash(self)
    }

    /// Ad Hoc Network Games (or IPD games) this job will simulate, for
    /// the `/metrics` throughput gauge.
    pub fn games(&self) -> u64 {
        match self {
            JobSpec::Experiment { config, cases } => {
                let per_generation: usize = cases
                    .iter()
                    .flat_map(|c| c.envs.iter())
                    .map(|e| e.size * config.rounds * config.plays_per_env)
                    .sum();
                (config.replications * config.generations * per_generation) as u64
            }
            JobSpec::Ipdrp { config, .. } => {
                (config.generations * config.rounds * (config.population / 2)) as u64
            }
            JobSpec::Preset { .. } => 0,
        }
    }
}

/// A queued/finished job as reported by `GET /v1/jobs/{id}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobInfo {
    /// Server-assigned job id.
    pub job_id: u64,
    /// `queued`, `running`, `done` or `failed`.
    pub status: String,
}

/// A submission acknowledgement without an inline result (202 path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitAck {
    /// Job to poll at `GET /v1/jobs/{id}`.
    pub job_id: u64,
    /// `queued` — or `running`/`done`/`failed` when the submission was
    /// coalesced onto an identical in-flight job.
    pub status: String,
    /// Always false on this shape; cache hits return the result inline.
    pub cached: bool,
}

/// Default lease on a `POST /v1/work/claim` that does not name one.
pub const DEFAULT_LEASE_MS: u64 = 60_000;

/// Upper bound on any requested lease: a worker that claims a cell and
/// dies must not strand it for longer than this.
pub const MAX_LEASE_MS: u64 = 600_000;

/// Body of `POST /v1/work/claim`. An empty body is a valid claim with
/// the default lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClaimRequest {
    /// Requested lease in milliseconds, clamped to
    /// [1, [`MAX_LEASE_MS`]]; [`DEFAULT_LEASE_MS`] when omitted.
    pub lease_ms: Option<u64>,
    /// Circuit-breaker trips this worker observed since its last
    /// acknowledged claim; the server folds them into
    /// `breaker_open_total`. Best-effort telemetry (at-least-once under
    /// faults), omitted by pre-hardening workers.
    pub breaker_trips: Option<u64>,
    /// Milliseconds this worker spent in backoff sleeps since its last
    /// acknowledged claim; the server samples them into the
    /// `backoff_sleep_ms` histogram. Same best-effort contract as
    /// `breaker_trips`; omitted by pre-observability workers.
    pub backoff_ms: Option<u64>,
}

/// A granted work lease, the non-empty answer of `POST /v1/work/claim`
/// (an idle queue answers `{"status":"empty"}` instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkGrant {
    /// Lease id to quote in the completion.
    pub lease_id: u64,
    /// The job this lease executes.
    pub job_id: u64,
    /// Result-cache key of the resolved spec — must equal
    /// `spec.cache_key()`; workers verify this before computing
    /// (per-cell idempotency via `canonical_hash`).
    pub key: u64,
    /// Granted lease in milliseconds (after clamping).
    pub lease_ms: u64,
    /// Trace id of the cell's span tree (`trace_id_of_key(key)`), echoed
    /// back by tracing workers so one cell's lifecycle joins across the
    /// server's and the worker's trace logs. Omitted by pre-observability
    /// servers.
    pub trace_id: Option<u64>,
    /// The resolved spec to run.
    pub spec: JobSpec,
}

/// Body of `POST /v1/work/complete`: exactly one of `result` / `error`
/// is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkCompletion {
    /// The lease this completion settles (expired leases are accepted:
    /// the result is still valid, first completion wins).
    pub lease_id: u64,
    /// The job the lease was granted for.
    pub job_id: u64,
    /// Result-cache key the worker computed from the spec; rejected on
    /// mismatch with the server's record.
    pub key: u64,
    /// Serialized result JSON on success.
    pub result: Option<String>,
    /// Failure message when the job could not be run.
    pub error: Option<String>,
    /// Trace id echoed from the grant, for cross-node span joins.
    /// Omitted by pre-observability workers.
    pub trace_id: Option<u64>,
    /// Self-reported compute time in microseconds; the server samples
    /// it into the `job_compute_us` histogram. Omitted by
    /// pre-observability workers.
    pub compute_us: Option<u64>,
}

/// One entry of `GET /v1/presets`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetEntry {
    /// Preset name accepted by `{"Preset": {"name": ...}}`.
    pub name: String,
    /// What the pipeline reproduces.
    pub description: String,
    /// The exact body `POST /v1/experiments` accepts for this preset.
    pub body: JobSpec,
}

/// The built-in pipelines, at the bench scale of
/// `crates/bench` (real dynamics, sub-second jobs): `fig4` (a CSN-free
/// and a CSN-heavy evolution), `table5` (one three-environment case) and
/// `ipdrp` (the X3 baseline). Paper-scale runs submit an explicit
/// `Experiment` body with `ExperimentConfig::paper()` parameters.
pub fn presets() -> Vec<PresetEntry> {
    let mut config = ExperimentConfig::smoke();
    config.replications = 1;
    config.generations = 8;
    let mini =
        |name: &str, csn: &[usize]| CaseSpec::mini(name, csn, 10, ahn_net::PathMode::Shorter);
    vec![
        PresetEntry {
            name: "fig4".into(),
            description: "cooperation evolution, CSN-free and CSN-heavy (Figure 4 shape)".into(),
            body: JobSpec::Experiment {
                config: config.clone(),
                cases: vec![mini("fig4-free", &[0]), mini("fig4-heavy", &[6])],
            },
        },
        PresetEntry {
            name: "table5".into(),
            description: "per-environment cooperation over three environments (Table 5 shape)"
                .into(),
            body: JobSpec::Experiment {
                config,
                cases: vec![mini("table5", &[0, 3, 6])],
            },
        },
        PresetEntry {
            name: "ipdrp".into(),
            description: "IPDRP baseline evolution (X3)".into(),
            body: JobSpec::Ipdrp {
                config: IpdrpConfig {
                    population: 40,
                    rounds: 30,
                    generations: 8,
                    ..IpdrpConfig::default()
                },
                seed: 1,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_validate_and_hash() {
        for preset in presets() {
            let named = JobSpec::Preset {
                name: preset.name.clone(),
            };
            let resolved = named.resolve().unwrap();
            assert_eq!(resolved, preset.body, "{}", preset.name);
            resolved.validate().unwrap();
            // Preset and explicit submissions share a cache key.
            assert_eq!(
                resolved.cache_key().unwrap(),
                preset.body.cache_key().unwrap()
            );
            assert!(resolved.games() > 0);
        }
    }

    #[test]
    fn unknown_preset_is_rejected() {
        let err = JobSpec::Preset {
            name: "table99".into(),
        }
        .resolve()
        .unwrap_err();
        assert!(err.contains("unknown preset"), "{err}");
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut config = ExperimentConfig::smoke();
        config.population = 0;
        let bad = JobSpec::Experiment {
            config,
            cases: vec![CaseSpec::mini("x", &[0], 10, ahn_net::PathMode::Shorter)],
        };
        assert!(bad.validate().is_err());

        let empty = JobSpec::Experiment {
            config: ExperimentConfig::smoke(),
            cases: vec![],
        };
        assert!(empty.validate().is_err());

        // A paper case needs 50 normal players; smoke has 20.
        let starved = JobSpec::Experiment {
            config: ExperimentConfig::smoke(),
            cases: vec![CaseSpec::paper(3)],
        };
        let err = starved.validate().unwrap_err();
        assert!(err.contains("cannot fill"), "{err}");

        let odd = JobSpec::Ipdrp {
            config: IpdrpConfig {
                population: 7,
                ..IpdrpConfig::default()
            },
            seed: 0,
        };
        assert!(odd.validate().is_err());
    }

    #[test]
    fn validation_catches_broken_environments() {
        // Deserialized specs bypass the constructors' assertions; these
        // shapes must be 400s, not worker panics.
        let with_case = |case: CaseSpec| JobSpec::Experiment {
            config: ExperimentConfig::smoke(),
            cases: vec![case],
        };

        let no_envs: CaseSpec =
            serde_json::from_str("{\"name\":\"empty\",\"envs\":[],\"mode\":\"Shorter\"}").unwrap();
        let err = with_case(no_envs).validate().unwrap_err();
        assert!(err.contains("no environments"), "{err}");

        let too_small: CaseSpec = serde_json::from_str(
            "{\"name\":\"tiny\",\"envs\":[{\"size\":2,\"csn\":0}],\"mode\":\"Shorter\"}",
        )
        .unwrap();
        let err = with_case(too_small).validate().unwrap_err();
        assert!(err.contains("cannot route"), "{err}");

        let all_csn: CaseSpec = serde_json::from_str(
            "{\"name\":\"csn\",\"envs\":[{\"size\":10,\"csn\":10}],\"mode\":\"Shorter\"}",
        )
        .unwrap();
        let err = with_case(all_csn).validate().unwrap_err();
        assert!(err.contains("cannot fit"), "{err}");
    }

    #[test]
    fn cache_key_is_structural_and_seed_sensitive() {
        let body = presets()[0].body.clone();
        let json = serde_json::to_string(&body).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(body.cache_key().unwrap(), back.cache_key().unwrap());

        if let JobSpec::Experiment { mut config, cases } = body.clone() {
            config.base_seed ^= 1;
            let moved = JobSpec::Experiment { config, cases };
            assert_ne!(body.cache_key().unwrap(), moved.cache_key().unwrap());
        } else {
            panic!("fig4 preset is an experiment");
        }
    }

    #[test]
    fn work_wire_types_roundtrip() {
        // An empty claim body means "default lease".
        let claim: ClaimRequest = serde_json::from_str("{}").unwrap();
        assert_eq!(claim.lease_ms, None);
        assert_eq!(claim.breaker_trips, None);
        let claim: ClaimRequest = serde_json::from_str("{\"lease_ms\":250}").unwrap();
        assert_eq!(claim.lease_ms, Some(250));
        // The hardened worker's claim body carries trip telemetry.
        let claim: ClaimRequest =
            serde_json::from_str("{\"lease_ms\":250,\"breaker_trips\":2}").unwrap();
        assert_eq!(claim.breaker_trips, Some(2));
        assert_eq!(claim.backoff_ms, None);
        // The observability-era claim body adds backoff telemetry.
        let claim: ClaimRequest =
            serde_json::from_str("{\"lease_ms\":250,\"breaker_trips\":2,\"backoff_ms\":40}")
                .unwrap();
        assert_eq!(claim.backoff_ms, Some(40));

        let spec = presets()[0].body.clone();
        let grant = WorkGrant {
            lease_id: 3,
            job_id: 9,
            key: spec.cache_key().unwrap(),
            lease_ms: DEFAULT_LEASE_MS,
            trace_id: Some(ahn_obs::trace_id_of_key(spec.cache_key().unwrap())),
            spec,
        };
        let json = serde_json::to_string(&grant).unwrap();
        let back: WorkGrant = serde_json::from_str(&json).unwrap();
        assert_eq!(grant, back);
        assert_eq!(back.spec.cache_key().unwrap(), back.key);

        let done = WorkCompletion {
            lease_id: 3,
            job_id: 9,
            key: grant.key,
            result: Some("[{\"x\":1}]".into()),
            error: None,
            trace_id: grant.trace_id,
            compute_us: Some(1_200),
        };
        let json = serde_json::to_string(&done).unwrap();
        let back: WorkCompletion = serde_json::from_str(&json).unwrap();
        assert_eq!(done, back);
    }

    /// Grants and completions from pre-observability nodes omit the
    /// `trace_id`/`compute_us` fields; both directions must still parse
    /// so mixed-version fleets interoperate.
    #[test]
    fn pre_observability_wire_bodies_still_parse() {
        let spec_json = serde_json::to_string(&presets()[0].body).unwrap();
        let old_grant = format!(
            "{{\"lease_id\":1,\"job_id\":2,\"key\":3,\"lease_ms\":60000,\"spec\":{spec_json}}}"
        );
        let grant: WorkGrant = serde_json::from_str(&old_grant).unwrap();
        assert_eq!(grant.trace_id, None);

        let old_done = "{\"lease_id\":1,\"job_id\":2,\"key\":3,\"result\":\"[]\",\"error\":null}";
        let done: WorkCompletion = serde_json::from_str(old_done).unwrap();
        assert_eq!(done.trace_id, None);
        assert_eq!(done.compute_us, None);
    }

    #[test]
    fn games_estimate_matches_shape() {
        // 1 rep x 8 gens x (10 nodes x 30 rounds x 1 play) x 2 cases.
        let fig4 = &presets()[0].body;
        assert_eq!(fig4.games(), 8 * 10 * 30 * 2);
        // 8 gens x 30 rounds x 20 pairs.
        let ipdrp = &presets()[2].body;
        assert_eq!(ipdrp.games(), 8 * 30 * 20);
    }
}
