//! The append-only completion journal: the checkpoint/resume substrate
//! shared by the on-disk job store and the distributed coordinator.
//!
//! One record per line, each line independently verifiable:
//!
//! ```text
//! <fnv1a-64 hex checksum> <compact JSON {"key": u64, "result": string}>
//! ```
//!
//! The checksum covers the JSON payload bytes, so a torn write — a
//! process killed mid-`append`, a truncated copy — corrupts at most the
//! trailing line, and [`replay`] detects it (bad checksum, bad JSON, or
//! a missing terminator) and discards that line *and everything after
//! it* rather than guessing. Appends are flushed per record: once
//! `append` returns, the record survives the writer dying.
//!
//! Records are idempotent by construction: a key may appear many times
//! (crash-retry re-appends are legal) and replay keeps the first
//! occurrence, matching the first-completion-wins rule of the serving
//! layer.

use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// One journal record: a completed cell keyed by the canonical hash of
/// its resolved job spec, carrying the result JSON verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// The result-cache key (`JobSpec::cache_key`).
    pub key: u64,
    /// The serialized result JSON, exactly as the worker produced it.
    pub result: String,
}

/// FNV-1a 64 over raw bytes — the same hash family as
/// `ahn_core::config::canonical_hash`, applied here to the encoded
/// payload so the reader needs no serde round trip to verify a line.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Encodes one record as its journal line (terminator included).
pub fn encode_line(key: u64, result: &str) -> String {
    let payload = serde_json::to_string(&Record {
        key,
        result: result.to_owned(),
    })
    .expect("a {u64, String} record always serializes");
    format!("{:016x} {payload}\n", fnv1a64(payload.as_bytes()))
}

/// Decodes one journal line (without its terminator); `None` marks a
/// torn or corrupted record.
pub fn decode_line(line: &str) -> Option<Record> {
    let (checksum_hex, payload) = line.split_once(' ')?;
    if checksum_hex.len() != 16 {
        return None;
    }
    let checksum = u64::from_str_radix(checksum_hex, 16).ok()?;
    if checksum != fnv1a64(payload.as_bytes()) {
        return None;
    }
    serde_json::from_str(payload).ok()
}

/// What [`replay`] recovered from a journal file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Replay {
    /// Recovered records in append order, first occurrence of each key
    /// only.
    pub records: Vec<Record>,
    /// Lines discarded at the tail (0 on a clean journal): the first
    /// invalid line and everything after it.
    pub discarded: usize,
}

/// Replays a journal file. A missing file is an empty journal (the
/// normal first boot), not an error; a corrupted or truncated trailing
/// record is detected via its checksum and discarded together with any
/// lines after it (they may depend on lost state, so the safe cut is
/// the first bad line).
pub fn replay(path: &Path) -> std::io::Result<Replay> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    };
    let reader = BufReader::new(file);
    let mut out = Replay::default();
    let mut seen = std::collections::HashSet::new();
    let mut lines = reader.lines();
    let mut tail = 0usize;
    for line in &mut lines {
        let line = line?;
        match decode_line(&line) {
            Some(record) => {
                if seen.insert(record.key) {
                    out.records.push(record);
                }
            }
            None => {
                tail = 1;
                break;
            }
        }
    }
    if tail > 0 {
        out.discarded = tail + lines.count();
    }
    Ok(out)
}

/// An open journal appender. Each [`Journal::append`] writes one
/// checksummed line and flushes it before returning.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` for appending.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_owned(),
            file,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completion record and flushes it to the OS.
    pub fn append(&mut self, key: u64, result: &str) -> std::io::Result<()> {
        self.file.write_all(encode_line(key, result).as_bytes())?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ahn-journal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn lines_roundtrip_and_reject_tampering() {
        let line = encode_line(42, "{\"ok\":true}");
        assert!(line.ends_with('\n'));
        let record = decode_line(line.trim_end()).unwrap();
        assert_eq!(record.key, 42);
        assert_eq!(record.result, "{\"ok\":true}");
        // Any single-byte corruption of the payload fails the checksum.
        let mut tampered = line.trim_end().to_owned();
        tampered.replace_range(tampered.len() - 1.., "]");
        assert_eq!(decode_line(&tampered), None);
        // A torn (truncated) line fails too.
        assert_eq!(decode_line(&line[..line.len() / 2]), None);
        assert_eq!(decode_line(""), None);
        assert_eq!(decode_line("nonsense"), None);
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let replayed = replay(&tmp("missing")).unwrap();
        assert_eq!(replayed, Replay::default());
    }

    #[test]
    fn append_then_replay_keeps_order_and_dedupes() {
        let path = tmp("roundtrip");
        let mut journal = Journal::open(&path).unwrap();
        journal.append(1, "\"a\"").unwrap();
        journal.append(2, "\"b\"").unwrap();
        journal.append(1, "\"a-again\"").unwrap(); // crash-retry re-append
        drop(journal);
        // A reopened journal appends, not truncates.
        let mut journal = Journal::open(&path).unwrap();
        journal.append(3, "\"c\"").unwrap();
        drop(journal);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.discarded, 0);
        let keys: Vec<u64> = replayed.records.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        // First occurrence wins (first-completion-wins, like the server).
        assert_eq!(replayed.records[0].result, "\"a\"");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_write_is_discarded() {
        let path = tmp("torn");
        let mut journal = Journal::open(&path).unwrap();
        journal.append(1, "\"a\"").unwrap();
        journal.append(2, "\"b\"").unwrap();
        drop(journal);
        // Tear the file mid-way through the second record.
        let text = std::fs::read_to_string(&path).unwrap();
        let first_len = text.find('\n').unwrap() + 1;
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].key, 1);
        assert_eq!(replayed.discarded, 1);

        // A corrupted *middle* record cuts there, dropping the tail too.
        std::fs::write(&path, text.clone()).unwrap();
        let mut corrupted = text.into_bytes();
        corrupted[first_len + 3] ^= 0x01;
        std::fs::write(&path, corrupted).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.discarded, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_torn_tail_truncation_recovers_the_clean_prefix() {
        // A crash (or a partial-write fault) can cut the file at *any*
        // byte. Whatever the cut, replay must keep every whole record
        // before it, discard the fragment, and never error.
        let path = tmp("torn-exhaustive");
        let mut journal = Journal::open(&path).unwrap();
        journal.append(1, "\"a\"").unwrap();
        journal.append(2, "\"b\"").unwrap();
        drop(journal);
        let bytes = std::fs::read(&path).unwrap();
        let first_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;

        for cut in 0..=bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let replayed = replay(&path).unwrap();
            // A record survives once all its content bytes are present —
            // losing only the trailing '\n' still passes the checksum.
            let (mut want_records, mut want_discarded) = (0, 0);
            let mut start = 0;
            for end in [first_len, bytes.len()] {
                if cut >= end - 1 {
                    want_records += 1;
                    start = end;
                } else {
                    want_discarded = usize::from(cut > start);
                    break;
                }
            }
            assert_eq!(
                (replayed.records.len(), replayed.discarded),
                (want_records, want_discarded),
                "cut at byte {cut} of {}",
                bytes.len()
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
