//! The distributed coordinator: runs a sweep or calibration *through* a
//! serve node instead of in-process, one `POST /v1/experiments` job per
//! grid cell, and merges the completed cells into a report bit-identical
//! to the single-process `run_sweep` / `run_calibration` fold.
//!
//! Why per-cell submissions instead of `POST /v1/sweeps`: each cell
//! rides the server's full cache/coalesce/queue flow under its own
//! `canonical_hash` key, so distributed sweeps share cached cells with
//! direct submissions, other sweeps, and calibration searches — and a
//! full queue backpressures one cell at a time (the coordinator retries
//! 503s) instead of bouncing a whole grid.
//!
//! Determinism: the coordinator never folds floats from wire text.
//! Results deserialize into typed [`ExperimentResult`]s (the vendored
//! JSON writer emits shortest-round-trip f64, so the parse is lossless),
//! become [`SweepCell`]s via [`ahn_core::cell_from_result`], and are
//! merged by [`ahn_core::merge_sweep`] in grid order — worker count,
//! arrival order, duplicate completions and crash/resume cannot change
//! a byte of the output.
//!
//! Checkpoint/resume: with a journal path every completed cell is
//! appended (checksummed, flushed) before the coordinator moves on; a
//! restarted coordinator replays the journal and submits only the
//! missing cells.

use crate::journal::{replay, Journal};
use crate::protocol::JobSpec;
use crate::worker::Transport;
use ahn_core::cases::CaseSpec;
use ahn_core::config::ExperimentConfig;
use ahn_core::{
    cell_from_result, merge_sweep, score_calibration, CalibrationGrid, CalibrationReport,
    ExperimentResult, SweepCell, SweepCellSpec, SweepGrid, SweepReport,
};
use ahn_obs::{trace_id_of_key, TraceEvent, TraceLog};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::time::Duration;

/// How many poll rounds a cell may take before the coordinator gives
/// up (multiplied by `poll_ms`; 15 000 × the 2 ms test cadence = 30 s,
/// matching the loadtest budget).
const MAX_POLL_ROUNDS: usize = 15_000;

/// How many consecutive 503 (queue full) answers a single cell may
/// absorb before the coordinator gives up.
const MAX_BACKPRESSURE_RETRIES: usize = 10_000;

/// One grid cell, resolved far enough to submit and to rebuild its
/// [`SweepCell`] from the wire result.
struct CellTask {
    sweep_index: usize,
    cell_spec: SweepCellSpec,
    config: ExperimentConfig,
    case: CaseSpec,
    spec: JobSpec,
    key: u64,
}

/// Expands `grid` into submission-ready cell tasks tagged with
/// `sweep_index` (which per-candidate sweep they belong to).
fn cell_tasks(grid: &SweepGrid, sweep_index: usize) -> Result<Vec<CellTask>, String> {
    let mut out = Vec::with_capacity(grid.cell_count());
    for cell_spec in grid.cell_specs() {
        let (config, case) = grid.resolve(&cell_spec)?;
        let spec = JobSpec::Experiment {
            config: config.clone(),
            cases: vec![case.clone()],
        };
        let key = spec.cache_key()?;
        out.push(CellTask {
            sweep_index,
            cell_spec,
            config,
            case,
            spec,
            key,
        });
    }
    Ok(out)
}

/// Drives every task through the serve node: journal replay → submit
/// missing → poll → journal append. Returns result JSON by cache key.
fn execute_cells(
    transport: &mut dyn Transport,
    tasks: &[CellTask],
    journal_path: Option<&Path>,
    poll_ms: u64,
    trace: Option<&TraceLog>,
) -> Result<HashMap<u64, String>, String> {
    let emit = |event: TraceEvent| {
        if let Some(log) = trace {
            log.emit(event);
        }
    };
    let pause = Duration::from_millis(poll_ms.max(1));
    let mut done: HashMap<u64, String> = HashMap::new();
    let mut journal = match journal_path {
        None => None,
        Some(path) => {
            let replayed = replay(path)
                .map_err(|e| format!("cannot replay journal {}: {e}", path.display()))?;
            for record in replayed.records {
                done.insert(record.key, record.result);
            }
            Some(
                Journal::open(path)
                    .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?,
            )
        }
    };

    // Submit every cell not already checkpointed (distinct keys once —
    // calibration candidates can share cells).
    let mut polling: Vec<(usize, u64)> = Vec::new(); // (task index, job id)
    let mut submitted: HashSet<u64> = HashSet::new();
    for (index, task) in tasks.iter().enumerate() {
        if done.contains_key(&task.key) || !submitted.insert(task.key) {
            continue;
        }
        let body =
            serde_json::to_string(&task.spec).map_err(|e| format!("cannot serialize cell: {e}"))?;
        let trace_id = trace_id_of_key(task.key);
        let mut backpressure = 0usize;
        loop {
            let (status, response) = transport
                .request("POST", "/v1/experiments", &body)
                .map_err(|e| format!("cell submission failed: {e}"))?;
            match status {
                200 => {
                    // Cache hit: the result is inline.
                    emit(
                        TraceEvent::new(trace_id, "submit")
                            .key(task.key)
                            .outcome(true)
                            .detail("cache_hit".into()),
                    );
                    let result = extract_field(&response, "result")?;
                    checkpoint(&mut done, &mut journal, task.key, result)?;
                    emit(
                        TraceEvent::new(trace_id, "merge")
                            .key(task.key)
                            .outcome(true),
                    );
                    break;
                }
                202 => {
                    let value: serde_json::Value = serde_json::from_str(&response)
                        .map_err(|e| format!("cannot parse submit ack: {e}"))?;
                    let serde_json::Value::U64(job_id) = value["job_id"] else {
                        return Err(format!("submit ack without job_id: {response}"));
                    };
                    emit(
                        TraceEvent::new(trace_id, "submit")
                            .key(task.key)
                            .job(job_id),
                    );
                    polling.push((index, job_id));
                    break;
                }
                503 => {
                    backpressure += 1;
                    if backpressure >= MAX_BACKPRESSURE_RETRIES {
                        return Err("server queue stayed full; giving up".into());
                    }
                    std::thread::sleep(pause);
                }
                _ => return Err(format!("cell submission rejected: {status} {response}")),
            }
        }
    }

    // Poll submissions to completion in order; cells finish in any
    // order server-side, the order here only shapes wait time.
    for (index, job_id) in polling {
        let task = &tasks[index];
        let mut rounds = 0usize;
        loop {
            let (status, response) = transport
                .request("GET", &format!("/v1/jobs/{job_id}"), "")
                .map_err(|e| format!("job poll failed: {e}"))?;
            if status != 200 {
                return Err(format!("job {job_id} poll rejected: {status} {response}"));
            }
            let value: serde_json::Value = serde_json::from_str(&response)
                .map_err(|e| format!("cannot parse job status: {e}"))?;
            match &value["status"] {
                serde_json::Value::String(s) if s == "done" => {
                    let result = extract_field(&response, "result")?;
                    checkpoint(&mut done, &mut journal, task.key, result)?;
                    emit(
                        TraceEvent::new(trace_id_of_key(task.key), "merge")
                            .key(task.key)
                            .job(job_id)
                            .outcome(true),
                    );
                    break;
                }
                serde_json::Value::String(s) if s == "failed" => {
                    let error = serde_json::to_string(&value["error"]).unwrap_or_default();
                    return Err(format!("cell job {job_id} failed: {error}"));
                }
                _ => {
                    rounds += 1;
                    if rounds >= MAX_POLL_ROUNDS {
                        return Err(format!("cell job {job_id} did not finish in time"));
                    }
                    std::thread::sleep(pause);
                }
            }
        }
    }
    Ok(done)
}

/// Re-serializes `field` of a JSON response body. Both sides use the
/// same writer, so this reproduces the worker's compact result bytes.
fn extract_field(response: &str, field: &str) -> Result<String, String> {
    let value: serde_json::Value =
        serde_json::from_str(response).map_err(|e| format!("cannot parse response: {e}"))?;
    match value.get(field) {
        Some(inner) => {
            serde_json::to_string(inner).map_err(|e| format!("cannot re-serialize {field}: {e}"))
        }
        None => Err(format!("response has no {field:?} field: {response}")),
    }
}

/// Records one completed cell: durably first (journal append is
/// checksummed and flushed), then in the in-memory map.
fn checkpoint(
    done: &mut HashMap<u64, String>,
    journal: &mut Option<Journal>,
    key: u64,
    result: String,
) -> Result<(), String> {
    if let Some(journal) = journal {
        journal
            .append(key, &result)
            .map_err(|e| format!("cannot append to journal: {e}"))?;
    }
    done.insert(key, result);
    Ok(())
}

/// Rebuilds the typed [`SweepCell`]s of one sweep from wire results.
fn build_cells(
    tasks: &[&CellTask],
    results: &HashMap<u64, String>,
) -> Result<Vec<SweepCell>, String> {
    tasks
        .iter()
        .map(|task| {
            let json = results
                .get(&task.key)
                .ok_or_else(|| format!("cell {:?} has no result", task.cell_spec))?;
            let mut parsed: Vec<ExperimentResult> =
                serde_json::from_str(json).map_err(|e| format!("cannot parse cell result: {e}"))?;
            if parsed.len() != 1 {
                return Err(format!(
                    "cell {:?} returned {} results, expected 1",
                    task.cell_spec,
                    parsed.len()
                ));
            }
            Ok(cell_from_result(
                task.cell_spec.clone(),
                &task.config,
                &task.case,
                &parsed.remove(0),
            ))
        })
        .collect()
}

/// Runs `grid` through the serve node behind `transport` and merges the
/// cells into a [`SweepReport`] bit-identical to
/// [`ahn_core::run_sweep`]. `journal_path` enables checkpoint/resume.
pub fn run_sweep_via(
    transport: &mut dyn Transport,
    grid: &SweepGrid,
    journal_path: Option<&Path>,
    poll_ms: u64,
) -> Result<SweepReport, String> {
    run_sweep_via_traced(transport, grid, journal_path, poll_ms, None)
}

/// [`run_sweep_via`] with span tracing: when `trace` is set the
/// coordinator emits a `submit` event per cell submission and a `merge`
/// event per checkpoint, so the coordinator's view joins with the
/// server's and the workers' via the shared key-derived trace id. The
/// report stays bit-identical — tracing never touches the fold.
pub fn run_sweep_via_traced(
    transport: &mut dyn Transport,
    grid: &SweepGrid,
    journal_path: Option<&Path>,
    poll_ms: u64,
    trace: Option<&TraceLog>,
) -> Result<SweepReport, String> {
    grid.validate()?;
    let tasks = cell_tasks(grid, 0)?;
    let results = execute_cells(transport, &tasks, journal_path, poll_ms, trace)?;
    let refs: Vec<&CellTask> = tasks.iter().collect();
    let cells = build_cells(&refs, &results)?;
    merge_sweep(grid, &cells)
}

/// Runs `grid` through the serve node behind `transport` and scores the
/// merged per-candidate sweeps into a [`CalibrationReport`] — Pareto
/// front included — bit-identical to [`ahn_core::run_calibration`].
/// `journal_path` enables checkpoint/resume.
pub fn run_calibration_via(
    transport: &mut dyn Transport,
    grid: &CalibrationGrid,
    journal_path: Option<&Path>,
    poll_ms: u64,
) -> Result<CalibrationReport, String> {
    run_calibration_via_traced(transport, grid, journal_path, poll_ms, None)
}

/// [`run_calibration_via`] with span tracing — same contract as
/// [`run_sweep_via_traced`].
pub fn run_calibration_via_traced(
    transport: &mut dyn Transport,
    grid: &CalibrationGrid,
    journal_path: Option<&Path>,
    poll_ms: u64,
    trace: Option<&TraceLog>,
) -> Result<CalibrationReport, String> {
    grid.validate()?;
    let mut sweep_grids = Vec::new();
    let mut tasks = Vec::new();
    for (index, candidate) in grid.candidates().into_iter().enumerate() {
        let sweep = grid.sweep_for(&candidate)?;
        tasks.extend(cell_tasks(&sweep, index)?);
        sweep_grids.push(sweep);
    }
    let results = execute_cells(transport, &tasks, journal_path, poll_ms, trace)?;
    let mut sweeps = Vec::with_capacity(sweep_grids.len());
    for (index, sweep_grid) in sweep_grids.iter().enumerate() {
        let refs: Vec<&CellTask> = tasks.iter().filter(|t| t.sweep_index == index).collect();
        let cells = build_cells(&refs, &results)?;
        sweeps.push(merge_sweep(sweep_grid, &cells)?);
    }
    score_calibration(grid, &sweeps)
}
