//! The bounded job queue and the worker pool that drains it.
//!
//! Submissions that miss the result cache become [`QueuedJob`]s in a
//! bounded FIFO; `workers` OS threads block on the queue's condvar and
//! run one experiment at a time each. Backpressure is explicit: when
//! the queue is full, [`JobQueue::try_push`] fails and the server
//! answers 503 instead of buffering unbounded work.

use crate::protocol::JobSpec;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the result is in the job table (and the cache).
    Done,
    /// Finished with an error.
    Failed,
}

impl JobStatus {
    /// Wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// One queued unit of work.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Server-assigned id.
    pub id: u64,
    /// Result-cache key of the resolved spec.
    pub key: u64,
    /// The resolved (non-preset) spec to run.
    pub spec: JobSpec,
}

/// Error returned when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct QueueInner {
    jobs: VecDeque<QueuedJob>,
    open: bool,
}

/// A bounded multi-producer multi-consumer FIFO with blocking pop.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// Creates a queue holding at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::with_capacity(capacity.min(1024)),
                open: true,
            }),
            ready: Condvar::new(),
            capacity,
        })
    }

    /// Enqueues a job, failing when the queue is full or closed.
    pub fn try_push(&self, job: QueuedJob) -> Result<(), QueueFull> {
        let mut inner = self.inner.lock().expect("queue lock");
        if !inner.open || inner.jobs.len() >= self.capacity {
            return Err(QueueFull);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available; returns `None` once the queue is
    /// closed and drained (worker shutdown signal).
    pub fn pop_blocking(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if !inner.open {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, and
    /// blocked workers wake up to exit.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").open = false;
        self.ready.notify_all();
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").jobs.len()
    }
}

/// Runs a resolved job to completion, returning the serialized result
/// JSON. This is the only place server-side compute happens; everything
/// around it is bookkeeping.
///
/// Panics inside the simulation (validation holes, internal asserts)
/// are caught and reported as job failures — a poisoned spec must never
/// take a worker thread down with it.
pub fn run_job(spec: &JobSpec) -> Result<String, String> {
    let spec = std::panic::AssertUnwindSafe(spec);
    match std::panic::catch_unwind(|| run_job_inner(*spec)) {
        Ok(outcome) => outcome,
        Err(panic) => {
            let reason = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("job panicked: {reason}"))
        }
    }
}

fn run_job_inner(spec: &JobSpec) -> Result<String, String> {
    match spec {
        JobSpec::Experiment { config, cases } => {
            let results: Vec<ahn_core::ExperimentResult> = cases
                .iter()
                .map(|case| ahn_core::run_experiment(config, case))
                .collect();
            serde_json::to_string(&results).map_err(|e| format!("cannot serialize result: {e}"))
        }
        JobSpec::Ipdrp { config, seed } => {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(*seed);
            let history = ahn_ipdrp::run_ipdrp(&mut rng, config);
            serde_json::to_string(&history).map_err(|e| format!("cannot serialize result: {e}"))
        }
        JobSpec::Preset { name } => Err(format!("unresolved preset {name:?} reached a worker")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::presets;

    fn job(id: u64) -> QueuedJob {
        QueuedJob {
            id,
            key: id,
            spec: JobSpec::Preset { name: "x".into() },
        }
    }

    #[test]
    fn push_pop_fifo() {
        let q = JobQueue::new(4);
        q.try_push(job(1)).unwrap();
        q.try_push(job(2)).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop_blocking().unwrap().id, 1);
        assert_eq!(q.pop_blocking().unwrap().id, 2);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_rejects() {
        let q = JobQueue::new(1);
        q.try_push(job(1)).unwrap();
        assert_eq!(q.try_push(job(2)), Err(QueueFull));
        let _ = q.pop_blocking();
        q.try_push(job(3)).unwrap();
    }

    #[test]
    fn close_drains_then_stops() {
        let q = JobQueue::new(4);
        q.try_push(job(1)).unwrap();
        q.close();
        assert_eq!(q.try_push(job(2)), Err(QueueFull));
        assert_eq!(q.pop_blocking().unwrap().id, 1);
        assert!(q.pop_blocking().is_none());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = JobQueue::new(1);
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap().is_none());
    }

    #[test]
    fn run_job_executes_every_preset() {
        for preset in presets() {
            let json = run_job(&preset.body).unwrap();
            let value: serde_json::Value = serde_json::from_str(&json).unwrap();
            assert!(
                matches!(value, serde_json::Value::Seq(ref items) if !items.is_empty()),
                "{}: result should be a non-empty array",
                preset.name
            );
        }
    }

    #[test]
    fn run_job_is_deterministic() {
        let spec = presets()[2].body.clone(); // ipdrp: cheapest
        assert_eq!(run_job(&spec).unwrap(), run_job(&spec).unwrap());
    }

    #[test]
    fn unresolved_preset_fails() {
        assert!(run_job(&JobSpec::Preset { name: "x".into() }).is_err());
    }

    #[test]
    fn panicking_job_becomes_a_failure_not_a_dead_worker() {
        // A spec that dodges validation and trips an internal assert
        // (no environments) must come back as Err, so the worker thread
        // survives and the job is marked failed instead of wedging.
        let case: ahn_core::CaseSpec =
            serde_json::from_str("{\"name\":\"empty\",\"envs\":[],\"mode\":\"Shorter\"}").unwrap();
        let spec = JobSpec::Experiment {
            config: ahn_core::ExperimentConfig::smoke(),
            cases: vec![case],
        };
        let err = run_job(&spec).unwrap_err();
        assert!(err.contains("job panicked"), "{err}");
    }
}
