//! Job storage and execution: the [`JobStore`] trait, its in-memory and
//! on-disk (journal-backed) backends, and the single place server-side
//! compute happens.
//!
//! Submissions that miss the result cache become [`QueuedJob`]s in a
//! bounded FIFO; consumers drain it two ways:
//!
//! * the internal worker pool blocks on [`JobStore::pop_blocking`];
//! * external workers lease cells via [`JobStore::claim`] /
//!   [`JobStore::complete_lease`] (the `/v1/work/*` endpoints). A claim
//!   carries a deadline; when it passes without a completion the job is
//!   requeued at the *front* of the queue by the next
//!   [`JobStore::sweep_expired`] call, so a crashed worker can never
//!   strand a cell.
//!
//! Lease expiry is swept lazily from request handlers — never from a
//! background thread — so an idle serve node does exactly zero work.
//! Each sweep is bounded by the number of outstanding leases, which is
//! itself bounded by the number of claims granted.
//!
//! Backpressure is explicit: when the queue is full, [`JobStore::try_push`]
//! fails and the server answers 503 instead of buffering unbounded work.
//! Requeues of expired leases are exempt (the job was already admitted).

use crate::journal::{Journal, Record};
use crate::protocol::JobSpec;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the result is in the job table (and the cache).
    Done,
    /// Finished with an error.
    Failed,
}

impl JobStatus {
    /// Wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// One queued unit of work.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Server-assigned id.
    pub id: u64,
    /// Result-cache key of the resolved spec.
    pub key: u64,
    /// The resolved (non-preset) spec to run.
    pub spec: JobSpec,
    /// When the job entered the queue, so the consumer that dequeues it
    /// (lease grant or local pop) can sample the `queue_wait_us`
    /// histogram. Requeued leases keep the original enqueue time — the
    /// cell really did wait that long.
    pub enqueued_at: Instant,
}

/// Error returned when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

/// A job handed to an external worker under a lease.
#[derive(Debug, Clone)]
pub struct LeasedJob {
    /// Store-assigned lease id; quote it back in the completion.
    pub lease_id: u64,
    /// The leased job.
    pub job: QueuedJob,
}

/// Pluggable job storage: a bounded FIFO plus a lease table, with an
/// optional durable completion journal (the on-disk backend).
///
/// Implementations must be safe to share across the accept loop, the
/// worker pool and every connection thread.
pub trait JobStore: Send + Sync {
    /// Enqueues a job, failing when the queue is full or closed.
    fn try_push(&self, job: QueuedJob) -> Result<(), QueueFull>;

    /// Blocks until a job is available; returns `None` once the store
    /// is closed and drained (worker shutdown signal).
    fn pop_blocking(&self) -> Option<QueuedJob>;

    /// Non-blocking pop under a lease: the job must be completed via
    /// [`JobStore::complete_lease`] before `lease` elapses or it is
    /// requeued by the next sweep. Returns `None` when the queue is
    /// empty or closed.
    fn claim(&self, lease: Duration) -> Option<LeasedJob>;

    /// Settles a lease (the worker delivered a result for it). Returns
    /// `false` when the lease is unknown — typically already expired
    /// and requeued; the *result* may still be usable, only the lease
    /// bookkeeping is gone.
    fn complete_lease(&self, lease_id: u64) -> bool;

    /// Requeues every expired lease (at the front of the queue) and
    /// returns how many were requeued. Called lazily from request
    /// handlers; cost is bounded by the number of outstanding leases.
    fn sweep_expired(&self) -> usize;

    /// Records a completed result durably (no-op for the in-memory
    /// backend; the journal backend appends one checksummed line).
    fn record_completion(&self, key: u64, result: &str);

    /// Closes the store: pending jobs still drain, new pushes fail, and
    /// blocked workers wake up to exit.
    fn close(&self);

    /// Jobs currently waiting (excludes leased jobs).
    fn depth(&self) -> usize;

    /// Leases currently outstanding.
    fn leased(&self) -> usize;

    /// Queued plus leased cells — the store-side work a draining node
    /// must see settled (or give up on at its drain deadline) before it
    /// can stop. Racy across two loads, which is fine: the drain loop
    /// re-polls.
    fn outstanding(&self) -> usize {
        self.depth() + self.leased()
    }
}

struct Lease {
    deadline: Instant,
    job: QueuedJob,
}

struct StoreInner {
    jobs: VecDeque<QueuedJob>,
    leases: HashMap<u64, Lease>,
    next_lease_id: u64,
    open: bool,
}

/// The in-memory [`JobStore`]: a bounded multi-producer multi-consumer
/// FIFO with blocking pop and a lease table for external workers.
pub struct MemStore {
    inner: Mutex<StoreInner>,
    ready: Condvar,
    capacity: usize,
}

impl MemStore {
    /// Creates a store queueing at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> MemStore {
        MemStore {
            inner: Mutex::new(StoreInner {
                jobs: VecDeque::with_capacity(capacity.min(1024)),
                leases: HashMap::new(),
                next_lease_id: 1,
                open: true,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Moves every expired lease back to the front of the queue.
    /// Returns the requeue count; wakes a blocked worker per requeue.
    fn sweep_locked(inner: &mut StoreInner, now: Instant) -> usize {
        let expired: Vec<u64> = inner
            .leases
            .iter()
            .filter(|(_, lease)| lease.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            let lease = inner.leases.remove(id).expect("expired lease present");
            inner.jobs.push_front(lease.job);
        }
        expired.len()
    }
}

impl JobStore for MemStore {
    fn try_push(&self, job: QueuedJob) -> Result<(), QueueFull> {
        let mut inner = self.inner.lock().expect("store lock");
        if !inner.open || inner.jobs.len() >= self.capacity {
            return Err(QueueFull);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    fn pop_blocking(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("store lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if !inner.open {
                return None;
            }
            inner = self.ready.wait(inner).expect("store lock");
        }
    }

    fn claim(&self, lease: Duration) -> Option<LeasedJob> {
        let mut inner = self.inner.lock().expect("store lock");
        let job = inner.jobs.pop_front()?;
        let lease_id = inner.next_lease_id;
        inner.next_lease_id += 1;
        inner.leases.insert(
            lease_id,
            Lease {
                deadline: Instant::now() + lease,
                job: job.clone(),
            },
        );
        Some(LeasedJob { lease_id, job })
    }

    fn complete_lease(&self, lease_id: u64) -> bool {
        let mut inner = self.inner.lock().expect("store lock");
        inner.leases.remove(&lease_id).is_some()
    }

    fn sweep_expired(&self) -> usize {
        let mut inner = self.inner.lock().expect("store lock");
        let requeued = Self::sweep_locked(&mut inner, Instant::now());
        drop(inner);
        for _ in 0..requeued {
            self.ready.notify_one();
        }
        requeued
    }

    fn record_completion(&self, _key: u64, _result: &str) {}

    fn close(&self) {
        self.inner.lock().expect("store lock").open = false;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner.lock().expect("store lock").jobs.len()
    }

    fn leased(&self) -> usize {
        self.inner.lock().expect("store lock").leases.len()
    }
}

/// The on-disk [`JobStore`]: [`MemStore`] semantics plus an append-only
/// completion journal. Every completion is recorded as one checksummed
/// line; on open the journal is replayed (torn trailing writes
/// discarded) and the recovered records are exposed via
/// [`JournalStore::recovered`] so the server can warm its result cache
/// — a restarted node resumes without recomputing finished cells.
pub struct JournalStore {
    mem: MemStore,
    journal: Mutex<Journal>,
    recovered: Vec<Record>,
}

impl JournalStore {
    /// Opens the store, replaying any existing journal at `path`.
    pub fn open(capacity: usize, path: &Path) -> std::io::Result<JournalStore> {
        let recovered = crate::journal::replay(path)?.records;
        Ok(JournalStore {
            mem: MemStore::new(capacity),
            journal: Mutex::new(Journal::open(path)?),
            recovered,
        })
    }

    /// Completions recovered from the journal when the store opened.
    pub fn recovered(&self) -> &[Record] {
        &self.recovered
    }
}

impl JobStore for JournalStore {
    fn try_push(&self, job: QueuedJob) -> Result<(), QueueFull> {
        self.mem.try_push(job)
    }

    fn pop_blocking(&self) -> Option<QueuedJob> {
        self.mem.pop_blocking()
    }

    fn claim(&self, lease: Duration) -> Option<LeasedJob> {
        self.mem.claim(lease)
    }

    fn complete_lease(&self, lease_id: u64) -> bool {
        self.mem.complete_lease(lease_id)
    }

    fn sweep_expired(&self) -> usize {
        self.mem.sweep_expired()
    }

    fn record_completion(&self, key: u64, result: &str) {
        // A full disk must not take the serving path down: the journal
        // is an optimization (resume without recompute), not a
        // correctness requirement, so append errors degrade to
        // in-memory behavior.
        let _ = self
            .journal
            .lock()
            .expect("journal lock")
            .append(key, result);
    }

    fn close(&self) {
        self.mem.close();
    }

    fn depth(&self) -> usize {
        self.mem.depth()
    }

    fn leased(&self) -> usize {
        self.mem.leased()
    }
}

/// Runs a resolved job to completion, returning the serialized result
/// JSON. This is the only place server-side compute happens; everything
/// around it is bookkeeping.
///
/// Panics inside the simulation (validation holes, internal asserts)
/// are caught and reported as job failures — a poisoned spec must never
/// take a worker thread down with it.
pub fn run_job(spec: &JobSpec) -> Result<String, String> {
    let spec = std::panic::AssertUnwindSafe(spec);
    match std::panic::catch_unwind(|| run_job_inner(*spec)) {
        Ok(outcome) => outcome,
        Err(panic) => {
            let reason = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("job panicked: {reason}"))
        }
    }
}

fn run_job_inner(spec: &JobSpec) -> Result<String, String> {
    match spec {
        JobSpec::Experiment { config, cases } => {
            let results: Vec<ahn_core::ExperimentResult> = cases
                .iter()
                .map(|case| ahn_core::run_experiment(config, case))
                .collect();
            serde_json::to_string(&results).map_err(|e| format!("cannot serialize result: {e}"))
        }
        JobSpec::Ipdrp { config, seed } => {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(*seed);
            let history = ahn_ipdrp::run_ipdrp(&mut rng, config);
            serde_json::to_string(&history).map_err(|e| format!("cannot serialize result: {e}"))
        }
        JobSpec::Preset { name } => Err(format!("unresolved preset {name:?} reached a worker")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::presets;
    use std::sync::Arc;

    fn job(id: u64) -> QueuedJob {
        QueuedJob {
            id,
            key: id,
            spec: JobSpec::Preset { name: "x".into() },
            enqueued_at: Instant::now(),
        }
    }

    #[test]
    fn push_pop_fifo() {
        let q = MemStore::new(4);
        q.try_push(job(1)).unwrap();
        q.try_push(job(2)).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop_blocking().unwrap().id, 1);
        assert_eq!(q.pop_blocking().unwrap().id, 2);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_rejects() {
        let q = MemStore::new(1);
        q.try_push(job(1)).unwrap();
        assert_eq!(q.try_push(job(2)), Err(QueueFull));
        let _ = q.pop_blocking();
        q.try_push(job(3)).unwrap();
    }

    #[test]
    fn close_drains_then_stops() {
        let q = MemStore::new(4);
        q.try_push(job(1)).unwrap();
        q.close();
        assert_eq!(q.try_push(job(2)), Err(QueueFull));
        assert_eq!(q.pop_blocking().unwrap().id, 1);
        assert!(q.pop_blocking().is_none());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(MemStore::new(1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap().is_none());
    }

    #[test]
    fn claim_then_complete_settles_the_lease() {
        let q = MemStore::new(4);
        q.try_push(job(1)).unwrap();
        let leased = q.claim(Duration::from_secs(60)).unwrap();
        assert_eq!(leased.job.id, 1);
        assert_eq!((q.depth(), q.leased()), (0, 1));
        assert!(q.complete_lease(leased.lease_id));
        assert!(
            !q.complete_lease(leased.lease_id),
            "second settle is a no-op"
        );
        assert_eq!((q.depth(), q.leased()), (0, 0));
        // Nothing left to claim, and sweeping an empty table is free.
        assert!(q.claim(Duration::from_secs(60)).is_none());
        assert_eq!(q.sweep_expired(), 0);
    }

    #[test]
    fn expired_lease_requeues_at_the_front() {
        let q = MemStore::new(4);
        q.try_push(job(1)).unwrap();
        q.try_push(job(2)).unwrap();
        let leased = q.claim(Duration::from_millis(0)).unwrap();
        assert_eq!(leased.job.id, 1);
        // Deadline already passed; the sweep puts #1 ahead of #2.
        assert_eq!(q.sweep_expired(), 1);
        assert_eq!(q.leased(), 0);
        assert_eq!(q.claim(Duration::from_secs(60)).unwrap().job.id, 1);
        // A completion for the dead lease reports unknown but is harmless.
        assert!(!q.complete_lease(leased.lease_id));
    }

    #[test]
    fn unexpired_leases_survive_the_sweep() {
        let q = MemStore::new(4);
        q.try_push(job(1)).unwrap();
        let leased = q.claim(Duration::from_secs(60)).unwrap();
        assert_eq!(q.sweep_expired(), 0);
        assert_eq!((q.depth(), q.leased()), (0, 1));
        assert!(q.complete_lease(leased.lease_id));
    }

    #[test]
    fn expired_requeue_wakes_a_blocked_worker() {
        let q = Arc::new(MemStore::new(4));
        q.try_push(job(7)).unwrap();
        let _leased = q.claim(Duration::from_millis(0)).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.sweep_expired(), 1);
        assert_eq!(waiter.join().unwrap().unwrap().id, 7);
    }

    #[test]
    fn journal_store_records_survive_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("ahn-jobstore-test-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let store = JournalStore::open(4, &path).unwrap();
        assert!(store.recovered().is_empty());
        store.record_completion(11, "\"one\"");
        store.record_completion(22, "\"two\"");
        store.record_completion(11, "\"one-retry\"");
        drop(store);

        let store = JournalStore::open(4, &path).unwrap();
        let recovered: Vec<(u64, &str)> = store
            .recovered()
            .iter()
            .map(|r| (r.key, r.result.as_str()))
            .collect();
        // First completion wins; append order preserved.
        assert_eq!(recovered, vec![(11, "\"one\""), (22, "\"two\"")]);
        // Queue/lease semantics are untouched MemStore behavior.
        store.try_push(job(1)).unwrap();
        let leased = store.claim(Duration::from_secs(60)).unwrap();
        assert!(store.complete_lease(leased.lease_id));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_job_executes_every_preset() {
        for preset in presets() {
            let json = run_job(&preset.body).unwrap();
            let value: serde_json::Value = serde_json::from_str(&json).unwrap();
            assert!(
                matches!(value, serde_json::Value::Seq(ref items) if !items.is_empty()),
                "{}: result should be a non-empty array",
                preset.name
            );
        }
    }

    #[test]
    fn run_job_is_deterministic() {
        let spec = presets()[2].body.clone(); // ipdrp: cheapest
        assert_eq!(run_job(&spec).unwrap(), run_job(&spec).unwrap());
    }

    #[test]
    fn unresolved_preset_fails() {
        assert!(run_job(&JobSpec::Preset { name: "x".into() }).is_err());
    }

    #[test]
    fn panicking_job_becomes_a_failure_not_a_dead_worker() {
        // A spec that dodges validation and trips an internal assert
        // (no environments) must come back as Err, so the worker thread
        // survives and the job is marked failed instead of wedging.
        let case: ahn_core::CaseSpec =
            serde_json::from_str("{\"name\":\"empty\",\"envs\":[],\"mode\":\"Shorter\"}").unwrap();
        let spec = JobSpec::Experiment {
            config: ahn_core::ExperimentConfig::smoke(),
            cases: vec![case],
        };
        let err = run_job(&spec).unwrap_err();
        assert!(err.contains("job panicked"), "{err}");
    }
}
