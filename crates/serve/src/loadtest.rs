//! A std-only load generator for the job server.
//!
//! Opens `connections` keep-alive connections, drives `requests` total
//! submissions round-robin over `distinct` structurally different job
//! specs, polls every queued job to completion, and reports p50/p99
//! submit latency plus requests/s. Because the specs repeat, the run is
//! a *mixed* cache workload by construction: the first submission of
//! each distinct spec misses (and costs a real experiment), every
//! repeat hits the LRU cache.

use crate::http::{read_response, write_request};
use crate::metrics::Snapshot;
use crate::protocol::JobSpec;
use ahn_core::{cases::CaseSpec, config::ExperimentConfig};
use ahn_obs::{AtomicHistogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-test parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadtestConfig {
    /// Server address, e.g. `127.0.0.1:7172`.
    pub addr: String,
    /// Concurrent keep-alive connections (one thread each).
    pub connections: usize,
    /// Total submissions across all connections.
    pub requests: usize,
    /// Structurally distinct specs cycled over (each distinct spec costs
    /// one real experiment; the rest of its submissions are cache hits).
    pub distinct: usize,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            addr: "127.0.0.1:7172".into(),
            connections: 4,
            requests: 200,
            distinct: 4,
        }
    }
}

/// What one load-test run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadtestReport {
    /// Submissions actually attempted (a connection that dies mid-run
    /// stops attempting, so this can be below the configured total).
    pub requests: u64,
    /// Submissions answered inline from the cache.
    pub cache_hits: u64,
    /// Submissions that became jobs and were polled to completion.
    pub jobs_completed: u64,
    /// Submissions bounced with 503 (queue full).
    pub rejected: u64,
    /// Transport or protocol errors.
    pub errors: u64,
    /// Median submit latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile submit latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile submit latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed submit latency, milliseconds (exact, not a bucket
    /// bound).
    pub max_ms: f64,
    /// The full submit-latency distribution (log2 buckets,
    /// microseconds), merged across connections.
    pub latency: HistogramSnapshot,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// `requests / wall_seconds`.
    pub requests_per_second: f64,
    /// The server's `/metrics` snapshot after the run.
    pub server_metrics: Option<Snapshot>,
}

/// The tiny-but-real experiment spec the load test submits; `index`
/// varies the base seed, making specs structurally distinct (distinct
/// cache keys) while keeping every job sub-millisecond-scale.
pub fn smoke_spec(index: u64) -> JobSpec {
    let mut config = ExperimentConfig::smoke();
    config.population = 10;
    config.rounds = 30;
    config.generations = 3;
    config.replications = 1;
    config.base_seed = 0xAD0C ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    JobSpec::Experiment {
        config,
        cases: vec![CaseSpec::mini(
            "loadtest",
            &[2],
            10,
            ahn_net::PathMode::Shorter,
        )],
    }
}

/// One synchronous request on a fresh connection (CLI helper for
/// one-shot calls like `/metrics` or `/v1/shutdown`).
pub fn one_shot(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    one_shot_deadlined(addr, method, path, body, None)
}

/// [`one_shot`] with a total per-call deadline applied to connect,
/// send and receive (each phase individually bounded by `deadline`) —
/// the client-side guard a worker uses so a wedged server cannot pin
/// it forever. `None` blocks indefinitely.
pub fn one_shot_deadlined(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    deadline: Option<Duration>,
) -> Result<(u16, String), String> {
    let stream = match deadline {
        None => TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?,
        Some(limit) => {
            use std::net::ToSocketAddrs;
            let sock = addr
                .to_socket_addrs()
                .map_err(|e| format!("resolve {addr}: {e}"))?
                .next()
                .ok_or_else(|| format!("resolve {addr}: no addresses"))?;
            TcpStream::connect_timeout(&sock, limit).map_err(|e| format!("connect {addr}: {e}"))?
        }
    };
    stream
        .set_read_timeout(deadline)
        .and_then(|()| stream.set_write_timeout(deadline))
        .map_err(|e| format!("set deadline: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut stream = stream;
    write_request(&mut stream, method, path, body).map_err(|e| format!("send: {e}"))?;
    read_response(&mut reader).map_err(|e| format!("read: {e}"))
}

struct WorkerTally {
    /// Submissions this connection actually sent (or tried to send).
    attempted: u64,
    /// Submit latencies, microseconds — a zero-allocation histogram per
    /// connection, merged after the run (merge order cannot change the
    /// totals, so the report is deterministic for a given set of
    /// latencies).
    latency: AtomicHistogram,
    cache_hits: u64,
    jobs_completed: u64,
    rejected: u64,
    errors: u64,
}

/// Runs the load test to completion.
pub fn run_loadtest(config: &LoadtestConfig) -> Result<LoadtestReport, String> {
    if config.connections == 0 || config.requests == 0 {
        return Err("connections and requests must be positive".into());
    }
    let bodies: Arc<Vec<String>> = Arc::new(
        (0..config.distinct.max(1) as u64)
            .map(|d| {
                serde_json::to_string(&smoke_spec(d))
                    .map_err(|e| format!("cannot serialize spec: {e}"))
            })
            .collect::<Result<_, _>>()?,
    );

    let started = Instant::now();
    let mut tallies: Vec<WorkerTally> = Vec::with_capacity(config.connections);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|worker| {
                let bodies = Arc::clone(&bodies);
                let addr = config.addr.clone();
                // Split `requests` across workers, first workers take
                // the remainder.
                let base = config.requests / config.connections;
                let extra = usize::from(worker < config.requests % config.connections);
                let count = base + extra;
                scope.spawn(move || drive_connection(&addr, &bodies, worker, count))
            })
            .collect();
        for handle in handles {
            tallies.push(handle.join().expect("loadtest worker panicked"));
        }
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let latency = AtomicHistogram::new();
    let (mut attempted, mut hits, mut completed) = (0u64, 0u64, 0u64);
    let (mut rejected, mut errors) = (0u64, 0u64);
    for t in &tallies {
        latency.merge_from(&t.latency);
        attempted += t.attempted;
        hits += t.cache_hits;
        completed += t.jobs_completed;
        rejected += t.rejected;
        errors += t.errors;
    }
    let latency = latency.snapshot();

    let server_metrics = one_shot(&config.addr, "GET", "/metrics", "")
        .ok()
        .filter(|(status, _)| *status == 200)
        .and_then(|(_, body)| serde_json::from_str(&body).ok());

    Ok(LoadtestReport {
        requests: attempted,
        cache_hits: hits,
        jobs_completed: completed,
        rejected,
        errors,
        p50_ms: latency.p50 as f64 / 1000.0,
        p90_ms: latency.p90 as f64 / 1000.0,
        p99_ms: latency.p99 as f64 / 1000.0,
        max_ms: latency.max as f64 / 1000.0,
        latency,
        wall_seconds,
        requests_per_second: attempted as f64 / wall_seconds.max(1e-9),
        server_metrics,
    })
}

/// Renders a report for terminal output.
pub fn render(report: &LoadtestReport) -> String {
    let mut out = format!(
        "loadtest: {} requests in {:.3}s -> {:.0} req/s\n\
         latency p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n\
         cache hits {}, jobs completed {}, rejected {}, errors {}\n",
        report.requests,
        report.wall_seconds,
        report.requests_per_second,
        report.p50_ms,
        report.p90_ms,
        report.p99_ms,
        report.max_ms,
        report.cache_hits,
        report.jobs_completed,
        report.rejected,
        report.errors,
    );
    // The distribution itself: one line per occupied log2 bucket.
    for bucket in &report.latency.buckets {
        out.push_str(&format!(
            "latency <= {:>9.3} ms : {}\n",
            bucket.le as f64 / 1000.0,
            bucket.count
        ));
    }
    if let Some(m) = &report.server_metrics {
        out.push_str(&format!(
            "server: hit rate {:.1}%, queue depth {} (peak {}), {:.0} games/s busy-side\n\
             server: {:.3}s compute across {} jobs ({:.1} ms/job mean)\n\
             server: hardening: {} timed-out requests, {} breaker trips, \
             {} external cells, drained {:.3}s\n",
            m.cache_hit_rate * 100.0,
            m.queue_depth,
            m.queue_depth_peak,
            m.games_per_second,
            m.job_seconds_total,
            m.jobs_completed + m.jobs_failed,
            m.job_seconds_mean * 1000.0,
            m.requests_timed_out,
            m.breaker_open_total,
            m.cells_completed_external,
            m.drain_seconds,
        ));
    }
    out
}

fn drive_connection(addr: &str, bodies: &[String], worker: usize, count: usize) -> WorkerTally {
    let mut tally = WorkerTally {
        attempted: 0,
        latency: AtomicHistogram::new(),
        cache_hits: 0,
        jobs_completed: 0,
        rejected: 0,
        errors: 0,
    };
    let Ok(stream) = TcpStream::connect(addr) else {
        tally.errors = 1;
        return tally;
    };
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        tally.errors = 1;
        return tally;
    };
    let mut stream = stream;
    let mut reader = BufReader::new(read_half);

    for i in 0..count {
        let body = &bodies[(worker + i) % bodies.len()];
        tally.attempted += 1;
        let submit_started = Instant::now();
        if write_request(&mut stream, "POST", "/v1/experiments", body).is_err() {
            tally.errors += 1;
            break;
        }
        let (status, response) = match read_response(&mut reader) {
            Ok(r) => r,
            Err(_) => {
                tally.errors += 1;
                break;
            }
        };
        tally
            .latency
            .record(submit_started.elapsed().as_micros() as u64);

        match status {
            200 if response.contains("\"cached\":true") => tally.cache_hits += 1,
            202 => match job_id_of(&response) {
                Some(job_id) => {
                    if poll_to_completion(&mut stream, &mut reader, job_id) {
                        tally.jobs_completed += 1;
                    } else {
                        tally.errors += 1;
                    }
                }
                None => tally.errors += 1,
            },
            503 => {
                tally.rejected += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            _ => tally.errors += 1,
        }
    }
    tally
}

/// Polls `GET /v1/jobs/{id}` on the same connection until the job
/// leaves the queue; true on `done`.
fn poll_to_completion(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    job_id: u64,
) -> bool {
    let path = format!("/v1/jobs/{job_id}");
    // 2 ms x 15 000 polls = a 30 s budget, far beyond any smoke job.
    for _ in 0..15_000 {
        if write_request(stream, "GET", &path, "").is_err() {
            return false;
        }
        let Ok((status, body)) = read_response(reader) else {
            return false;
        };
        if status != 200 {
            return false;
        }
        if body.contains("\"status\":\"done\"") {
            return true;
        }
        if body.contains("\"status\":\"failed\"") {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// Extracts `"job_id": N` from a submit ack.
fn job_id_of(response: &str) -> Option<u64> {
    let value: serde_json::Value = serde_json::from_str(response).ok()?;
    match &value["job_id"] {
        serde_json::Value::U64(id) => Some(*id),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_specs_are_distinct_and_valid() {
        let a = smoke_spec(0);
        let b = smoke_spec(1);
        a.validate().unwrap();
        b.validate().unwrap();
        assert_ne!(a.cache_key().unwrap(), b.cache_key().unwrap());
        assert_eq!(
            smoke_spec(1).cache_key().unwrap(),
            b.cache_key().unwrap(),
            "spec construction is deterministic"
        );
    }

    #[test]
    fn percentiles_come_from_the_merged_histogram() {
        // Two connections' tallies, merged the way run_loadtest does.
        let (a, b) = (AtomicHistogram::new(), AtomicHistogram::new());
        for us in (1..=50).map(|i| i * 1000) {
            a.record(us);
        }
        for us in (51..=100).map(|i| i * 1000) {
            b.record(us);
        }
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 100);
        // Log2 buckets report the bucket's upper bound: within 2x of
        // the exact percentile, and the max is exact.
        assert!(snap.p50 >= 50_000 && snap.p50 <= 100_000, "{}", snap.p50);
        assert!(snap.p99 >= 99_000 && snap.p99 <= 198_000, "{}", snap.p99);
        assert_eq!(snap.max, 100_000);
        // An empty run reports zeros, not NaNs.
        let empty = AtomicHistogram::new().snapshot();
        assert_eq!((empty.count, empty.p50, empty.max), (0, 0, 0));
    }

    #[test]
    fn job_id_extraction() {
        assert_eq!(
            job_id_of("{\"job_id\":17,\"status\":\"queued\",\"cached\":false}"),
            Some(17)
        );
        assert_eq!(job_id_of("{\"job_id\":null,\"status\":\"done\"}"), None);
        assert_eq!(job_id_of("not json"), None);
    }

    #[test]
    fn zero_connections_rejected() {
        let bad = LoadtestConfig {
            connections: 0,
            ..LoadtestConfig::default()
        };
        assert!(run_loadtest(&bad).is_err());
    }
}
