//! Lock-free server counters and their JSON snapshot.

use ahn_obs::{AtomicHistogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic counters every connection/worker thread bumps with relaxed
/// atomics; `/metrics` renders a consistent-enough snapshot (individual
/// counters are exact, cross-counter ratios are racy by a request or
/// two, which is fine for an operational endpoint).
#[derive(Debug)]
pub struct Metrics {
    /// HTTP requests served, any route, any status.
    pub http_requests: AtomicU64,
    /// `POST /v1/experiments` submissions accepted for processing
    /// (cache hits + queued jobs + coalesced duplicates).
    pub submissions: AtomicU64,
    /// Submissions answered straight from the result cache.
    pub cache_hits: AtomicU64,
    /// Submissions that enqueued a fresh job.
    pub cache_misses: AtomicU64,
    /// Submissions coalesced onto an already-queued identical job.
    pub coalesced: AtomicU64,
    /// Submissions rejected because the job queue was full (503s).
    pub rejected_queue_full: AtomicU64,
    /// Jobs a worker finished successfully.
    pub jobs_completed: AtomicU64,
    /// Jobs a worker finished with an error.
    pub jobs_failed: AtomicU64,
    /// Ad Hoc Network Games simulated by completed jobs.
    pub games_simulated: AtomicU64,
    /// Worker wall-nanoseconds spent inside jobs (across all workers).
    pub busy_nanos: AtomicU64,
    /// Highest queue depth observed at any submission — the backlog
    /// high-water mark a capacity planner actually wants (the
    /// instantaneous `queue_depth` is usually 0 by scrape time).
    pub queue_depth_peak: AtomicU64,
    /// `POST /v1/work/claim` requests that granted a lease.
    pub work_claims: AtomicU64,
    /// `POST /v1/work/claim` requests that found the queue empty.
    pub work_claim_empty: AtomicU64,
    /// `POST /v1/work/complete` results accepted (first completion of a
    /// job).
    pub work_completed: AtomicU64,
    /// `POST /v1/work/complete` results discarded as duplicates of an
    /// already-finished job.
    pub work_duplicate: AtomicU64,
    /// Expired leases requeued by the lazy sweep (each one is a cell a
    /// crashed or stalled worker abandoned).
    pub lease_requeues: AtomicU64,
    /// Connections evicted by a read deadline mid-request (slowloris
    /// defense). Idle keep-alive closes are clean and not counted here.
    pub requests_timed_out: AtomicU64,
    /// Circuit-breaker trips reported by claiming workers (best-effort:
    /// a trip report dropped by the transport is retried with the next
    /// claim, so the counter is at-least-once under faults).
    pub breaker_open_total: AtomicU64,
    /// Completions accepted from external workers. Kept separate so
    /// `games_simulated` stays an honest *local-compute* gauge — a
    /// pull-only node reports the cells it recorded, not games it never
    /// simulated (the PR-6 accounting gotcha).
    pub cells_completed_external: AtomicU64,
    /// Nanoseconds spent draining at shutdown, updated live while the
    /// drain loop runs (so a `/metrics` scrape during drain sees it
    /// rising).
    pub drain_nanos: AtomicU64,
    /// Request latency, submission routes (`/v1/experiments`,
    /// `/v1/sweeps`, `/v1/calibrations`), microseconds.
    pub request_submit_us: AtomicHistogram,
    /// Request latency, `/v1/jobs/*` polls, microseconds.
    pub request_jobs_us: AtomicHistogram,
    /// Request latency, `/v1/work/*` (claim/complete), microseconds.
    pub request_work_us: AtomicHistogram,
    /// Request latency, every other route, microseconds.
    pub request_other_us: AtomicHistogram,
    /// Queue wait per job: enqueue → first lease or local pop,
    /// microseconds.
    pub queue_wait_us: AtomicHistogram,
    /// Job compute time (local workers measure it directly, external
    /// workers self-report via `WorkCompletion`), microseconds.
    pub job_compute_us: AtomicHistogram,
    /// External-worker round trip: lease grant → completion accepted,
    /// microseconds.
    pub claim_rtt_us: AtomicHistogram,
    /// Backoff sleep totals workers self-report with each claim,
    /// milliseconds.
    pub backoff_sleep_ms: AtomicHistogram,
    /// Server boot time, so the snapshot can report uptime without a
    /// wider `snapshot()` signature.
    boot: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            http_requests: AtomicU64::new(0),
            submissions: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            games_simulated: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            work_claims: AtomicU64::new(0),
            work_claim_empty: AtomicU64::new(0),
            work_completed: AtomicU64::new(0),
            work_duplicate: AtomicU64::new(0),
            lease_requeues: AtomicU64::new(0),
            requests_timed_out: AtomicU64::new(0),
            breaker_open_total: AtomicU64::new(0),
            cells_completed_external: AtomicU64::new(0),
            drain_nanos: AtomicU64::new(0),
            request_submit_us: AtomicHistogram::new(),
            request_jobs_us: AtomicHistogram::new(),
            request_work_us: AtomicHistogram::new(),
            request_other_us: AtomicHistogram::new(),
            queue_wait_us: AtomicHistogram::new(),
            job_compute_us: AtomicHistogram::new(),
            claim_rtt_us: AtomicHistogram::new(),
            backoff_sleep_ms: AtomicHistogram::new(),
            boot: Instant::now(),
        }
    }
}

impl Metrics {
    /// Picks the request-latency histogram for a route. Submissions,
    /// job polls and the worker protocol get their own distributions;
    /// everything else (health, metrics, shutdown) shares one.
    pub fn request_histogram(&self, path: &str) -> &AtomicHistogram {
        if path == "/v1/experiments" || path == "/v1/sweeps" || path == "/v1/calibrations" {
            &self.request_submit_us
        } else if path.starts_with("/v1/jobs/") {
            &self.request_jobs_us
        } else if path.starts_with("/v1/work/") {
            &self.request_work_us
        } else {
            &self.request_other_us
        }
    }

    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a high-water-mark gauge to `value` if it is higher.
    pub fn raise(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }

    /// Overwrites a gauge (used by the drain loop, whose elapsed time
    /// is monotone by construction).
    pub fn set(counter: &AtomicU64, value: u64) {
        counter.store(value, Ordering::Relaxed);
    }

    /// Builds the `/metrics` response body.
    pub fn snapshot(&self, queue_depth: usize, cached_results: usize, workers: usize) -> Snapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let hits = load(&self.cache_hits);
        let misses = load(&self.cache_misses);
        let games = load(&self.games_simulated);
        let busy = load(&self.busy_nanos);
        let completed = load(&self.jobs_completed);
        let failed = load(&self.jobs_failed);
        let job_seconds_total = busy as f64 / 1e9;
        Snapshot {
            schema: "ahn-serve-metrics/2".into(),
            http_requests: load(&self.http_requests),
            submissions: load(&self.submissions),
            cache_hits: hits,
            cache_misses: misses,
            coalesced: load(&self.coalesced),
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            rejected_queue_full: load(&self.rejected_queue_full),
            jobs_completed: completed,
            jobs_failed: failed,
            queue_depth: queue_depth as u64,
            queue_depth_peak: load(&self.queue_depth_peak),
            cached_results: cached_results as u64,
            workers: workers as u64,
            games_simulated: games,
            games_per_second: if busy == 0 {
                0.0
            } else {
                games as f64 / job_seconds_total
            },
            job_seconds_total,
            job_seconds_mean: if completed + failed == 0 {
                0.0
            } else {
                job_seconds_total / (completed + failed) as f64
            },
            work_claims: load(&self.work_claims),
            work_claim_empty: load(&self.work_claim_empty),
            work_completed: load(&self.work_completed),
            work_duplicate: load(&self.work_duplicate),
            lease_requeues: load(&self.lease_requeues),
            requests_timed_out: load(&self.requests_timed_out),
            breaker_open_total: load(&self.breaker_open_total),
            cells_completed_external: load(&self.cells_completed_external),
            drain_seconds: load(&self.drain_nanos) as f64 / 1e9,
            effective_threads: Some(ahn_core::threads::effective() as u64),
            uptime_seconds: Some(self.boot.elapsed().as_secs()),
            latency: Some(LatencySnapshot {
                request_submit_us: self.request_submit_us.snapshot(),
                request_jobs_us: self.request_jobs_us.snapshot(),
                request_work_us: self.request_work_us.snapshot(),
                request_other_us: self.request_other_us.snapshot(),
                queue_wait_us: self.queue_wait_us.snapshot(),
                job_compute_us: self.job_compute_us.snapshot(),
                claim_rtt_us: self.claim_rtt_us.snapshot(),
                backoff_sleep_ms: self.backoff_sleep_ms.snapshot(),
            }),
        }
    }
}

/// The latency-distribution block of a v2 snapshot: one
/// [`HistogramSnapshot`] per instrumented stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Request latency, submission routes, microseconds.
    pub request_submit_us: HistogramSnapshot,
    /// Request latency, `/v1/jobs/*` polls, microseconds.
    pub request_jobs_us: HistogramSnapshot,
    /// Request latency, `/v1/work/*` routes, microseconds.
    pub request_work_us: HistogramSnapshot,
    /// Request latency, every other route, microseconds.
    pub request_other_us: HistogramSnapshot,
    /// Job queue wait (enqueue → lease/pop), microseconds.
    pub queue_wait_us: HistogramSnapshot,
    /// Job compute time, microseconds.
    pub job_compute_us: HistogramSnapshot,
    /// External-worker claim→complete round trip, microseconds.
    pub claim_rtt_us: HistogramSnapshot,
    /// Worker-reported backoff sleep totals, milliseconds.
    pub backoff_sleep_ms: HistogramSnapshot,
}

/// One rendered `/metrics` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Report schema tag (`"ahn-serve-metrics/2"`; v1 reports omit the
    /// `uptime_seconds`/`latency` fields, which therefore stay
    /// [`Option`] so old captures still deserialize).
    pub schema: String,
    /// HTTP requests served, any route.
    pub http_requests: u64,
    /// Experiment submissions accepted.
    pub submissions: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// Submissions that enqueued a fresh job.
    pub cache_misses: u64,
    /// Submissions attached to an identical in-flight job.
    pub coalesced: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 before traffic.
    pub cache_hit_rate: f64,
    /// Submissions bounced with 503 because the queue was full.
    pub rejected_queue_full: u64,
    /// Jobs finished successfully.
    pub jobs_completed: u64,
    /// Jobs finished with an error.
    pub jobs_failed: u64,
    /// Jobs currently waiting for a worker.
    pub queue_depth: u64,
    /// Highest queue depth observed at any submission since boot.
    pub queue_depth_peak: u64,
    /// Results currently held by the LRU cache.
    pub cached_results: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Ad Hoc Network Games simulated by completed jobs.
    pub games_simulated: u64,
    /// `games_simulated` per worker-busy second — the serving-side
    /// counterpart of the bench harness's throughput number.
    pub games_per_second: f64,
    /// Worker seconds spent inside jobs since boot (compute, not
    /// queueing).
    pub job_seconds_total: f64,
    /// Mean compute seconds per finished job (completed + failed).
    pub job_seconds_mean: f64,
    /// Work leases granted to external workers.
    pub work_claims: u64,
    /// Work claims that found nothing to do.
    pub work_claim_empty: u64,
    /// External completions accepted.
    pub work_completed: u64,
    /// External completions discarded as duplicates.
    pub work_duplicate: u64,
    /// Expired leases requeued by the lazy sweep.
    pub lease_requeues: u64,
    /// Connections evicted by a read deadline mid-request.
    pub requests_timed_out: u64,
    /// Circuit-breaker trips reported by claiming workers.
    pub breaker_open_total: u64,
    /// Completions accepted from external workers (excluded from
    /// `games_simulated`, which counts local compute only).
    pub cells_completed_external: u64,
    /// Seconds spent draining at shutdown (rises live during a drain).
    pub drain_seconds: f64,
    /// Worker threads each experiment's rayon fan-out will use —
    /// `available_parallelism` capped by `AHN_THREADS` (the silent
    /// footgun this gauge surfaces). Absent in pre-PR-9 reports.
    pub effective_threads: Option<u64>,
    /// Seconds since server boot. Absent in v1 reports.
    pub uptime_seconds: Option<u64>,
    /// Latency distributions per instrumented stage. Absent in v1
    /// reports.
    pub latency: Option<LatencySnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_games_per_second() {
        let m = Metrics::default();
        let s = m.snapshot(0, 0, 2);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.games_per_second, 0.0);
        assert_eq!(s.job_seconds_mean, 0.0);

        Metrics::add(&m.cache_hits, 3);
        Metrics::add(&m.cache_misses, 1);
        Metrics::add(&m.games_simulated, 2_000_000);
        Metrics::add(&m.busy_nanos, 500_000_000); // 0.5 s
        Metrics::add(&m.jobs_completed, 2);
        let s = m.snapshot(4, 2, 2);
        assert!((s.cache_hit_rate - 0.75).abs() < 1e-12);
        assert!((s.games_per_second - 4_000_000.0).abs() < 1e-6);
        assert_eq!(s.queue_depth, 4);
        assert_eq!(s.cached_results, 2);
        assert!((s.job_seconds_total - 0.5).abs() < 1e-12);
        assert!((s.job_seconds_mean - 0.25).abs() < 1e-12);
    }

    #[test]
    fn peak_queue_depth_only_rises() {
        let m = Metrics::default();
        Metrics::raise(&m.queue_depth_peak, 3);
        Metrics::raise(&m.queue_depth_peak, 1);
        assert_eq!(m.snapshot(0, 0, 1).queue_depth_peak, 3);
        Metrics::raise(&m.queue_depth_peak, 7);
        assert_eq!(m.snapshot(0, 0, 1).queue_depth_peak, 7);
    }

    #[test]
    fn hardening_counters_flow_into_the_snapshot() {
        let m = Metrics::default();
        Metrics::bump(&m.requests_timed_out);
        Metrics::add(&m.breaker_open_total, 3);
        Metrics::add(&m.cells_completed_external, 7);
        Metrics::set(&m.drain_nanos, 1_500_000_000);
        let s = m.snapshot(0, 0, 1);
        assert_eq!(s.requests_timed_out, 1);
        assert_eq!(s.breaker_open_total, 3);
        assert_eq!(s.cells_completed_external, 7);
        assert!((s.drain_seconds - 1.5).abs() < 1e-12);
        // External completions never leak into the local-compute gauge.
        assert_eq!(s.games_simulated, 0);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let m = Metrics::default();
        m.request_submit_us.record(250);
        m.claim_rtt_us.record(9_000);
        let s = m.snapshot(1, 2, 3);
        assert_eq!(s.schema, "ahn-serve-metrics/2");
        assert!(s.uptime_seconds.is_some());
        let json = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let latency = back.latency.expect("v2 snapshot carries latency");
        assert_eq!(latency.request_submit_us.count, 1);
        assert_eq!(latency.claim_rtt_us.max, 9_000);
    }

    /// A snapshot captured by a v1 server (no `uptime_seconds`, no
    /// `latency`) must still deserialize — the new fields are `Option`
    /// precisely so archived reports and old dashboards keep working.
    #[test]
    fn v1_snapshot_still_deserializes() {
        let v1 = r#"{
            "schema": "ahn-serve-metrics/1",
            "http_requests": 10, "submissions": 4, "cache_hits": 1,
            "cache_misses": 3, "coalesced": 0, "cache_hit_rate": 0.25,
            "rejected_queue_full": 0, "jobs_completed": 3,
            "jobs_failed": 0, "queue_depth": 0, "queue_depth_peak": 2,
            "cached_results": 3, "workers": 2, "games_simulated": 900,
            "games_per_second": 1200.0, "job_seconds_total": 0.75,
            "job_seconds_mean": 0.25, "work_claims": 0,
            "work_claim_empty": 0, "work_completed": 0,
            "work_duplicate": 0, "lease_requeues": 0,
            "requests_timed_out": 0, "breaker_open_total": 0,
            "cells_completed_external": 0, "drain_seconds": 0.0
        }"#;
        let s: Snapshot = serde_json::from_str(v1).unwrap();
        assert_eq!(s.schema, "ahn-serve-metrics/1");
        assert_eq!(s.jobs_completed, 3);
        assert_eq!(s.uptime_seconds, None);
        assert_eq!(s.latency, None);
        assert_eq!(s.effective_threads, None);
    }

    #[test]
    fn effective_threads_is_reported_and_sane() {
        let m = Metrics::default();
        let s = m.snapshot(0, 0, 1);
        let t = s.effective_threads.expect("current snapshots report it");
        assert!(t >= 1);
        assert!(t <= ahn_core::threads::host_cores() as u64);
    }

    #[test]
    fn request_histograms_are_grouped_by_route() {
        let m = Metrics::default();
        m.request_histogram("/v1/experiments").record(10);
        m.request_histogram("/v1/sweeps").record(10);
        m.request_histogram("/v1/calibrations").record(10);
        m.request_histogram("/v1/jobs/42").record(20);
        m.request_histogram("/v1/work/claim").record(30);
        m.request_histogram("/v1/work/complete").record(30);
        m.request_histogram("/metrics").record(40);
        m.request_histogram("/healthz").record(40);
        assert_eq!(m.request_submit_us.count(), 3);
        assert_eq!(m.request_jobs_us.count(), 1);
        assert_eq!(m.request_work_us.count(), 2);
        assert_eq!(m.request_other_us.count(), 2);
    }
}
