//! `ahn_serve` — simulation-as-a-service for the ad hoc network game.
//!
//! Every experiment in this workspace is a pure function of
//! `(ExperimentConfig, CaseSpec, seed)` (tests/determinism.rs), which
//! makes results perfectly cacheable: two structurally identical
//! submissions must produce bit-identical answers. This crate exploits
//! that with a dependency-free HTTP/1.1 job server on
//! `std::net::TcpListener`:
//!
//! * [`server`] — routing, a bounded worker pool for experiment jobs,
//!   graceful shutdown; submissions that miss the cache return `202` +
//!   a job id to poll, identical in-flight submissions coalesce onto
//!   one job, and a full queue answers `503` instead of buffering
//!   unbounded work;
//! * [`cache`] — an LRU result cache keyed by
//!   [`ahn_core::config::canonical_hash`] of the resolved job spec;
//! * [`protocol`] — the JSON wire types ([`protocol::JobSpec`],
//!   acks, presets);
//! * [`jobs`] — the [`jobs::JobStore`] trait (in-memory and journal
//!   backends), job lifecycle, work leases and the single place compute
//!   happens;
//! * [`journal`] — the checksummed append-only completion journal
//!   behind checkpoint/resume;
//! * [`worker`] — the pull worker driving `POST /v1/work/claim` /
//!   `complete` (the `ahn-exp worker` subcommand);
//! * [`coordinator`] — distributed sweeps/calibrations: submit cells,
//!   checkpoint completions, merge bit-identically to the local fold;
//! * [`faults`] — the seeded [`faults::FlakyTransport`] chaos harness
//!   (drop/latency/stall/partial-write) behind the distributed tests
//!   and the `--chaos-*` worker flags;
//! * [`resilience`] — seeded decorrelated-jitter backoff and the
//!   [`resilience::CircuitBreaker`] transport wrapper (trip after N
//!   consecutive failures, half-open probe);
//! * [`metrics`] — `/metrics` counters: requests served, cache hit
//!   rate, queue depth, work claims/leases, games/s, the hardening
//!   counters (timeouts, breaker trips, drain time), plus the v2
//!   latency histograms (per-route requests, queue wait, compute,
//!   claim round trip, backoff sleeps) and uptime;
//! * [`http`] — the minimal HTTP/1.1 reader/writer both sides share;
//! * [`loadtest`] — a std-only load generator reporting
//!   p50/p90/p99/max latency, the full latency histogram and
//!   requests/s (the `ahn-exp loadtest` subcommand).
//!
//! Observability rides on [`ahn_obs`]: every node (serve, worker,
//! coordinator) takes an optional `--trace FILE` and appends one
//! checksummed JSON span event per lifecycle step, keyed by a trace id
//! every node derives from the cell's `canonical_hash` — so one cell's
//! submit → enqueue → lease → compute (with retries and breaker trips)
//! → complete → merge reconstructs across nodes with `ahn-exp trace`.
//!
//! # In-process round trip
//!
//! ```
//! use ahn_serve::{loadtest, server};
//!
//! let handle = server::spawn(server::ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 1,
//!     cache_cap: 16,
//!     queue_cap: 16,
//!     ..server::ServerConfig::default()
//! })
//! .unwrap();
//! let addr = handle.addr().to_string();
//!
//! let (status, body) = loadtest::one_shot(&addr, "GET", "/healthz", "").unwrap();
//! assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
//! handle.shutdown();
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod coordinator;
pub mod faults;
pub mod http;
pub mod jobs;
pub mod journal;
pub mod loadtest;
pub mod metrics;
pub mod protocol;
pub mod resilience;
pub mod server;
pub mod worker;

pub use coordinator::{
    run_calibration_via, run_calibration_via_traced, run_sweep_via, run_sweep_via_traced,
};
pub use faults::{FaultPlan, FlakyTransport};
pub use loadtest::{run_loadtest, LoadtestConfig, LoadtestReport};
pub use metrics::{LatencySnapshot, Snapshot};
pub use protocol::JobSpec;
pub use resilience::{Backoff, BackoffPolicy, CircuitBreaker};
pub use server::{spawn, ServerConfig, ServerHandle};
pub use worker::{
    run_worker, run_worker_observed, HttpTransport, Transport, WorkerConfig, WorkerReport,
    WorkerSummary, WorkerTelemetry,
};
