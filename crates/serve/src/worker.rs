//! The pull worker: leases cells from a serve node over
//! `POST /v1/work/claim`, computes them with the exact same
//! [`crate::jobs::run_job`] the server-side pool uses, and delivers
//! results via `POST /v1/work/complete` (the `ahn-exp worker`
//! subcommand).
//!
//! Determinism is free: a cell is a pure function of its resolved spec,
//! so *which* process computes it cannot change the bytes. The worker
//! still verifies the claimed spec's `canonical_hash` against the
//! server-supplied key before computing — a transport that corrupts a
//! spec turns into a loud failure, never a silently wrong cell.
//!
//! Delivery is at-least-once: a transport error after the server
//! applied a completion is retried, and the server answers
//! `{"status":"duplicate"}` for the replay (first completion wins).
//! The [`Transport`] trait is the seam the fault-injection harness
//! ([`crate::faults::FlakyTransport`]) and the resilience policies
//! ([`crate::resilience::CircuitBreaker`]) plug into. Retries sleep on
//! a seeded decorrelated-jitter backoff ([`crate::resilience::Backoff`])
//! instead of spinning hot at a fixed interval.

use crate::jobs::run_job;
use crate::loadtest::one_shot_deadlined;
use crate::protocol::{WorkCompletion, WorkGrant};
use crate::resilience::{Backoff, BackoffPolicy};
use ahn_obs::{trace_id_of_key, AtomicHistogram, HistogramSnapshot, TraceEvent, TraceLog};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One HTTP round trip, abstracted so tests can inject failures
/// deterministically. `Err` means the response was never observed — the
/// request may or may not have reached the server (exactly the
/// ambiguity a crashing worker produces).
pub trait Transport: Send {
    /// Performs `method path` with `body`, returning `(status, body)`.
    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, String), String>;

    /// Circuit-breaker trips observed by this transport stack so far
    /// (0 when no breaker is in the stack); wrappers delegate inward so
    /// the worker can report trips to the server regardless of
    /// stacking order.
    fn breaker_opens(&self) -> u64 {
        0
    }
}

/// Default per-call deadline of [`HttpTransport`], milliseconds: bounds
/// connect, send and receive so a stalled server cannot wedge a worker
/// (claims and completions are sub-second; compute happens locally).
pub const DEFAULT_TRANSPORT_DEADLINE_MS: u64 = 30_000;

/// The real transport: one fresh TCP connection per request (a worker
/// is idle-or-computing, so connection reuse buys nothing and fresh
/// connections survive server restarts). Every call runs under a
/// deadline — a worker never blocks forever on a wedged server.
#[derive(Debug, Clone)]
pub struct HttpTransport {
    addr: String,
    deadline: Option<Duration>,
}

impl HttpTransport {
    /// A transport talking to `addr` (`host:port`) with the default
    /// per-call deadline.
    pub fn new(addr: &str) -> HttpTransport {
        HttpTransport::with_deadline(addr, DEFAULT_TRANSPORT_DEADLINE_MS)
    }

    /// A transport with an explicit per-call deadline in milliseconds
    /// (0 disables the deadline — the pre-hardening behavior).
    pub fn with_deadline(addr: &str, deadline_ms: u64) -> HttpTransport {
        HttpTransport {
            addr: addr.into(),
            deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        }
    }
}

impl Transport for HttpTransport {
    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        one_shot_deadlined(&self.addr, method, path, body, self.deadline)
    }
}

/// Worker tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerConfig {
    /// Lease requested per claim, in milliseconds. Until it elapses the
    /// cell is this worker's; afterwards the server may requeue it.
    pub lease_ms: u64,
    /// Sleep between claims that found nothing (idle polling, not
    /// error retrying — retries use the backoff policy).
    pub poll_ms: u64,
    /// Stop after processing this many cells (0 = unlimited).
    pub max_cells: u64,
    /// Exit after this many *consecutive* empty claims (0 = keep
    /// polling forever; the operator kills the worker).
    pub idle_exit_polls: u64,
    /// Give up after this many consecutive transport errors.
    pub max_consecutive_errors: u64,
    /// Backoff between transport-error retries: exponential with
    /// seeded decorrelated jitter, reset on the first success.
    pub backoff: BackoffPolicy,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            lease_ms: crate::protocol::DEFAULT_LEASE_MS,
            poll_ms: 50,
            max_cells: 0,
            idle_exit_polls: 0,
            max_consecutive_errors: 25,
            backoff: BackoffPolicy::default(),
        }
    }
}

/// What a worker did before exiting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Results the server accepted.
    pub completed: u64,
    /// Cells that failed to compute (delivered as errors).
    pub failed: u64,
    /// Deliveries the server discarded as duplicates (another worker —
    /// or an earlier retry of this one — got there first).
    pub duplicates: u64,
    /// Results dropped because the server no longer knew the job
    /// (typically a server restart between claim and completion).
    pub dropped: u64,
    /// Claims that found the queue empty.
    pub empty_polls: u64,
    /// Transport errors survived (claim and completion combined).
    pub transport_errors: u64,
    /// Circuit-breaker trips observed by the transport stack.
    pub breaker_opens: u64,
}

/// Latency distributions a worker collected while running — returned by
/// [`run_worker_observed`] next to the counter report.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerTelemetry {
    /// Grant received → completion acknowledged, microseconds (the
    /// worker-side view of the server's `claim_rtt_us`).
    pub claim_rtt_us: HistogramSnapshot,
    /// `run_job` compute time per cell, microseconds.
    pub compute_us: HistogramSnapshot,
    /// Individual backoff sleeps, milliseconds.
    pub backoff_ms: HistogramSnapshot,
}

/// The worker's exit summary, printed by `ahn-exp worker` as one final
/// JSON line so fleet scripts can scrape per-worker stats without
/// parsing human-oriented stderr.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSummary {
    /// Report schema tag (`"ahn-worker-summary/1"`).
    pub schema: String,
    /// Results the server accepted.
    pub completed: u64,
    /// Cells delivered as errors.
    pub failed: u64,
    /// Deliveries discarded as duplicates.
    pub duplicates: u64,
    /// Results dropped because the server forgot the job.
    pub dropped: u64,
    /// Claims that found the queue empty.
    pub empty_polls: u64,
    /// Transport errors survived.
    pub transport_errors: u64,
    /// Circuit-breaker trips observed.
    pub breaker_opens: u64,
    /// Grant → completion-ack round trip, microseconds.
    pub claim_rtt_us: HistogramSnapshot,
    /// Per-cell compute time, microseconds.
    pub compute_us: HistogramSnapshot,
    /// Individual backoff sleeps, milliseconds.
    pub backoff_ms: HistogramSnapshot,
}

impl WorkerSummary {
    /// Folds a report and its telemetry into the printable summary.
    pub fn new(report: &WorkerReport, telemetry: &WorkerTelemetry) -> WorkerSummary {
        WorkerSummary {
            schema: "ahn-worker-summary/1".into(),
            completed: report.completed,
            failed: report.failed,
            duplicates: report.duplicates,
            dropped: report.dropped,
            empty_polls: report.empty_polls,
            transport_errors: report.transport_errors,
            breaker_opens: report.breaker_opens,
            claim_rtt_us: telemetry.claim_rtt_us.clone(),
            compute_us: telemetry.compute_us.clone(),
            backoff_ms: telemetry.backoff_ms.clone(),
        }
    }
}

/// Runs the claim → compute → complete loop until an exit condition of
/// `config` fires, returning what happened. `Err` means the worker gave
/// up (transport dead, or a protocol violation).
///
/// Each claim reports the breaker trips observed since the last
/// *acknowledged* claim (`breaker_trips` in the body), so the server's
/// `breaker_open_total` aggregates fleet-wide trips. The report is
/// at-least-once under faults: a delta whose claim response is lost is
/// re-sent with the next claim.
pub fn run_worker(
    transport: &mut dyn Transport,
    config: &WorkerConfig,
) -> Result<WorkerReport, String> {
    run_worker_observed(transport, config, None).map(|(report, _)| report)
}

/// [`run_worker`] with observability: collects latency histograms
/// (claim round trip, compute, backoff sleeps) and, when `trace` is
/// set, appends one span event per lifecycle step
/// (claim/compute/deliver/retry/breaker_open) so a cell's trail joins
/// with the server's via the grant's `trace_id`.
pub fn run_worker_observed(
    transport: &mut dyn Transport,
    config: &WorkerConfig,
    trace: Option<&TraceLog>,
) -> Result<(WorkerReport, WorkerTelemetry), String> {
    let telemetry = WorkerHistograms::default();
    let result = run_worker_loop(transport, config, trace, &telemetry);
    let telemetry = WorkerTelemetry {
        claim_rtt_us: telemetry.claim_rtt_us.snapshot(),
        compute_us: telemetry.compute_us.snapshot(),
        backoff_ms: telemetry.backoff_ms.snapshot(),
    };
    match result {
        Ok(mut report) => {
            report.breaker_opens = transport.breaker_opens();
            Ok((report, telemetry))
        }
        Err(e) => Err(e),
    }
}

/// Live histograms behind [`WorkerTelemetry`] (the worker is
/// single-threaded; [`AtomicHistogram`] is simply the zero-allocation
/// recorder we already have).
#[derive(Debug, Default)]
struct WorkerHistograms {
    claim_rtt_us: AtomicHistogram,
    compute_us: AtomicHistogram,
    backoff_ms: AtomicHistogram,
}

fn run_worker_loop(
    transport: &mut dyn Transport,
    config: &WorkerConfig,
    trace: Option<&TraceLog>,
    telemetry: &WorkerHistograms,
) -> Result<WorkerReport, String> {
    let emit = |event: TraceEvent| {
        if let Some(log) = trace {
            log.emit(event);
        }
    };
    // Records a backoff sleep everywhere it is taken: the histogram, the
    // next claim body (server-side sample) and the trace.
    let sleep_backoff = |backoff: &mut Backoff, pending_ms: &mut u64, trace_id: u64, why: &str| {
        let delay = backoff.next_delay();
        let delay_ms = delay.as_millis() as u64;
        telemetry.backoff_ms.record(delay_ms);
        *pending_ms += delay_ms;
        emit(
            TraceEvent::new(trace_id, "retry")
                .dur_us(delay.as_micros() as u64)
                .detail(why.to_owned()),
        );
        std::thread::sleep(delay);
    };

    let pause = Duration::from_millis(config.poll_ms.max(1));
    let mut backoff = Backoff::new(config.backoff);
    let mut report = WorkerReport::default();
    let mut consecutive_errors = 0u64;
    let mut idle_polls = 0u64;
    let mut processed = 0u64;
    let mut trips_reported = 0u64;
    let mut trips_traced = 0u64;
    // Backoff milliseconds slept since the last acknowledged claim,
    // reported in the next claim body (same at-least-once contract as
    // `breaker_trips`).
    let mut backoff_ms_pending = 0u64;

    loop {
        if config.max_cells > 0 && processed >= config.max_cells {
            return Ok(report);
        }
        let trips_now = transport.breaker_opens();
        if trips_now > trips_traced {
            // trace_id 0: a node-local event — the breaker is not tied
            // to any one cell.
            emit(TraceEvent::new(0, "breaker_open").detail(format!(
                "trips={} total={trips_now}",
                trips_now - trips_traced
            )));
            trips_traced = trips_now;
        }
        let claim_body = format!(
            "{{\"lease_ms\":{},\"breaker_trips\":{},\"backoff_ms\":{}}}",
            config.lease_ms,
            trips_now - trips_reported,
            backoff_ms_pending
        );
        let claim_started = Instant::now();
        let body = match transport.request("POST", "/v1/work/claim", &claim_body) {
            Ok((200, body)) => {
                trips_reported = trips_now;
                backoff_ms_pending = 0;
                body
            }
            Ok((status, body)) => return Err(format!("claim rejected: {status} {body}")),
            Err(e) => {
                report.transport_errors += 1;
                consecutive_errors += 1;
                if consecutive_errors >= config.max_consecutive_errors {
                    return Err(format!(
                        "giving up after {consecutive_errors} consecutive transport errors: {e}"
                    ));
                }
                sleep_backoff(&mut backoff, &mut backoff_ms_pending, 0, "claim failed");
                continue;
            }
        };
        consecutive_errors = 0;
        backoff.reset();

        let grant: WorkGrant = match serde_json::from_str(&body) {
            Ok(grant) => grant,
            Err(_) if body.contains("\"empty\"") => {
                report.empty_polls += 1;
                idle_polls += 1;
                if config.idle_exit_polls > 0 && idle_polls >= config.idle_exit_polls {
                    return Ok(report);
                }
                std::thread::sleep(pause);
                continue;
            }
            Err(e) => return Err(format!("cannot parse claim response: {e} in {body}")),
        };
        idle_polls = 0;
        // Echo the server's trace id; derive it from the key when an
        // old server omitted the field (same pure function both ends).
        let trace_id = grant.trace_id.unwrap_or_else(|| trace_id_of_key(grant.key));
        let granted_at = Instant::now();
        emit(
            TraceEvent::new(trace_id, "claim")
                .key(grant.key)
                .job(grant.job_id)
                .lease(grant.lease_id)
                .dur_us(claim_started.elapsed().as_micros() as u64),
        );

        // Per-cell idempotency check: the canonical hash of the spec we
        // are about to run must be the key the server indexed it under.
        let compute_started = Instant::now();
        let outcome = match grant.spec.cache_key() {
            Ok(key) if key == grant.key => run_job(&grant.spec),
            Ok(key) => Err(format!(
                "claimed spec hashes to {key:#018x} but the server granted key {:#018x} \
                 (corrupted claim?)",
                grant.key
            )),
            Err(e) => Err(e),
        };
        let compute_us = compute_started.elapsed().as_micros() as u64;
        telemetry.compute_us.record(compute_us);
        let succeeded = outcome.is_ok();
        emit(
            TraceEvent::new(trace_id, "compute")
                .key(grant.key)
                .job(grant.job_id)
                .lease(grant.lease_id)
                .dur_us(compute_us)
                .outcome(succeeded),
        );
        let completion = WorkCompletion {
            lease_id: grant.lease_id,
            job_id: grant.job_id,
            key: grant.key,
            result: outcome.as_ref().ok().cloned(),
            error: outcome.err(),
            trace_id: Some(trace_id),
            compute_us: Some(compute_us),
        };
        let completion_body = serde_json::to_string(&completion)
            .map_err(|e| format!("cannot serialize completion: {e}"))?;

        // Deliver at-least-once: retry transport errors until the
        // server answers; it deduplicates replays.
        loop {
            match transport.request("POST", "/v1/work/complete", &completion_body) {
                Ok((200, response)) => {
                    let duplicate = response.contains("\"duplicate\"");
                    if duplicate {
                        report.duplicates += 1;
                    } else if succeeded {
                        report.completed += 1;
                    } else {
                        report.failed += 1;
                    }
                    telemetry
                        .claim_rtt_us
                        .record(granted_at.elapsed().as_micros() as u64);
                    let mut deliver = TraceEvent::new(trace_id, "deliver")
                        .key(grant.key)
                        .job(grant.job_id)
                        .lease(grant.lease_id)
                        .outcome(true);
                    if duplicate {
                        deliver = deliver.detail("duplicate".into());
                    }
                    emit(deliver);
                    break;
                }
                Ok((404, _)) => {
                    // The server forgot the job (restart, pruning):
                    // nothing to deliver to; the cell will be
                    // resubmitted and recomputed identically.
                    report.dropped += 1;
                    emit(
                        TraceEvent::new(trace_id, "deliver")
                            .key(grant.key)
                            .job(grant.job_id)
                            .lease(grant.lease_id)
                            .outcome(false)
                            .detail("dropped: server forgot the job".into()),
                    );
                    break;
                }
                Ok((status, response)) => {
                    return Err(format!("completion rejected: {status} {response}"))
                }
                Err(e) => {
                    report.transport_errors += 1;
                    consecutive_errors += 1;
                    if consecutive_errors >= config.max_consecutive_errors {
                        return Err(format!(
                            "giving up after {consecutive_errors} consecutive transport \
                             errors: {e}"
                        ));
                    }
                    sleep_backoff(
                        &mut backoff,
                        &mut backoff_ms_pending,
                        trace_id,
                        "completion delivery failed",
                    );
                }
            }
        }
        consecutive_errors = 0;
        backoff.reset();
        processed += 1;
    }
}
