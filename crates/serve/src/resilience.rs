//! Retry backoff and circuit breaking for the worker's transport — the
//! client half of the crash-only hardening layer.
//!
//! Two policies compose here:
//!
//! * [`Backoff`] — exponential backoff with *decorrelated jitter*
//!   (Brooker's variant: each delay is drawn uniformly from
//!   `[base, 3 * previous]`, capped). The draw is a pure function of
//!   `(seed, draw index)` via SplitMix64, so a worker's retry schedule
//!   replays exactly — tests stay reproducible, yet two workers with
//!   different seeds never synchronize their retry storms.
//! * [`CircuitBreaker`] — wraps any [`Transport`]; after `threshold`
//!   consecutive failures it *opens* and fails calls instantly (no
//!   socket work) until `cooldown` elapses, then *half-opens*: exactly
//!   one probe call goes through, closing the breaker on success and
//!   re-opening it (a fresh trip) on failure.
//!
//! Neither policy touches result bytes: they only decide *when* a call
//! happens, so sweep output stays bit-identical under any schedule.

use crate::faults::splitmix64;
use crate::worker::Transport;
use std::time::{Duration, Instant};

/// Knobs for [`Backoff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Smallest delay, milliseconds (also the first delay's lower
    /// bound).
    pub base_ms: u64,
    /// Largest delay, milliseconds.
    pub cap_ms: u64,
    /// Jitter seed; same seed, same schedule, every run.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 50,
            cap_ms: 5_000,
            seed: 0x5EED,
        }
    }
}

/// Decorrelated-jitter backoff state: call [`Backoff::next_delay`] per
/// failed attempt, [`Backoff::reset`] after a success.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    prev_ms: u64,
    draws: u64,
}

impl Backoff {
    /// Fresh state for `policy` (first delay starts from `base_ms`).
    pub fn new(policy: BackoffPolicy) -> Backoff {
        Backoff {
            prev_ms: policy.base_ms,
            draws: 0,
            policy,
        }
    }

    /// The next delay: uniform in `[base, 3 * previous]`, capped at
    /// `cap_ms`. Deterministic — the `draws` counter indexes the
    /// seeded stream, so the schedule ignores wall-clock entirely.
    pub fn next_delay(&mut self) -> Duration {
        let base = self.policy.base_ms.max(1);
        let cap = self.policy.cap_ms.max(base);
        let span = (self.prev_ms.saturating_mul(3)).clamp(base, cap) - base;
        let roll = splitmix64(
            self.policy
                .seed
                .wrapping_add(self.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        self.draws += 1;
        let delay = base + if span == 0 { 0 } else { roll % (span + 1) };
        self.prev_ms = delay;
        Duration::from_millis(delay)
    }

    /// Returns to the base delay after a success.
    pub fn reset(&mut self) {
        self.prev_ms = self.policy.base_ms;
    }
}

/// Breaker state: closed (counting failures), or open since an instant
/// (failing fast until the cooldown elapses, then half-open).
#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
}

/// A [`Transport`] wrapper that trips after `threshold` consecutive
/// failures and fails fast while open; after `cooldown` it lets one
/// probe through (half-open). `threshold == 0` disables the breaker.
#[derive(Debug)]
pub struct CircuitBreaker<T: Transport> {
    inner: T,
    threshold: u32,
    cooldown: Duration,
    state: BreakerState,
    opens: u64,
}

impl<T: Transport> CircuitBreaker<T> {
    /// Wraps `inner`: trip after `threshold` consecutive failures, fail
    /// fast for `cooldown` before each half-open probe.
    pub fn new(inner: T, threshold: u32, cooldown: Duration) -> CircuitBreaker<T> {
        CircuitBreaker {
            inner,
            threshold,
            cooldown,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
            opens: 0,
        }
    }

    /// Times the breaker has tripped (closed/half-open -> open).
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// The wrapped transport (e.g. to read chaos-harness counters).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// True while calls fail fast (open and still cooling down).
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { since } if since.elapsed() < self.cooldown)
    }

    fn record(&mut self, failed: bool) {
        if !failed {
            self.state = BreakerState::Closed {
                consecutive_failures: 0,
            };
            return;
        }
        let failures = match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => consecutive_failures + 1,
            // A failed half-open probe re-trips immediately.
            BreakerState::Open { .. } => self.threshold,
        };
        if self.threshold > 0 && failures >= self.threshold {
            self.state = BreakerState::Open {
                since: Instant::now(),
            };
            self.opens += 1;
        } else {
            self.state = BreakerState::Closed {
                consecutive_failures: failures,
            };
        }
    }
}

impl<T: Transport> Transport for CircuitBreaker<T> {
    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        if self.is_open() {
            return Err(format!(
                "breaker open: failing fast for {:?} more",
                self.cooldown.saturating_sub(match self.state {
                    BreakerState::Open { since } => since.elapsed(),
                    BreakerState::Closed { .. } => Duration::ZERO,
                })
            ));
        }
        let outcome = self.inner.request(method, path, body);
        self.record(outcome.is_err());
        outcome
    }

    fn breaker_opens(&self) -> u64 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scripted {
        /// `true` entries fail, consumed front to back; exhausted
        /// entries succeed.
        failures: Vec<bool>,
        calls: u64,
    }

    impl Transport for Scripted {
        fn request(&mut self, _m: &str, _p: &str, _b: &str) -> Result<(u16, String), String> {
            let fail = if self.failures.is_empty() {
                false
            } else {
                self.failures.remove(0)
            };
            self.calls += 1;
            if fail {
                Err("scripted failure".into())
            } else {
                Ok((200, "{}".into()))
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = BackoffPolicy {
            base_ms: 10,
            cap_ms: 200,
            seed: 42,
        };
        let mut a = Backoff::new(policy);
        let mut b = Backoff::new(policy);
        let first: Vec<u64> = (0..16).map(|_| a.next_delay().as_millis() as u64).collect();
        let second: Vec<u64> = (0..16).map(|_| b.next_delay().as_millis() as u64).collect();
        assert_eq!(first, second, "same seed, same schedule");
        assert!(first.iter().all(|&d| (10..=200).contains(&d)));
        // Another seed decorrelates the schedule.
        let mut c = Backoff::new(BackoffPolicy { seed: 43, ..policy });
        let third: Vec<u64> = (0..16).map(|_| c.next_delay().as_millis() as u64).collect();
        assert_ne!(first, third);
        // Reset returns the growth to the base rung.
        a.reset();
        assert!(
            a.next_delay().as_millis() as u64 <= 30,
            "post-reset delay is near base"
        );
    }

    #[test]
    fn breaker_trips_after_threshold_and_half_open_probe_closes_it() {
        let scripted = Scripted {
            // 3 failures trip it; the probe succeeds and closes it.
            failures: vec![true, true, true],
            calls: 0,
        };
        let mut breaker = CircuitBreaker::new(scripted, 3, Duration::ZERO);
        for _ in 0..3 {
            assert!(breaker.request("GET", "/", "").is_err());
        }
        assert_eq!(breaker.opens(), 1);
        // Zero cooldown: the next call is the half-open probe; it
        // succeeds, so the breaker closes and stays closed.
        assert!(breaker.request("GET", "/", "").is_ok());
        assert!(breaker.request("GET", "/", "").is_ok());
        assert_eq!(breaker.opens(), 1);
        assert_eq!(breaker.breaker_opens(), 1);
    }

    #[test]
    fn open_breaker_fails_fast_without_calling_inner() {
        let scripted = Scripted {
            failures: vec![true, true],
            calls: 0,
        };
        let mut breaker = CircuitBreaker::new(scripted, 2, Duration::from_secs(3600));
        assert!(breaker.request("GET", "/", "").is_err());
        assert!(breaker.request("GET", "/", "").is_err());
        assert!(breaker.is_open());
        // Cooling down: fails fast, the inner transport never sees it.
        assert!(breaker
            .request("GET", "/", "")
            .unwrap_err()
            .contains("breaker open"));
        assert_eq!(breaker.inner.calls, 2);
        assert_eq!(breaker.opens(), 1);
    }

    #[test]
    fn failed_probe_reopens_and_counts_a_fresh_trip() {
        let scripted = Scripted {
            failures: vec![true, true, true, false],
            calls: 0,
        };
        let mut breaker = CircuitBreaker::new(scripted, 2, Duration::ZERO);
        assert!(breaker.request("GET", "/", "").is_err());
        assert!(breaker.request("GET", "/", "").is_err()); // trip 1
        assert!(breaker.request("GET", "/", "").is_err()); // probe fails -> trip 2
        assert_eq!(breaker.opens(), 2);
        assert!(breaker.request("GET", "/", "").is_ok()); // probe succeeds
        assert_eq!(breaker.opens(), 2);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let scripted = Scripted {
            failures: vec![true; 32],
            calls: 0,
        };
        let mut breaker = CircuitBreaker::new(scripted, 0, Duration::from_secs(3600));
        for _ in 0..32 {
            assert!(breaker.request("GET", "/", "").is_err());
        }
        assert_eq!(breaker.opens(), 0);
        assert_eq!(breaker.inner.calls, 32, "every call reached the transport");
    }
}
