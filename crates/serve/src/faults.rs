//! Deterministic fault injection for the distributed layer — the
//! `FlakyTransport` test double behind `crates/serve/tests`.
//!
//! A [`FlakyTransport`] wraps any [`Transport`] and injects failures on
//! a schedule that is a pure function of `(seed, call index)`, so every
//! test failure replays exactly. Two injectable faults map to the two
//! real-world ambiguities of a crashing worker:
//!
//! * **drop-request** — the request never reaches the server (worker
//!   died before sending; the server state is untouched);
//! * **drop-response** — the server processed the request but the
//!   caller never saw the answer (worker died after sending; retrying a
//!   completion now produces a *duplicate*).
//!
//! A hard cutoff ([`FaultPlan::die_after_calls`]) turns the transport
//! permanently dead mid-run — the "kill -9 a worker / coordinator"
//! scenario for crash-resume tests.

use crate::worker::Transport;

/// Which fault (if any) a call suffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The call goes through untouched.
    None,
    /// The request is lost before reaching the server.
    DropRequest,
    /// The server processes the request; the response is lost.
    DropResponse,
}

/// A seeded, deterministic failure schedule.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Schedule seed; same seed, same faults, every run.
    pub seed: u64,
    /// Percent of calls whose request is dropped (0–100).
    pub drop_request_percent: u8,
    /// Percent of calls whose response is dropped (0–100).
    pub drop_response_percent: u8,
    /// All calls from this index on fail permanently (a dead process).
    pub die_after_calls: Option<u64>,
}

impl FaultPlan {
    /// A schedule that never injects anything.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_request_percent: 0,
            drop_response_percent: 0,
            die_after_calls: None,
        }
    }

    /// The fault assigned to call number `call` (0-based) — pure, so
    /// tests can predict and assert the schedule.
    pub fn fault_for(&self, call: u64) -> Fault {
        let roll = (splitmix64(self.seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 100) as u8;
        if roll < self.drop_request_percent {
            Fault::DropRequest
        } else if roll
            < self
                .drop_request_percent
                .saturating_add(self.drop_response_percent)
        {
            Fault::DropResponse
        } else {
            Fault::None
        }
    }
}

/// SplitMix64: one multiply-xor-shift chain per draw; statistically
/// plenty for a failure schedule and dependency-free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Transport`] wrapper injecting the faults of a [`FaultPlan`].
#[derive(Debug)]
pub struct FlakyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    calls: u64,
    injected: u64,
}

impl<T: Transport> FlakyTransport<T> {
    /// Wraps `inner` with the failure schedule `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> FlakyTransport<T> {
        FlakyTransport {
            inner,
            plan,
            calls: 0,
            injected: 0,
        }
    }

    /// Calls attempted so far (including injected failures).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl<T: Transport> Transport for FlakyTransport<T> {
    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        let call = self.calls;
        self.calls += 1;
        if let Some(cutoff) = self.plan.die_after_calls {
            if call >= cutoff {
                self.injected += 1;
                return Err(format!("injected: transport dead since call {cutoff}"));
            }
        }
        match self.plan.fault_for(call) {
            Fault::None => self.inner.request(method, path, body),
            Fault::DropRequest => {
                self.injected += 1;
                Err(format!("injected: request {call} lost before send"))
            }
            Fault::DropResponse => {
                self.injected += 1;
                // The server really processes this one; only the answer
                // is lost — the retry-then-duplicate path.
                let _ = self.inner.request(method, path, body);
                Err(format!("injected: response to request {call} lost"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Transport for Echo {
        fn request(&mut self, _m: &str, path: &str, _b: &str) -> Result<(u16, String), String> {
            Ok((200, path.to_owned()))
        }
    }

    #[test]
    fn schedule_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan {
            seed: 7,
            drop_request_percent: 20,
            drop_response_percent: 10,
            die_after_calls: None,
        };
        let first: Vec<Fault> = (0..64).map(|c| plan.fault_for(c)).collect();
        let second: Vec<Fault> = (0..64).map(|c| plan.fault_for(c)).collect();
        assert_eq!(first, second);
        let injected = first.iter().filter(|f| **f != Fault::None).count();
        assert!(injected > 0, "a 30% plan should hit within 64 calls");
        assert!(injected < 40, "a 30% plan should not hit most calls");
        // A different seed reshuffles the schedule.
        let other = FaultPlan { seed: 8, ..plan };
        assert_ne!(
            first,
            (0..64).map(|c| other.fault_for(c)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn faults_surface_as_errors_and_death_is_permanent() {
        let plan = FaultPlan {
            seed: 1,
            drop_request_percent: 0,
            drop_response_percent: 0,
            die_after_calls: Some(2),
        };
        let mut flaky = FlakyTransport::new(Echo, plan);
        assert!(flaky.request("GET", "/a", "").is_ok());
        assert!(flaky.request("GET", "/b", "").is_ok());
        assert!(flaky.request("GET", "/c", "").is_err());
        assert!(flaky.request("GET", "/d", "").is_err());
        assert_eq!((flaky.calls(), flaky.injected()), (4, 2));
    }

    #[test]
    fn none_plan_is_transparent() {
        let mut flaky = FlakyTransport::new(Echo, FaultPlan::none());
        for i in 0..32 {
            assert_eq!(
                flaky.request("GET", &format!("/{i}"), "").unwrap().1,
                format!("/{i}")
            );
        }
        assert_eq!(flaky.injected(), 0);
    }
}
