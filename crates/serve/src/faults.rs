//! Deterministic fault injection for the distributed layer — the
//! `FlakyTransport` chaos harness behind `crates/serve/tests` and the
//! `ahn-exp worker --chaos-*` flags.
//!
//! A [`FlakyTransport`] wraps any [`Transport`] and injects failures on
//! a schedule that is a pure function of `(seed, call index)`, so every
//! test failure replays exactly. The injectable faults map to the
//! real-world ambiguities of an unreliable network:
//!
//! * **drop-request** — the request never reaches the server (worker
//!   died before sending; the server state is untouched);
//! * **drop-response** — the server processed the request but the
//!   caller never saw the answer (worker died after sending; retrying a
//!   completion now produces a *duplicate*);
//! * **latency** — the call succeeds after an injected delay (a
//!   congested link; exercises lease expiry and read deadlines);
//! * **stall** — the call burns its delay *and then* the response is
//!   lost (a wedged peer; the worst of both);
//! * **partial write** — only a prefix of the request body reaches the
//!   server (a connection cut mid-send): the server sees a malformed
//!   request and the caller sees an error, so both sides exercise
//!   their torn-input paths.
//!
//! A hard cutoff ([`FaultPlan::die_after_calls`]) turns the transport
//! permanently dead mid-run — the "kill -9 a worker / coordinator"
//! scenario for crash-resume tests.

use crate::worker::Transport;

/// Which fault (if any) a call suffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The call goes through untouched.
    None,
    /// The request is lost before reaching the server.
    DropRequest,
    /// The server processes the request; the response is lost.
    DropResponse,
    /// The call succeeds after [`FaultPlan::latency_ms`] of delay.
    Latency,
    /// The call sleeps [`FaultPlan::stall_ms`], then the response is
    /// lost (the server did process the request).
    Stall,
    /// Only a prefix of the body reaches the server; the caller sees
    /// an error.
    PartialWrite,
}

/// A seeded, deterministic failure schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Schedule seed; same seed, same faults, every run.
    pub seed: u64,
    /// Percent of calls whose request is dropped (0–100).
    pub drop_request_percent: u8,
    /// Percent of calls whose response is dropped (0–100).
    pub drop_response_percent: u8,
    /// Percent of calls delayed by [`FaultPlan::latency_ms`] (0–100).
    pub latency_percent: u8,
    /// Injected delay for [`Fault::Latency`] calls, milliseconds.
    pub latency_ms: u64,
    /// Percent of calls that stall for [`FaultPlan::stall_ms`] and then
    /// lose their response (0–100).
    pub stall_percent: u8,
    /// Injected delay for [`Fault::Stall`] calls, milliseconds.
    pub stall_ms: u64,
    /// Percent of calls whose body is truncated mid-send (0–100).
    pub partial_write_percent: u8,
    /// All calls from this index on fail permanently (a dead process).
    pub die_after_calls: Option<u64>,
}

impl FaultPlan {
    /// A schedule that never injects anything.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_request_percent: 0,
            drop_response_percent: 0,
            latency_percent: 0,
            latency_ms: 0,
            stall_percent: 0,
            stall_ms: 0,
            partial_write_percent: 0,
            die_after_calls: None,
        }
    }

    /// True when at least one fault mode has a non-zero probability.
    pub fn is_active(&self) -> bool {
        self.drop_request_percent > 0
            || self.drop_response_percent > 0
            || self.latency_percent > 0
            || self.stall_percent > 0
            || self.partial_write_percent > 0
            || self.die_after_calls.is_some()
    }

    /// The fault assigned to call number `call` (0-based) — pure, so
    /// tests can predict and assert the schedule. Modes partition the
    /// percentage roll in declaration order.
    pub fn fault_for(&self, call: u64) -> Fault {
        let roll = (splitmix64(self.seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 100) as u8;
        let bands = [
            (self.drop_request_percent, Fault::DropRequest),
            (self.drop_response_percent, Fault::DropResponse),
            (self.latency_percent, Fault::Latency),
            (self.stall_percent, Fault::Stall),
            (self.partial_write_percent, Fault::PartialWrite),
        ];
        let mut upper = 0u8;
        for (percent, fault) in bands {
            upper = upper.saturating_add(percent);
            if roll < upper {
                return fault;
            }
        }
        Fault::None
    }
}

/// SplitMix64: one multiply-xor-shift chain per draw; statistically
/// plenty for a failure schedule and dependency-free. Shared with the
/// decorrelated-jitter backoff of [`crate::resilience`].
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Transport`] wrapper injecting the faults of a [`FaultPlan`].
#[derive(Debug)]
pub struct FlakyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    calls: u64,
    injected: u64,
}

impl<T: Transport> FlakyTransport<T> {
    /// Wraps `inner` with the failure schedule `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> FlakyTransport<T> {
        FlakyTransport {
            inner,
            plan,
            calls: 0,
            injected: 0,
        }
    }

    /// Calls attempted so far (including injected failures).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl<T: Transport> Transport for FlakyTransport<T> {
    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        let call = self.calls;
        self.calls += 1;
        if let Some(cutoff) = self.plan.die_after_calls {
            if call >= cutoff {
                self.injected += 1;
                return Err(format!("injected: transport dead since call {cutoff}"));
            }
        }
        match self.plan.fault_for(call) {
            Fault::None => self.inner.request(method, path, body),
            Fault::DropRequest => {
                self.injected += 1;
                Err(format!("injected: request {call} lost before send"))
            }
            Fault::DropResponse => {
                self.injected += 1;
                // The server really processes this one; only the answer
                // is lost — the retry-then-duplicate path.
                let _ = self.inner.request(method, path, body);
                Err(format!("injected: response to request {call} lost"))
            }
            Fault::Latency => {
                self.injected += 1;
                std::thread::sleep(std::time::Duration::from_millis(self.plan.latency_ms));
                self.inner.request(method, path, body)
            }
            Fault::Stall => {
                self.injected += 1;
                std::thread::sleep(std::time::Duration::from_millis(self.plan.stall_ms));
                let _ = self.inner.request(method, path, body);
                Err(format!("injected: request {call} stalled, response lost"))
            }
            Fault::PartialWrite => {
                self.injected += 1;
                // Send a valid-HTTP request carrying a truncated body:
                // the server parses it, rejects the torn JSON, and must
                // not corrupt any state doing so.
                let cut = (0..=body.len() / 2)
                    .rev()
                    .find(|i| body.is_char_boundary(*i))
                    .unwrap_or(0);
                let _ = self.inner.request(method, path, &body[..cut]);
                Err(format!("injected: request {call} body cut at byte {cut}"))
            }
        }
    }

    fn breaker_opens(&self) -> u64 {
        self.inner.breaker_opens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Transport for Echo {
        fn request(&mut self, _m: &str, path: &str, _b: &str) -> Result<(u16, String), String> {
            Ok((200, path.to_owned()))
        }
    }

    #[test]
    fn schedule_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan {
            seed: 7,
            drop_request_percent: 20,
            drop_response_percent: 10,
            ..FaultPlan::none()
        };
        let first: Vec<Fault> = (0..64).map(|c| plan.fault_for(c)).collect();
        let second: Vec<Fault> = (0..64).map(|c| plan.fault_for(c)).collect();
        assert_eq!(first, second);
        let injected = first.iter().filter(|f| **f != Fault::None).count();
        assert!(injected > 0, "a 30% plan should hit within 64 calls");
        assert!(injected < 40, "a 30% plan should not hit most calls");
        // A different seed reshuffles the schedule.
        let other = FaultPlan { seed: 8, ..plan };
        assert_ne!(
            first,
            (0..64).map(|c| other.fault_for(c)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn faults_surface_as_errors_and_death_is_permanent() {
        let plan = FaultPlan {
            seed: 1,
            die_after_calls: Some(2),
            ..FaultPlan::none()
        };
        let mut flaky = FlakyTransport::new(Echo, plan);
        assert!(flaky.request("GET", "/a", "").is_ok());
        assert!(flaky.request("GET", "/b", "").is_ok());
        assert!(flaky.request("GET", "/c", "").is_err());
        assert!(flaky.request("GET", "/d", "").is_err());
        assert_eq!((flaky.calls(), flaky.injected()), (4, 2));
    }

    #[test]
    fn chaos_modes_partition_the_roll_and_surface_as_planned() {
        let plan = FaultPlan {
            seed: 11,
            latency_percent: 25,
            latency_ms: 0,
            stall_percent: 25,
            stall_ms: 0,
            partial_write_percent: 25,
            ..FaultPlan::none()
        };
        assert!(plan.is_active());
        let faults: Vec<Fault> = (0..128).map(|c| plan.fault_for(c)).collect();
        for mode in [Fault::Latency, Fault::Stall, Fault::PartialWrite] {
            assert!(
                faults.contains(&mode),
                "a 25% band should hit within 128 calls: {mode:?}"
            );
        }
        let mut flaky = FlakyTransport::new(Echo, plan);
        let mut latency_ok = 0u64;
        let mut errors = 0u64;
        for call in 0..128u64 {
            match flaky.request("GET", "/x", "abcdef") {
                Ok(_) if plan.fault_for(call) == Fault::Latency => latency_ok += 1,
                Ok(_) => {}
                Err(e) => {
                    assert!(e.starts_with("injected:"), "unexpected error {e}");
                    errors += 1;
                }
            }
        }
        assert!(latency_ok > 0, "latency calls succeed after the delay");
        assert!(errors > 0, "stall and partial-write calls error");
        assert!(!FaultPlan::none().is_active());
    }

    #[test]
    fn none_plan_is_transparent() {
        let mut flaky = FlakyTransport::new(Echo, FaultPlan::none());
        for i in 0..32 {
            assert_eq!(
                flaky.request("GET", &format!("/{i}"), "").unwrap().1,
                format!("/{i}")
            );
        }
        assert_eq!(flaky.injected(), 0);
    }
}
