//! A minimal HTTP/1.1 reader/writer over `std::net::TcpStream`.
//!
//! Only the slice of the protocol the job server and the load-test
//! client speak: request line, headers, `Content-Length` bodies,
//! keep-alive connections. No chunked encoding, no TLS, no HTTP/2 —
//! deliberately, so the server has zero dependencies beyond `std` and
//! the vendored JSON codec.
//!
//! Server-side reads run under [`Deadlines`]: an idle keep-alive limit
//! on waiting for a request to start, and a total per-request budget
//! once it has — the slowloris defense of the hardening layer.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest accepted request body (64 MiB) — a guard against a client
/// (or a typo'd `Content-Length`) pinning server memory.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Longest accepted request/status/header line. Lines are read through
/// a [`Read::take`] limit so a peer streaming bytes with no newline
/// cannot grow a `String` without bound.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Most headers accepted per message — the same guard for a peer
/// streaming endless short header lines.
pub const MAX_HEADERS: usize = 100;

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`] bytes.
///
/// Returns `Ok(None)` on clean EOF before the first byte; over-long
/// lines and EOF mid-line are `InvalidData` errors.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> io::Result<Option<()>> {
    let mut limited = Read::take(&mut *reader, MAX_LINE_BYTES as u64);
    let n = limited.read_line(line)?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            if n == MAX_LINE_BYTES {
                "line exceeds the size limit"
            } else {
                "EOF inside a line"
            },
        ));
    }
    Ok(Some(()))
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased as received.
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Decoded request body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
    /// True when the client asked for `Connection: close`.
    pub close: bool,
}

/// The outcome of reading one request off a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The peer closed the connection cleanly between requests — or sat
    /// idle past the keep-alive deadline without sending a byte (an
    /// idle eviction is indistinguishable from a clean close and is
    /// treated the same: silently hang up).
    Closed,
    /// The bytes on the wire were not valid HTTP.
    Malformed(String),
    /// The peer started a request but a read deadline expired before it
    /// was complete (slowloris): the caller answers 408 and hangs up.
    TimedOut,
}

/// Read deadlines for one request (see [`read_request_deadlined`]).
/// `None` disables the corresponding deadline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadlines {
    /// Longest a keep-alive connection may sit idle waiting for the
    /// next request to *start*. Expiry with zero bytes read is a clean
    /// close; expiry with a partial request line is a timeout.
    pub idle: Option<Duration>,
    /// Total budget for reading the rest of a request (headers + body)
    /// once its request line has arrived. A drip-feeding client cannot
    /// stretch it: the remaining budget shrinks across reads.
    pub request: Option<Duration>,
}

/// True when an I/O error is a socket read/write deadline expiring
/// (`WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one HTTP/1.1 request with no deadlines (the pre-hardening
/// behavior; test and client-side helper).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<ReadOutcome> {
    read_request_deadlined(reader, &Deadlines::default())
}

/// Reads one HTTP/1.1 request from `reader`, enforcing `deadlines`
/// through `TcpStream::set_read_timeout` on the underlying socket.
///
/// Returns [`ReadOutcome::Closed`] on clean EOF (or idle expiry) before
/// the first byte, [`ReadOutcome::Malformed`] (with a human reason) on
/// garbage, and [`ReadOutcome::TimedOut`] when a deadline expired with
/// a request partially on the wire.
pub fn read_request_deadlined(
    reader: &mut BufReader<TcpStream>,
    deadlines: &Deadlines,
) -> io::Result<ReadOutcome> {
    reader.get_ref().set_read_timeout(deadlines.idle)?;
    let mut line = String::new();
    match read_line_bounded(reader, &mut line) {
        Ok(None) => return Ok(ReadOutcome::Closed),
        Ok(Some(())) => {}
        Err(e) if is_timeout(&e) => {
            // Zero bytes -> the connection was merely idle; partial
            // bytes -> a stalling client holding a thread hostage.
            return Ok(if line.is_empty() {
                ReadOutcome::Closed
            } else {
                ReadOutcome::TimedOut
            });
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return Ok(ReadOutcome::Malformed(e.to_string()))
        }
        Err(e) => return Err(e),
    }
    // The request line is in: the rest of the message runs against one
    // total budget, re-armed with the *remaining* time before every
    // read so slow dripping cannot extend it.
    let deadline = deadlines.request.map(|budget| Instant::now() + budget);
    if let Err(outcome) = arm_remaining(reader, deadline) {
        return Ok(outcome);
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_uppercase(), t),
        _ => {
            return Ok(ReadOutcome::Malformed(format!(
                "bad request line {:?}",
                line.trim_end()
            )))
        }
    };
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut content_length = 0usize;
    let mut close = false;
    let mut headers_seen = 0usize;
    loop {
        headers_seen += 1;
        if headers_seen > MAX_HEADERS {
            return Ok(ReadOutcome::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        if let Err(outcome) = arm_remaining(reader, deadline) {
            return Ok(outcome);
        }
        let mut header = String::new();
        match read_line_bounded(reader, &mut header) {
            Ok(None) => return Ok(ReadOutcome::Malformed("EOF inside headers".into())),
            Ok(Some(())) => {}
            Err(e) if is_timeout(&e) => return Ok(ReadOutcome::TimedOut),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Ok(ReadOutcome::Malformed(e.to_string()))
            }
            Err(e) => return Err(e),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => match value.parse::<usize>() {
                    Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                    _ => {
                        return Ok(ReadOutcome::Malformed(format!(
                            "unacceptable Content-Length {value:?}"
                        )))
                    }
                },
                "connection" => close = value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
    }

    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        if let Err(outcome) = arm_remaining(reader, deadline) {
            return Ok(outcome);
        }
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Ok(ReadOutcome::Malformed("EOF inside the body".into())),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => return Ok(ReadOutcome::TimedOut),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        body,
        close,
    }))
}

/// Re-arms the socket read timeout with the time left until `deadline`
/// (no-op when there is no deadline). `Err(TimedOut)` when the budget
/// is already spent.
fn arm_remaining(
    reader: &mut BufReader<TcpStream>,
    deadline: Option<Instant>,
) -> Result<(), ReadOutcome> {
    let Some(deadline) = deadline else {
        // No request budget: drop back to blocking reads so a deadline
        // armed for the idle wait does not outlive its phase.
        let _ = reader.get_ref().set_read_timeout(None);
        return Ok(());
    };
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ReadOutcome::TimedOut);
    }
    match reader.get_ref().set_read_timeout(Some(remaining)) {
        Ok(()) => Ok(()),
        // A socket so broken it cannot set options reads as timed out.
        Err(_) => Err(ReadOutcome::TimedOut),
    }
}

/// Writes one HTTP/1.1 response with a JSON body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one HTTP response (the client side), returning
/// `(status, body)`.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, String)> {
    let mut line = String::new();
    if read_line_bounded(reader, &mut line)?.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {:?}", line.trim_end()),
            )
        })?;

    let mut content_length = 0usize;
    let mut headers_seen = 0usize;
    loop {
        headers_seen += 1;
        if headers_seen > MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many response headers",
            ));
        }
        let mut header = String::new();
        if read_line_bounded(reader, &mut header)?.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside response headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad response Content-Length")
                })?;
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
    Ok((status, body))
}

/// Sends one request on an open client connection.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\n\
         Host: ahn-serve\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
