//! A minimal HTTP/1.1 reader/writer over `std::net::TcpStream`.
//!
//! Only the slice of the protocol the job server and the load-test
//! client speak: request line, headers, `Content-Length` bodies,
//! keep-alive connections. No chunked encoding, no TLS, no HTTP/2 —
//! deliberately, so the server has zero dependencies beyond `std` and
//! the vendored JSON codec.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (64 MiB) — a guard against a client
/// (or a typo'd `Content-Length`) pinning server memory.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Longest accepted request/status/header line. Lines are read through
/// a [`Read::take`] limit so a peer streaming bytes with no newline
/// cannot grow a `String` without bound.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Most headers accepted per message — the same guard for a peer
/// streaming endless short header lines.
pub const MAX_HEADERS: usize = 100;

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`] bytes.
///
/// Returns `Ok(None)` on clean EOF before the first byte; over-long
/// lines and EOF mid-line are `InvalidData` errors.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> io::Result<Option<()>> {
    let mut limited = Read::take(&mut *reader, MAX_LINE_BYTES as u64);
    let n = limited.read_line(line)?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            if n == MAX_LINE_BYTES {
                "line exceeds the size limit"
            } else {
                "EOF inside a line"
            },
        ));
    }
    Ok(Some(()))
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased as received.
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Decoded request body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
    /// True when the client asked for `Connection: close`.
    pub close: bool,
}

/// The outcome of reading one request off a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire were not valid HTTP.
    Malformed(String),
}

/// Reads one HTTP/1.1 request from `reader`.
///
/// Returns [`ReadOutcome::Closed`] on clean EOF before the first byte,
/// and [`ReadOutcome::Malformed`] (with a human reason) on garbage.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    match read_line_bounded(reader, &mut line) {
        Ok(None) => return Ok(ReadOutcome::Closed),
        Ok(Some(())) => {}
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return Ok(ReadOutcome::Malformed(e.to_string()))
        }
        Err(e) => return Err(e),
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_uppercase(), t),
        _ => {
            return Ok(ReadOutcome::Malformed(format!(
                "bad request line {:?}",
                line.trim_end()
            )))
        }
    };
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut content_length = 0usize;
    let mut close = false;
    let mut headers_seen = 0usize;
    loop {
        headers_seen += 1;
        if headers_seen > MAX_HEADERS {
            return Ok(ReadOutcome::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let mut header = String::new();
        match read_line_bounded(reader, &mut header) {
            Ok(None) => return Ok(ReadOutcome::Malformed("EOF inside headers".into())),
            Ok(Some(())) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Ok(ReadOutcome::Malformed(e.to_string()))
            }
            Err(e) => return Err(e),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => match value.parse::<usize>() {
                    Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                    _ => {
                        return Ok(ReadOutcome::Malformed(format!(
                            "unacceptable Content-Length {value:?}"
                        )))
                    }
                },
                "connection" => close = value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        body,
        close,
    }))
}

/// Writes one HTTP/1.1 response with a JSON body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one HTTP response (the client side), returning
/// `(status, body)`.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, String)> {
    let mut line = String::new();
    if read_line_bounded(reader, &mut line)?.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {:?}", line.trim_end()),
            )
        })?;

    let mut content_length = 0usize;
    let mut headers_seen = 0usize;
    loop {
        headers_seen += 1;
        if headers_seen > MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many response headers",
            ));
        }
        let mut header = String::new();
        if read_line_bounded(reader, &mut header)?.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside response headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad response Content-Length")
                })?;
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
    Ok((status, body))
}

/// Sends one request on an open client connection.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\n\
         Host: ahn-serve\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
