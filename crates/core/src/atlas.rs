//! The attack/defense atlas: every scenario against every defense.
//!
//! The headline artifact of the adversary zoo — a cumulative grid
//! answering "which defenses hold against which attacks?". Rows are
//! the registry's scenarios ([`crate::scenarios::builtin_scenarios`]);
//! columns are the three defense postures the substrate implements:
//!
//! * `watchdog` — first-hand observation only (the paper's model);
//! * `core` — CORE-style positive-only gossip;
//! * `confidant` — CONFIDANT-style full gossip.
//!
//! Every cell is one [`run_experiment`] at a fixed smoke scale, so the
//! whole atlas is a pure function of its [`AtlasGrid`]: two runs — at
//! any `AHN_THREADS` — serialize to identical bytes, which is what
//! lets CI regenerate the committed `atlas.json` and fail on drift.
//!
//! A defense *holds* when the scenario keeps at least
//! [`HOLD_FRACTION`] of the cooperation the base scenario reaches
//! under the same defense (an attack is judged by the damage it does
//! relative to peacetime, not by an absolute bar that network size
//! would dominate).

use crate::cases::CaseSpec;
use crate::config::ExperimentConfig;
use crate::experiment::run_experiment;
use crate::scenarios::{resolve_scenario, Scenario};
use ahn_net::{GossipConfig, PathMode};
use ahn_stats::Summary;
use serde::{Deserialize, Serialize};

/// Atlas report schema tag.
pub const ATLAS_SCHEMA: &str = "ahn-atlas/1";

/// The defense columns, in report order.
pub const DEFENSES: [&str; 3] = ["watchdog", "core", "confidant"];

/// A defense holds when cooperation stays at or above this fraction of
/// the base scenario's cooperation under the same defense.
pub const HOLD_FRACTION: f64 = 2.0 / 3.0;

/// Resolves a defense column to the gossip posture it configures.
pub fn resolve_defense(name: &str) -> Result<Option<GossipConfig>, String> {
    match name {
        "watchdog" => Ok(None),
        "core" => Ok(Some(GossipConfig::core_style())),
        "confidant" => Ok(Some(GossipConfig::confidant_style())),
        other => Err(format!(
            "unknown defense {other:?} (expected one of {DEFENSES:?})"
        )),
    }
}

/// The pure inputs of one atlas: a base configuration, the network
/// size, and the scenario rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtlasGrid {
    /// Base configuration each cell derives from (gossip is overridden
    /// per defense column).
    pub base: ExperimentConfig,
    /// Participants per tournament.
    pub size: usize,
    /// Scenario rows, by registry name.
    pub scenarios: Vec<String>,
}

impl AtlasGrid {
    /// The committed smoke-scale atlas: every registry scenario at 10
    /// participants, with rounds stretched to 150 so the phased
    /// behaviors (on-off cycles, whitewashing periods) actually fire
    /// inside a tournament, and enough generations and replications
    /// for the base row to reach its cooperative regime — while CI
    /// still regenerates the whole grid in seconds.
    pub fn smoke() -> Self {
        let mut base = ExperimentConfig::smoke();
        base.rounds = 150;
        base.generations = 25;
        base.replications = 3;
        AtlasGrid {
            base,
            size: 10,
            scenarios: crate::scenarios::builtin_scenarios()
                .into_iter()
                .map(|s| s.name)
                .collect(),
        }
    }

    /// The environment every row starts from: a CSN-free world of
    /// `size` participants (each scenario then installs its own
    /// attacker mix), shortest-path routing.
    fn case(&self) -> CaseSpec {
        CaseSpec::mini("atlas", &[0], self.size, PathMode::Shorter)
    }

    /// Validates the grid without running anything.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if self.scenarios.is_empty() {
            return Err("an atlas needs at least one scenario row".into());
        }
        let case = self.case();
        for name in &self.scenarios {
            let scenario = resolve_scenario(name)?;
            scenario.apply(&self.base, &case)?;
        }
        Ok(())
    }
}

/// One defense column of one scenario row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtlasCell {
    /// Defense column name (see [`DEFENSES`]).
    pub defense: String,
    /// Final-generation cooperation across replications.
    pub cooperation: Summary,
    /// Whether the defense holds (see [`HOLD_FRACTION`]).
    pub holds: bool,
}

/// One scenario row of the atlas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtlasRow {
    /// Scenario name.
    pub scenario: String,
    /// The scenario's canonical hash, in hex (a stable identity for
    /// correlating atlas rows across revisions of the registry).
    pub scenario_hash: String,
    /// The scenario's one-line summary.
    pub summary: String,
    /// Total attacker share of each tournament.
    pub attacker_share: f64,
    /// One cell per defense, in [`DEFENSES`] order.
    pub cells: Vec<AtlasCell>,
}

/// A completed atlas. Pure data — byte-identical across runs and
/// thread counts for the same grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtlasReport {
    /// Report schema tag ([`ATLAS_SCHEMA`]).
    pub schema: String,
    /// Participants per tournament.
    pub size: usize,
    /// Tournament rounds per generation.
    pub rounds: usize,
    /// Replications behind every cell.
    pub replications: usize,
    /// Scenario rows, in grid order.
    pub rows: Vec<AtlasRow>,
}

/// Runs the full atlas grid. Rows and columns run serially — each
/// cell's [`run_experiment`] already fans replications out in
/// parallel, and its parallel fold is pinned bit-identical to the
/// serial one, so the report is deterministic at any `AHN_THREADS`.
///
/// # Errors
/// Errors when the grid fails [`AtlasGrid::validate`]; never errors
/// mid-run.
pub fn run_atlas(grid: &AtlasGrid) -> Result<AtlasReport, String> {
    grid.validate()?;
    crate::threads::log_once("atlas");
    let case = grid.case();
    let scenarios: Vec<Scenario> = grid
        .scenarios
        .iter()
        .map(|name| resolve_scenario(name))
        .collect::<Result<_, _>>()?;
    // Evaluate every (scenario, defense) cell, then judge each against
    // the base row under the same defense. Without a base row, "holds"
    // falls back to an absolute bar at HOLD_FRACTION.
    let mut raw: Vec<Vec<Summary>> = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let mut row = Vec::with_capacity(DEFENSES.len());
        for defense in DEFENSES {
            let mut config = grid.base.clone();
            config.gossip = resolve_defense(defense)?;
            let (config, case) = scenario.apply(&config, &case)?;
            row.push(run_experiment(&config, &case).final_coop);
        }
        raw.push(row);
    }
    let base_row = scenarios
        .iter()
        .position(|s| s.attackers.is_none() && s.name == "base");
    let rows = scenarios
        .iter()
        .zip(&raw)
        .map(|(scenario, coops)| AtlasRow {
            scenario: scenario.name.clone(),
            scenario_hash: format!("{:016x}", scenario.canonical_hash()),
            summary: scenario.summary.clone(),
            attacker_share: scenario.attacker_share(),
            cells: DEFENSES
                .iter()
                .zip(coops)
                .enumerate()
                .map(|(col, (&defense, coop))| {
                    let bar = match base_row {
                        Some(b) => HOLD_FRACTION * raw[b][col].mean().unwrap_or(0.0),
                        None => HOLD_FRACTION,
                    };
                    AtlasCell {
                        defense: defense.into(),
                        cooperation: coop.clone(),
                        holds: coop.mean().unwrap_or(0.0) >= bar,
                    }
                })
                .collect(),
        })
        .collect();
    Ok(AtlasReport {
        schema: ATLAS_SCHEMA.into(),
        size: grid.size,
        rounds: grid.base.rounds,
        replications: grid.base.replications,
        rows,
    })
}

/// Renders the atlas as the committed `ATLAS.md` markdown: a header
/// documenting scale and regeneration, then one table row per
/// scenario with `✓` (holds) / `✗` (breaks) per defense.
pub fn render_atlas(report: &AtlasReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Attack/defense atlas\n");
    let _ = writeln!(
        out,
        "Which defenses hold against which attacks — every scenario in the\n\
         registry (`ahn-exp scenario list`) against every defense posture.\n"
    );
    let _ = writeln!(
        out,
        "* Scale: {} participants per tournament, {} rounds, {} replications\n\
         * A defense **holds** (✓) when cooperation stays ≥ {:.0}% of the base\n\
         \x20 scenario's cooperation under the same defense\n\
         * Regenerate: `ahn-exp atlas --out ATLAS.md --json atlas.json`\n\
         \x20 (byte-stable; CI diffs this file against a fresh run)\n",
        report.size,
        report.rounds,
        report.replications,
        HOLD_FRACTION * 100.0
    );
    let mut header = String::from("| scenario | share | hash |");
    let mut rule = String::from("|---|---|---|");
    for defense in DEFENSES {
        let _ = write!(header, " {defense} |");
        rule.push_str("---|");
    }
    let _ = writeln!(out, "{header}\n{rule}");
    for row in &report.rows {
        let _ = write!(
            out,
            "| {} | {:.0}% | `{}` |",
            row.scenario,
            row.attacker_share * 100.0,
            &row.scenario_hash[..8],
        );
        for cell in &row.cells {
            let _ = write!(
                out,
                " {} {} |",
                ahn_stats::pct(cell.cooperation.mean().unwrap_or(0.0), 1),
                if cell.holds { "✓" } else { "✗" },
            );
        }
        out.push('\n');
    }
    out.push('\n');
    for row in &report.rows {
        let _ = writeln!(out, "* **{}** — {}", row.scenario, row.summary);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-row, 3-column grid small enough for a unit test.
    fn tiny_grid() -> AtlasGrid {
        let mut grid = AtlasGrid::smoke();
        grid.base.rounds = 60;
        grid.base.generations = 4;
        grid.base.replications = 1;
        grid.scenarios = vec!["base".into(), "selfish-majority".into()];
        grid
    }

    #[test]
    fn smoke_grid_validates_with_every_builtin_scenario() {
        AtlasGrid::smoke().validate().unwrap();
    }

    #[test]
    fn unknown_rows_and_defenses_fail_fast() {
        let mut grid = tiny_grid();
        grid.scenarios.push("nope".into());
        assert!(grid.validate().is_err());
        assert!(resolve_defense("nope").is_err());
        assert_eq!(resolve_defense("watchdog").unwrap(), None);
    }

    #[test]
    fn atlas_is_deterministic_and_base_holds_by_construction() {
        let grid = tiny_grid();
        let a = run_atlas(&grid).unwrap();
        let b = run_atlas(&grid).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(a.schema, ATLAS_SCHEMA);
        assert_eq!(a.rows.len(), 2);
        let base = &a.rows[0];
        assert_eq!(base.scenario, "base");
        assert_eq!(base.attacker_share, 0.0);
        assert!(base.cells.iter().all(|c| c.holds), "base vs itself");
        assert_eq!(
            a.rows[1]
                .cells
                .iter()
                .map(|c| &c.defense)
                .collect::<Vec<_>>(),
            vec!["watchdog", "core", "confidant"]
        );
    }

    #[test]
    fn render_mentions_every_row_and_the_regen_command() {
        let report = run_atlas(&tiny_grid()).unwrap();
        let md = render_atlas(&report);
        assert!(md.contains("| base |"), "{md}");
        assert!(md.contains("| selfish-majority |"), "{md}");
        assert!(md.contains("ahn-exp atlas --out ATLAS.md --json atlas.json"));
        assert!(md.contains("✓") || md.contains("✗"));
    }
}
