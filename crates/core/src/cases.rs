//! The evaluation cases of Table 4.
//!
//! | case | environments | path mode |
//! |------|--------------|-----------|
//! | 1    | TE1 (0 CSN)  | shorter   |
//! | 2    | TE4 (30 CSN) | shorter   |
//! | 3    | TE1–TE4      | shorter   |
//! | 4    | TE1–TE4      | longer    |
//!
//! Note on case 2: Table 4's OCR reads "3 (30 CSN)", but TE3 has 25 CSN
//! (Table 1) while §6.2 says "case 2, 30 CSN ... 60 % of the population"
//! — which is TE4 (30 of 50). We follow the prose and the arithmetic
//! (30/50 = 60 %) and use the 30-CSN environment.

use ahn_game::EnvironmentSpec;
use ahn_net::PathMode;
use serde::{Deserialize, Serialize};

/// One evaluation case: an environment sequence plus a path mode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Human-readable name ("case 3").
    pub name: String,
    /// Environment sequence (Fig. 3's `E` environments).
    pub envs: Vec<EnvironmentSpec>,
    /// Path mode (Table 2 column).
    pub mode: PathMode,
}

impl CaseSpec {
    /// Builds one of the paper's cases (1–4).
    ///
    /// # Panics
    /// Panics unless `1 <= case <= 4`.
    pub fn paper(case: usize) -> Self {
        match case {
            1 => CaseSpec {
                name: "case 1".into(),
                envs: vec![EnvironmentSpec::paper_te(1)],
                mode: PathMode::Shorter,
            },
            2 => CaseSpec {
                name: "case 2".into(),
                envs: vec![EnvironmentSpec::paper_te(4)],
                mode: PathMode::Shorter,
            },
            3 => CaseSpec {
                name: "case 3".into(),
                envs: EnvironmentSpec::paper_all(),
                mode: PathMode::Shorter,
            },
            4 => CaseSpec {
                name: "case 4".into(),
                envs: EnvironmentSpec::paper_all(),
                mode: PathMode::Longer,
            },
            _ => panic!("the paper defines cases 1..=4, not {case}"),
        }
    }

    /// All four paper cases.
    pub fn paper_all() -> Vec<Self> {
        (1..=4).map(Self::paper).collect()
    }

    /// A reduced case for tests and examples: one environment of `size`
    /// participants per CSN count in `csn_counts`.
    pub fn mini(name: &str, csn_counts: &[usize], size: usize, mode: PathMode) -> Self {
        CaseSpec {
            name: name.into(),
            envs: csn_counts
                .iter()
                .map(|&c| EnvironmentSpec::new(size, c))
                .collect(),
            mode,
        }
    }

    /// Largest CSN pool any environment of the case needs.
    pub fn required_csn(&self) -> usize {
        self.envs.iter().map(|e| e.csn).max().unwrap_or(0)
    }

    /// Largest normal-player demand of any environment.
    pub fn required_normal(&self) -> usize {
        self.envs.iter().map(|e| e.normal()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cases_match_table_4() {
        let c1 = CaseSpec::paper(1);
        assert_eq!(c1.envs.len(), 1);
        assert_eq!(c1.envs[0].csn, 0);
        assert_eq!(c1.mode, PathMode::Shorter);

        // Case 2: the 30-CSN environment (see module docs).
        let c2 = CaseSpec::paper(2);
        assert_eq!(c2.envs[0].csn, 30);
        assert_eq!(c2.envs[0].size, 50);
        assert_eq!(c2.mode, PathMode::Shorter);

        let c3 = CaseSpec::paper(3);
        assert_eq!(c3.envs.len(), 4);
        assert_eq!(c3.mode, PathMode::Shorter);

        let c4 = CaseSpec::paper(4);
        assert_eq!(c4.envs.len(), 4);
        assert_eq!(c4.mode, PathMode::Longer);
        assert_eq!(CaseSpec::paper_all().len(), 4);
    }

    #[test]
    fn requirements() {
        let c3 = CaseSpec::paper(3);
        assert_eq!(c3.required_csn(), 30);
        assert_eq!(c3.required_normal(), 50);
        let mini = CaseSpec::mini("m", &[2, 5], 10, PathMode::Longer);
        assert_eq!(mini.required_csn(), 5);
        assert_eq!(mini.required_normal(), 8);
    }

    #[test]
    #[should_panic(expected = "cases 1..=4")]
    fn case_5_does_not_exist() {
        let _ = CaseSpec::paper(5);
    }

    #[test]
    fn serde_roundtrip() {
        let c = CaseSpec::paper(3);
        let json = serde_json::to_string(&c).unwrap();
        let back: CaseSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
