//! Replication runner and cross-replication aggregation.
//!
//! One *replication* is a complete evolution: random initial population,
//! `generations` iterations of multi-environment evaluation (§4.4) and
//! breeding (§5), with per-generation metrics. An *experiment* averages
//! `replications` independent replications (the paper uses 60), run in
//! parallel with rayon — each replication owns its RNG
//! (`base_seed + k`), so parallelism never changes results.

use crate::cases::CaseSpec;
use crate::config::ExperimentConfig;
use ahn_bitstr::BitStr;
use ahn_ga::{next_generation_into, GenStats};
use ahn_game::{Arena, EnvMetrics, EvaluationSchedule, GameConfig};
use ahn_net::energy::{EnergyLedger, PowerProfile};
use ahn_net::PathGenerator;
use ahn_stats::{Series, Summary};
use ahn_strategy::analysis::StrategyCensus;
use ahn_strategy::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Everything one replication produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationResult {
    /// Cooperation level per generation, aggregated over environments
    /// (the Fig. 4 series of this run).
    pub coop_by_gen: Vec<f64>,
    /// Final-generation metrics per environment (Tab. 5 inputs).
    pub final_by_env: Vec<EnvMetrics>,
    /// Final-generation whole-run metrics (Tab. 6 inputs).
    pub final_total: EnvMetrics,
    /// The last generation's population (Tab. 7–9 inputs).
    pub final_population: Vec<Strategy>,
    /// Fitness statistics per generation.
    pub fitness_by_gen: Vec<GenStats>,
    /// Mean per-node energy in the final generation (mJ, WaveLAN
    /// profile), split normal / selfish — the extension metric.
    pub energy_normal_mj: f64,
    /// Mean final-generation energy per selfish node (mJ).
    pub energy_selfish_mj: f64,
}

/// Runs a single replication with the given seed.
///
/// # Panics
/// Panics if the configuration is invalid or the population is smaller
/// than the largest environment's normal-player demand.
pub fn run_replication(config: &ExperimentConfig, case: &CaseSpec, seed: u64) -> ReplicationResult {
    run_replication_with(config, case, seed, &mut ahn_obs::NoopRecorder)
}

/// [`run_replication`] with a hot-path [`ahn_obs::Recorder`] marking
/// the schedule/play/evolve phase boundaries of every generation.
///
/// The function is generic so the default [`ahn_obs::NoopRecorder`]
/// monomorphizes every hook to an empty inlined body: instrumentation
/// off costs literally nothing (`tests/zero_alloc.rs` and the BENCH
/// gate pin this). Recorders never touch `rng` or any simulated state,
/// so results are bit-identical with recording on or off.
///
/// # Panics
/// Panics if the configuration is invalid or the population is smaller
/// than the largest environment's normal-player demand.
pub fn run_replication_with<R: ahn_obs::Recorder>(
    config: &ExperimentConfig,
    case: &CaseSpec,
    seed: u64,
    recorder: &mut R,
) -> ReplicationResult {
    config.validate().expect("invalid experiment configuration");
    assert!(
        config.population >= case.required_normal(),
        "population {} cannot fill an environment needing {} normal players",
        config.population,
        case.required_normal()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let schedule = EvaluationSchedule::new(case.envs.clone(), config.rounds, config.plays_per_env);
    let game_config = GameConfig {
        payoff: config.payoff,
        trust: config.trust,
        activity: config.activity,
        paths: PathGenerator::for_mode(case.mode),
        route_selection: config.route_selection,
        gossip: config.gossip,
    };

    let bits = config.codec.genome_bits();
    let mut genomes: Vec<BitStr> = (0..config.population)
        .map(|_| {
            let mut g = BitStr::random(&mut rng, bits);
            config.mask_genome(&mut g);
            g
        })
        .collect();

    let decode =
        |gs: &[BitStr]| -> Vec<Strategy> { gs.iter().map(|g| config.codec.decode(g)).collect() };

    let mut arena = match &config.attackers {
        // The paper's model: the selfish pool is all-CSN, built by the
        // legacy constructor — byte-identical draw sequences.
        None => Arena::new(
            decode(&genomes),
            schedule.required_csn(),
            game_config,
            case.envs.len(),
        ),
        // Adversary zoo: the pool is the attacker groups expanded in
        // declaration order, occupying the same tail slots CSNs would.
        Some(groups) => {
            let pool: usize = groups.iter().map(|g| g.count).sum();
            assert!(
                pool >= schedule.required_csn(),
                "attacker pool ({pool}) cannot fill an environment needing {} selfish nodes",
                schedule.required_csn()
            );
            let mut kinds = vec![ahn_game::NodeKind::Normal; config.population];
            for g in groups {
                kinds.extend(std::iter::repeat_n(g.behavior.node_kind(), g.count));
            }
            Arena::with_kinds(decode(&genomes), kinds, game_config, case.envs.len())
        }
    };
    for sleeper in &config.sleepers {
        arena.set_duty_cycle(ahn_net::NodeId::from(sleeper.index), sleeper.duty);
    }

    let mut coop_by_gen = Vec::with_capacity(config.generations);
    let mut fitness_by_gen = Vec::with_capacity(config.generations);
    // Steady-state buffer reuse: offspring are double-buffered and
    // swapped, strategies decode in place into the arena's SoA buffer,
    // fitnesses fill a reused vector, and the schedule's participant
    // selection shares one scratch — so the generational loop performs
    // no per-generation allocations even at 1 000-node scale.
    let mut offspring: Vec<BitStr> = Vec::with_capacity(config.population);
    let mut fitnesses: Vec<f64> = Vec::with_capacity(config.population);
    let mut schedule_scratch = ahn_game::ScheduleScratch::default();

    for generation in 0..config.generations {
        recorder.begin(ahn_obs::Phase::Schedule);
        arena.set_strategies_with(|i| config.codec.decode(&genomes[i]));
        recorder.end(ahn_obs::Phase::Schedule);

        recorder.begin(ahn_obs::Phase::Play);
        schedule.run_with_scratch(&mut arena, &mut rng, &mut schedule_scratch);
        recorder.end(ahn_obs::Phase::Play);

        let total = arena.metrics.total();
        let cooperation = total.cooperation_level();
        coop_by_gen.push(cooperation);
        arena.fitnesses_into(&mut fitnesses);
        fitness_by_gen.push(GenStats::from_fitnesses(&fitnesses));

        if generation + 1 < config.generations {
            recorder.begin(ahn_obs::Phase::Evolve);
            next_generation_into(&mut rng, &config.ga, &genomes, &fitnesses, &mut offspring);
            std::mem::swap(&mut genomes, &mut offspring);
            for g in &mut genomes {
                config.mask_genome(g);
            }
            recorder.end(ahn_obs::Phase::Evolve);
        }
        recorder.generation(generation as u64, cooperation);
    }

    let profile = PowerProfile::wavelan();
    let mean_energy = |ledgers: &[EnergyLedger]| -> f64 {
        if ledgers.is_empty() {
            0.0
        } else {
            ledgers.iter().map(|l| l.total_mj(&profile)).sum::<f64>() / ledgers.len() as f64
        }
    };
    let n = arena.n_normal();

    ReplicationResult {
        coop_by_gen,
        final_by_env: (0..case.envs.len())
            .map(|e| *arena.metrics.env(e))
            .collect(),
        final_total: arena.metrics.total(),
        final_population: decode(&genomes),
        fitness_by_gen,
        energy_normal_mj: mean_energy(&arena.energy[..n]),
        energy_selfish_mj: mean_energy(&arena.energy[n..]),
    }
}

/// Per-source-kind request-response fractions averaged over replications
/// (one side of Table 6).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReqSummary {
    /// Fraction of requests accepted.
    pub accepted: Summary,
    /// Fraction rejected by normal players.
    pub rejected_by_nn: Summary,
    /// Fraction rejected by CSN.
    pub rejected_by_csn: Summary,
}

impl ReqSummary {
    fn add(&mut self, counts: &ahn_game::ReqCounts) {
        let (a, n, c) = counts.fractions();
        self.accepted.add(a);
        self.rejected_by_nn.add(n);
        self.rejected_by_csn.add(c);
    }
}

/// Aggregated outcome of one experiment (config × case, averaged over
/// replications).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Case name (e.g. "case 3").
    pub case_name: String,
    /// Replications aggregated.
    pub replications: usize,
    /// Cooperation level per generation (Fig. 4 series: mean ± CI).
    pub coop_series: Series,
    /// Final-generation cooperation level (the number quoted in §6.2).
    pub final_coop: Summary,
    /// Final-generation cooperation per environment (Tab. 5, cols 2–3).
    pub per_env_coop: Vec<Summary>,
    /// Final-generation CSN-free-path share per environment (Tab. 5,
    /// cols 4–5).
    pub per_env_csn_free: Vec<Summary>,
    /// Responses to requests from normal sources (Tab. 6 left).
    pub req_from_nn: ReqSummary,
    /// Responses to requests from CSN sources (Tab. 6 right).
    pub req_from_csn: ReqSummary,
    /// Census of all final populations (Tab. 7–9).
    pub census: StrategyCensus,
    /// Mean-fitness series across generations.
    pub fitness_mean_series: Series,
    /// Mean final-generation energy per node kind (mJ).
    pub energy_normal_mj: Summary,
    /// Mean final-generation energy per selfish node (mJ).
    pub energy_selfish_mj: Summary,
}

/// Runs `config.replications` replications of `case` in parallel and
/// aggregates them.
pub fn run_experiment(config: &ExperimentConfig, case: &CaseSpec) -> ExperimentResult {
    let results: Vec<ReplicationResult> = (0..config.replications)
        .into_par_iter()
        .map(|k| run_replication(config, case, config.base_seed.wrapping_add(k as u64)))
        .collect();
    aggregate(config, case, &results)
}

/// [`run_experiment`] with per-replication hot-loop telemetry: each
/// replication runs under an [`ahn_obs::SeriesRecorder`] and `observe`
/// receives its (replication index, seed, per-generation samples) as
/// soon as it finishes — the CLI's `--trace` paths forward these into
/// the trace log. Kept separate from [`run_experiment`] (rather than
/// delegating with a no-op observer) so the default path never pays
/// for the enabled recorder's clock reads. The aggregated result is
/// bit-identical to [`run_experiment`]'s.
pub fn run_experiment_observed<F>(
    config: &ExperimentConfig,
    case: &CaseSpec,
    observe: &F,
) -> ExperimentResult
where
    F: Fn(usize, u64, &[ahn_obs::GenSample]) + Sync,
{
    let results: Vec<ReplicationResult> = (0..config.replications)
        .into_par_iter()
        .map(|k| {
            let seed = config.base_seed.wrapping_add(k as u64);
            let mut recorder = ahn_obs::SeriesRecorder::default();
            let result = run_replication_with(config, case, seed, &mut recorder);
            observe(k, seed, &recorder.samples);
            result
        })
        .collect();
    aggregate(config, case, &results)
}

/// Merges replication results into an [`ExperimentResult`].
pub fn aggregate(
    config: &ExperimentConfig,
    case: &CaseSpec,
    results: &[ReplicationResult],
) -> ExperimentResult {
    assert!(!results.is_empty(), "no replications to aggregate");
    let n_envs = case.envs.len();
    let mut coop_series = Series::new();
    let mut fitness_mean_series = Series::new();
    let mut final_coop = Summary::new();
    let mut per_env_coop = vec![Summary::new(); n_envs];
    let mut per_env_csn_free = vec![Summary::new(); n_envs];
    let mut req_from_nn = ReqSummary::default();
    let mut req_from_csn = ReqSummary::default();
    let mut census = StrategyCensus::new();
    let mut energy_normal_mj = Summary::new();
    let mut energy_selfish_mj = Summary::new();

    for r in results {
        coop_series.add_run(&r.coop_by_gen);
        fitness_mean_series.add_run(&r.fitness_by_gen.iter().map(|s| s.mean).collect::<Vec<_>>());
        if let Some(&last) = r.coop_by_gen.last() {
            final_coop.add(last);
        }
        for (e, m) in r.final_by_env.iter().enumerate() {
            per_env_coop[e].add(m.cooperation_level());
            per_env_csn_free[e].add(m.csn_free_share());
        }
        req_from_nn.add(&r.final_total.from_nn);
        req_from_csn.add(&r.final_total.from_csn);
        census.add_population(&r.final_population);
        energy_normal_mj.add(r.energy_normal_mj);
        energy_selfish_mj.add(r.energy_selfish_mj);
    }

    ExperimentResult {
        case_name: case.name.clone(),
        replications: config.replications,
        coop_series,
        final_coop,
        per_env_coop,
        per_env_csn_free,
        req_from_nn,
        req_from_csn,
        census,
        fitness_mean_series,
        energy_normal_mj,
        energy_selfish_mj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahn_net::PathMode;

    fn smoke_case(csn: &[usize]) -> CaseSpec {
        CaseSpec::mini("smoke", csn, 10, PathMode::Shorter)
    }

    #[test]
    fn replication_shapes_are_consistent() {
        let cfg = ExperimentConfig::smoke();
        let case = smoke_case(&[0, 3]);
        let r = run_replication(&cfg, &case, 7);
        assert_eq!(r.coop_by_gen.len(), cfg.generations);
        assert_eq!(r.fitness_by_gen.len(), cfg.generations);
        assert_eq!(r.final_by_env.len(), 2);
        assert_eq!(r.final_population.len(), cfg.population);
        assert!(r.coop_by_gen.iter().all(|c| (0.0..=1.0).contains(c)));
    }

    #[test]
    fn replications_are_deterministic() {
        let cfg = ExperimentConfig::smoke();
        let case = smoke_case(&[2]);
        let a = run_replication(&cfg, &case, 42);
        let b = run_replication(&cfg, &case, 42);
        assert_eq!(a, b);
        let c = run_replication(&cfg, &case, 43);
        assert_ne!(
            a.coop_by_gen, c.coop_by_gen,
            "different seeds should differ"
        );
    }

    #[test]
    fn experiment_aggregates_all_replications() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.replications = 3;
        let case = smoke_case(&[0]);
        let res = run_experiment(&cfg, &case);
        assert_eq!(res.replications, 3);
        assert_eq!(res.final_coop.count(), 3);
        assert_eq!(res.coop_series.len(), cfg.generations);
        assert_eq!(res.census.total(), (3 * cfg.population) as u64);
        assert_eq!(res.per_env_coop.len(), 1);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.replications = 2;
        let case = smoke_case(&[1]);
        let par = run_experiment(&cfg, &case);
        let seq: Vec<ReplicationResult> = (0..2)
            .map(|k| run_replication(&cfg, &case, cfg.base_seed.wrapping_add(k)))
            .collect();
        let seq = aggregate(&cfg, &case, &seq);
        assert_eq!(par, seq);
    }

    #[test]
    fn trust_only_codec_runs() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.codec = crate::config::StrategyCodec::TrustOnly;
        let r = run_replication(&cfg, &smoke_case(&[2]), 1);
        // Lifted strategies are activity-invariant by construction.
        for s in &r.final_population {
            for t in ahn_net::TrustLevel::ALL {
                let sub = s.sub_strategy(t);
                assert!(
                    sub == 0b000 || sub == 0b111,
                    "activity-variant sub {sub:03b}"
                );
            }
        }
    }

    #[test]
    fn forced_unknown_bit_is_pinned() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.force_unknown = Some(false);
        let r = run_replication(&cfg, &smoke_case(&[1]), 3);
        for s in &r.final_population {
            assert_eq!(s.unknown_decision(), ahn_strategy::Decision::Discard);
        }
    }

    #[test]
    fn selfish_nodes_save_transmit_energy() {
        // Population exactly fills one tournament so normal nodes and CSN
        // participate equally often; only per-event behavior differs.
        let mut cfg = ExperimentConfig::smoke();
        cfg.generations = 4;
        cfg.population = 6;
        let r = run_replication(&cfg, &smoke_case(&[4]), 5);
        assert!(r.energy_selfish_mj > 0.0, "CSN still receive and source");
        assert!(
            r.energy_normal_mj > r.energy_selfish_mj,
            "forwarding must cost more: normal {} vs selfish {}",
            r.energy_normal_mj,
            r.energy_selfish_mj
        );
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn population_too_small_panics() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.population = 5;
        run_replication(&cfg, &smoke_case(&[0]), 0);
    }
}
