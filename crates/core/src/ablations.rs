//! Design-choice ablations A1–A6 (DESIGN.md §3).
//!
//! Every ablation runs the same experiment with one knob changed and
//! returns labeled [`ExperimentResult`]s so the CLI (and EXPERIMENTS.md)
//! can print side-by-side comparisons. They are ordinary experiments —
//! expensive at paper scale, fast under the `scaled`/`smoke` presets.

use crate::cases::CaseSpec;
use crate::config::{ExperimentConfig, StrategyCodec};
use crate::experiment::{run_experiment, ExperimentResult};
use ahn_ga::Selection;
use ahn_game::PayoffConfig;
use ahn_net::{GossipConfig, TrustTable};

/// One labeled variant of an ablation study.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Human-readable variant label.
    pub label: String,
    /// The experiment outcome for the variant.
    pub result: ExperimentResult,
}

fn run_variant(label: &str, config: &ExperimentConfig, case: &CaseSpec) -> Variant {
    Variant {
        label: label.to_string(),
        result: run_experiment(config, case),
    }
}

/// A1 — payoff-table reading: reconstructed paper table vs. the literal
/// OCR table vs. a no-reputation table.
pub fn ablate_payoff(base: &ExperimentConfig, case: &CaseSpec) -> Vec<Variant> {
    let mut variants = Vec::new();
    for (label, payoff) in [
        ("paper (reconstructed)", PayoffConfig::paper()),
        ("best fit (PR-5 search)", PayoffConfig::best_fit()),
        ("literal OCR", PayoffConfig::literal_ocr()),
        ("no reputation response", PayoffConfig::no_reputation()),
    ] {
        let mut cfg = base.clone();
        cfg.payoff = payoff;
        variants.push(run_variant(label, &cfg, case));
    }
    variants
}

/// A2 — activity dimension: the full 13-bit chromosome vs. the 5-bit
/// trust-only reduction.
pub fn ablate_activity(base: &ExperimentConfig, case: &CaseSpec) -> Vec<Variant> {
    let mut full = base.clone();
    full.codec = StrategyCodec::Full;
    let mut reduced = base.clone();
    reduced.codec = StrategyCodec::TrustOnly;
    vec![
        run_variant("13-bit (trust x activity)", &full, case),
        run_variant("5-bit (trust only)", &reduced, case),
    ]
}

/// A3 — selection operator: the paper's size-2 tournament vs. the IPDRP
/// reference's roulette.
pub fn ablate_selection(base: &ExperimentConfig, case: &CaseSpec) -> Vec<Variant> {
    let mut tournament = base.clone();
    tournament.ga.selection = Selection::paper();
    let mut roulette = base.clone();
    roulette.ga.selection = Selection::Roulette;
    vec![
        run_variant("tournament (paper)", &tournament, case),
        run_variant("roulette (IPDRP ref)", &roulette, case),
    ]
}

/// A5 — trust-table thresholds: the paper's bins vs. a coarser and a
/// stricter binning.
pub fn ablate_trust_table(base: &ExperimentConfig, case: &CaseSpec) -> Vec<Variant> {
    let tables = [
        ("paper (0.3/0.6/0.9)", TrustTable::paper()),
        (
            "coarse (0.2/0.5/0.8)",
            TrustTable {
                t1: 0.2,
                t2: 0.5,
                t3: 0.8,
                ..TrustTable::paper()
            },
        ),
        (
            "strict (0.5/0.75/0.95)",
            TrustTable {
                t1: 0.5,
                t2: 0.75,
                t3: 0.95,
                ..TrustTable::paper()
            },
        ),
    ];
    tables
        .into_iter()
        .map(|(label, trust)| {
            let mut cfg = base.clone();
            cfg.trust = trust;
            run_variant(label, &cfg, case)
        })
        .collect()
}

/// A6 — unknown-node bit: evolved freely vs. pinned to forward vs. pinned
/// to discard (the paper observes the free bit converges to forward).
pub fn ablate_unknown(base: &ExperimentConfig, case: &CaseSpec) -> Vec<Variant> {
    [
        ("free (paper)", None),
        ("pinned forward", Some(true)),
        ("pinned discard", Some(false)),
    ]
    .into_iter()
    .map(|(label, force)| {
        let mut cfg = base.clone();
        cfg.force_unknown = force;
        run_variant(label, &cfg, case)
    })
    .collect()
}

/// A7 — second-hand reputation: first-hand only (paper) vs CORE-style
/// positive gossip vs CONFIDANT-style full gossip.
pub fn ablate_gossip(base: &ExperimentConfig, case: &CaseSpec) -> Vec<Variant> {
    [
        ("first-hand only (paper)", None),
        ("positive gossip (CORE)", Some(GossipConfig::core_style())),
        (
            "full gossip (CONFIDANT)",
            Some(GossipConfig::confidant_style()),
        ),
    ]
    .into_iter()
    .map(|(label, gossip)| {
        let mut cfg = base.clone();
        cfg.gossip = gossip;
        run_variant(label, &cfg, case)
    })
    .collect()
}

/// Renders an ablation comparison as a small table of final cooperation
/// levels.
pub fn render_variants(title: &str, variants: &[Variant]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{title}\n");
    for v in variants {
        let _ = writeln!(
            out,
            "  {:<28} final cooperation {:>6}",
            v.label,
            ahn_stats::pct(v.result.final_coop.mean().unwrap_or(0.0), 1),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahn_net::PathMode;

    fn base() -> ExperimentConfig {
        let mut c = ExperimentConfig::smoke();
        c.replications = 2;
        c.generations = 6;
        c
    }

    fn case() -> CaseSpec {
        CaseSpec::mini("ablation", &[2], 8, PathMode::Shorter)
    }

    #[test]
    fn payoff_ablation_produces_four_variants() {
        let v = ablate_payoff(&base(), &case());
        assert_eq!(v.len(), 4);
        assert!(v[0].label.contains("paper"));
        assert!(v[1].label.contains("best fit"));
        let rendered = render_variants("A1", &v);
        assert!(rendered.contains("literal OCR"));
    }

    #[test]
    fn activity_ablation_swaps_codec() {
        let v = ablate_activity(&base(), &case());
        assert_eq!(v.len(), 2);
        // Trust-only populations have activity-invariant sub-strategies.
        let reduced = &v[1].result;
        for (s, _) in reduced.census.top_strategies(3) {
            for t in ahn_net::TrustLevel::ALL {
                let sub = s.sub_strategy(t);
                assert!(sub == 0 || sub == 7);
            }
        }
    }

    #[test]
    fn selection_ablation_runs_both_operators() {
        let v = ablate_selection(&base(), &case());
        assert_eq!(v.len(), 2);
        assert!(v[1].label.contains("roulette"));
    }

    #[test]
    fn trust_table_ablation_runs_three_binnings() {
        let v = ablate_trust_table(&base(), &case());
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn gossip_ablation_runs_three_policies() {
        let v = ablate_gossip(&base(), &case());
        assert_eq!(v.len(), 3);
        assert!(v[0].label.contains("first-hand"));
        assert!(v[1].label.contains("CORE"));
        assert!(v[2].label.contains("CONFIDANT"));
    }

    #[test]
    fn unknown_ablation_pins_bits() {
        let v = ablate_unknown(&base(), &case());
        assert_eq!(v.len(), 3);
        assert!((v[1].result.census.unknown_forward_share() - 1.0).abs() < 1e-12);
        assert_eq!(v[2].result.census.unknown_forward_share(), 0.0);
    }
}
