//! Extension experiments beyond the paper's evaluation.
//!
//! Both follow directly from the paper's own discussion:
//!
//! * **Strategy transfer** — the conclusion warns "The exact evolution of
//!   strategies depends on the network conditions ... To achieve best
//!   results one should know what kind of network are those strategies
//!   target." [`transfer_matrix`] quantifies that: evolve under one case,
//!   deploy under another, measure the cooperation gap.
//! * **Newcomer join** — §6.3 observes the evolved unknown-node bit is
//!   Forward, "as a result, new nodes can easily join the network".
//!   [`newcomer_join`] tests the claim: drop a fresh, unknown node into a
//!   converged population and track how its own packets fare as its
//!   reputation forms.

use crate::cases::CaseSpec;
use crate::config::{ExperimentConfig, SleeperSpec, StrategyCodec};
use crate::experiment::run_replication;
use ahn_game::{game::Scratch, play_game, Arena, GameConfig};
use ahn_net::{NodeId, PathGenerator};
use ahn_strategy::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Outcome of deploying strategies evolved under one case into another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferCell {
    /// Case the population was evolved under.
    pub trained_on: String,
    /// Case the population was evaluated under (no further evolution).
    pub evaluated_on: String,
    /// Cooperation level achieved in the evaluation case.
    pub cooperation: f64,
}

/// Evolves a population under `train` (one replication), then freezes it
/// and measures cooperation under `eval`.
pub fn transfer(
    config: &ExperimentConfig,
    train: &CaseSpec,
    eval: &CaseSpec,
    seed: u64,
) -> TransferCell {
    let trained = run_replication(config, train, seed);
    let metrics = crate::baselines::evaluate_static(
        config,
        eval,
        &trained.final_population,
        seed.wrapping_add(transfer_salt()),
    );
    TransferCell {
        trained_on: train.name.clone(),
        evaluated_on: eval.name.clone(),
        cooperation: metrics.cooperation_level(),
    }
}

const fn transfer_salt() -> u64 {
    0x7A_5A_17
}

/// Full train × eval matrix over the given cases.
pub fn transfer_matrix(
    config: &ExperimentConfig,
    cases: &[CaseSpec],
    seed: u64,
) -> Vec<TransferCell> {
    let mut out = Vec::with_capacity(cases.len() * cases.len());
    for train in cases {
        for eval in cases {
            out.push(transfer(config, train, eval, seed));
        }
    }
    out
}

/// Renders a transfer matrix as a text table.
pub fn render_transfer(cells: &[TransferCell]) -> String {
    use std::fmt::Write as _;
    fn unique<'a>(labels: impl IntoIterator<Item = &'a str>) -> Vec<&'a str> {
        let mut seen: Vec<&str> = Vec::new();
        for l in labels {
            if !seen.contains(&l) {
                seen.push(l);
            }
        }
        seen
    }
    let mut out = String::from("Strategy transfer (rows: trained on; cols: evaluated on)\n");
    let evals = unique(cells.iter().map(|c| c.evaluated_on.as_str()));
    let _ = write!(out, "{:<12}", "");
    for e in &evals {
        let _ = write!(out, "{e:>12}");
    }
    let _ = writeln!(out);
    let trains = unique(cells.iter().map(|c| c.trained_on.as_str()));
    for t in trains {
        let _ = write!(out, "{t:<12}");
        for e in &evals {
            if let Some(c) = cells
                .iter()
                .find(|c| c.trained_on == t && &c.evaluated_on == e)
            {
                let _ = write!(out, "{:>11.1}%", c.cooperation * 100.0);
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// How a fresh node's own packets fared while it integrated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NewcomerReport {
    /// Delivery rate of the newcomer's packets in the first quarter of
    /// the observation window (reputation not yet formed).
    pub early_delivery: f64,
    /// Delivery rate in the last quarter (reputation established).
    pub late_delivery: f64,
    /// Share of final-population strategies that forward for unknowns —
    /// the mechanism that admits the newcomer at all.
    pub unknown_forward_share: f64,
}

/// Evolves a population under `case`, then adds one cooperative newcomer
/// (unknown to everyone) and plays `rounds` observation rounds in a
/// CSN-free tournament drawn from the evolved population.
///
/// # Panics
/// Panics if the case has no environments or the population is smaller
/// than the tournament demand.
pub fn newcomer_join(
    config: &ExperimentConfig,
    case: &CaseSpec,
    rounds: usize,
    seed: u64,
) -> NewcomerReport {
    assert!(rounds >= 8, "need at least 8 rounds to compare quarters");
    let trained = run_replication(config, case, seed);
    let mut census = ahn_strategy::analysis::StrategyCensus::new();
    census.add_population(&trained.final_population);

    // Tournament: evolved veterans + the newcomer (an always-cooperator,
    // as a node eager to integrate would behave).
    let veterans = case.envs[0].normal().min(trained.final_population.len());
    let mut strategies: Vec<Strategy> = trained.final_population[..veterans].to_vec();
    let newcomer = NodeId::from(strategies.len());
    strategies.push(Strategy::always_forward());

    let game_config = GameConfig {
        payoff: config.payoff,
        trust: config.trust,
        activity: config.activity,
        paths: PathGenerator::for_mode(case.mode),
        route_selection: config.route_selection,
        gossip: config.gossip,
    };
    let mut arena = Arena::new(strategies, 0, game_config, 1);
    let participants: Vec<NodeId> = (0..arena.n_total() as u32).map(NodeId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(transfer_salt()));
    let mut scratch = Scratch::default();

    // Warm up the veterans' mutual reputation WITHOUT the newcomer so it
    // is genuinely the only unknown party.
    let veterans_only: Vec<NodeId> = participants[..veterans].to_vec();
    for _ in 0..rounds {
        for &src in &veterans_only {
            play_game(&mut arena, &mut rng, src, &veterans_only, 0, &mut scratch);
        }
    }

    // Observation: everyone plays, and we track the newcomer's games.
    let mut deliveries: Vec<bool> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for &src in &participants {
            let report = play_game(&mut arena, &mut rng, src, &participants, 0, &mut scratch);
            if src == newcomer {
                deliveries.push(report.outcome.delivered());
            }
        }
    }

    let quarter = (deliveries.len() / 4).max(1);
    let rate = |slice: &[bool]| -> f64 {
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().filter(|&&d| d).count() as f64 / slice.len() as f64
        }
    };
    NewcomerReport {
        early_delivery: rate(&deliveries[..quarter]),
        late_delivery: rate(&deliveries[deliveries.len() - quarter..]),
        unknown_forward_share: census.unknown_forward_share(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahn_net::PathMode;

    fn cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::smoke();
        c.population = 20;
        c.rounds = 30;
        c.generations = 25;
        c
    }

    #[test]
    fn transfer_diagonal_beats_hostile_off_diagonal() {
        // A population trained in a clean world, dropped into a hostile
        // one, must do worse than in its own world.
        let config = cfg();
        let clean = CaseSpec::mini("clean", &[0], 10, PathMode::Shorter);
        let hostile = CaseSpec::mini("hostile", &[6], 10, PathMode::Shorter);
        let own = transfer(&config, &clean, &clean, 3);
        let cross = transfer(&config, &clean, &hostile, 3);
        assert!(
            own.cooperation > cross.cooperation,
            "own {:.2} vs cross {:.2}",
            own.cooperation,
            cross.cooperation
        );
    }

    #[test]
    fn transfer_matrix_covers_all_pairs() {
        let config = cfg();
        let cases = [
            CaseSpec::mini("a", &[0], 10, PathMode::Shorter),
            CaseSpec::mini("b", &[4], 10, PathMode::Shorter),
        ];
        let cells = transfer_matrix(&config, &cases, 1);
        assert_eq!(cells.len(), 4);
        let rendered = render_transfer(&cells);
        assert!(rendered.contains('a') && rendered.contains('b'));
        assert_eq!(rendered.lines().count(), 4, "header + 2 rows:\n{rendered}");
    }

    #[test]
    fn newcomer_integrates_into_cooperative_population() {
        // The unknown-node bit needs a converged cooperative world
        // before it is consistently selected for; R = 100 / 60
        // generations is inside that basin at 10-participant scale
        // (R = 30 leaves the bit undecided).
        let mut config = cfg();
        config.rounds = 100;
        config.generations = 60;
        let case = CaseSpec::mini("join", &[0], 10, PathMode::Shorter);
        let report = newcomer_join(&config, &case, 40, 5);
        // In a CSN-free evolved world the newcomer must end up served.
        assert!(
            report.late_delivery > 0.5,
            "newcomer never integrated: {report:?}"
        );
        assert!(report.unknown_forward_share > 0.5, "{report:?}");
    }
}

/// Outcome of the sleeper study (extension X6): does the activity
/// dimension let strategies punish low-duty nodes that trust alone
/// cannot distinguish?
///
/// Sleepers forward everything *while awake*, so their forwarding rate —
/// and hence their trust level — stays high; only their absolute
/// forwarded-packet count (the activity datum of §3.2) is low. A
/// trust-only chromosome therefore cannot tell them from fully active
/// nodes, while the paper's 13-bit chromosome can.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleeperStudy {
    /// Delivery rate of sleepers' own packets under the full 13-bit
    /// (trust x activity) chromosome.
    pub full_sleeper_delivery: f64,
    /// Delivery rate of always-on nodes' packets under the full codec.
    pub full_active_delivery: f64,
    /// Sleeper delivery under the 5-bit trust-only chromosome.
    pub trust_only_sleeper_delivery: f64,
    /// Active delivery under the trust-only chromosome.
    pub trust_only_active_delivery: f64,
    /// Mean energy of a sleeper relative to an active node (same codec
    /// run, full chromosome) — the temptation being policed.
    pub sleeper_energy_ratio: f64,
}

impl SleeperStudy {
    /// The penalty the activity dimension imposes on sleeping:
    /// `(active - sleeper) / active` delivery gap under each codec.
    pub fn activity_penalty(&self) -> (f64, f64) {
        let gap = |active: f64, sleeper: f64| {
            if active == 0.0 {
                0.0
            } else {
                (active - sleeper) / active
            }
        };
        (
            gap(self.full_active_delivery, self.full_sleeper_delivery),
            gap(
                self.trust_only_active_delivery,
                self.trust_only_sleeper_delivery,
            ),
        )
    }
}

/// Runs the sleeper study: `n_sleepers` population members get the given
/// `duty` cycle, the population evolves under `case`, and the converged
/// generation's per-node delivery rates are compared across codecs.
///
/// # Panics
/// Panics if `n_sleepers` ≥ the population size or `duty ∉ (0, 1]`.
pub fn sleeper_study(
    base: &ExperimentConfig,
    case: &CaseSpec,
    n_sleepers: usize,
    duty: f64,
    seed: u64,
) -> SleeperStudy {
    assert!(n_sleepers < base.population, "leave some nodes awake");
    assert!(duty > 0.0 && duty <= 1.0, "duty {duty} outside (0, 1]");

    let run_codec = |codec: StrategyCodec| -> (f64, f64, f64) {
        let mut cfg = base.clone();
        cfg.codec = codec;
        cfg.sleepers = (0..n_sleepers)
            .map(|index| SleeperSpec { index, duty })
            .collect();
        let rep = run_replication(&cfg, case, seed);

        // Observation phase: the converged strategies play one CSN-free
        // tournament with the same duty cycles; per-source deliveries are
        // tracked directly.
        let game_config = GameConfig {
            payoff: cfg.payoff,
            trust: cfg.trust,
            activity: cfg.activity,
            paths: PathGenerator::for_mode(case.mode),
            route_selection: cfg.route_selection,
            gossip: cfg.gossip,
        };
        let size = case.envs[0].normal().min(rep.final_population.len());
        let mut arena = Arena::new(rep.final_population[..size].to_vec(), 0, game_config, 1);
        for s in 0..n_sleepers.min(size) {
            arena.set_duty_cycle(NodeId::from(s), duty);
        }
        let participants: Vec<NodeId> = (0..size as u32).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(transfer_salt()));
        let mut scratch = Scratch::default();
        let mut delivered = vec![0u64; size];
        let mut sourced = vec![0u64; size];
        // Mirror the tournament's sleep handling via Tournament::run-like
        // manual rounds so deliveries can be attributed per source.
        for _round in 0..cfg.rounds {
            // Sample awake set.
            let mut awake: Vec<NodeId> = Vec::with_capacity(size);
            for &p in &participants {
                let d = arena.duty_cycle(p);
                if d >= 1.0 || rand::Rng::gen_bool(&mut rng, d) {
                    awake.push(p);
                }
            }
            if awake.len() < 2 {
                continue;
            }
            for &source in &participants {
                let was_awake = awake.contains(&source);
                if !was_awake {
                    awake.push(source);
                }
                if awake.len() >= 3 {
                    let report = play_game(&mut arena, &mut rng, source, &awake, 0, &mut scratch);
                    sourced[source.index()] += 1;
                    delivered[source.index()] += report.outcome.delivered() as u64;
                }
                if !was_awake {
                    awake.pop();
                }
            }
        }
        let rate_over = |range: std::ops::Range<usize>| -> f64 {
            let d: u64 = range.clone().map(|i| delivered[i]).sum();
            let s: u64 = range.map(|i| sourced[i]).sum();
            if s == 0 {
                0.0
            } else {
                d as f64 / s as f64
            }
        };
        let sleeper_rate = rate_over(0..n_sleepers.min(size));
        let active_rate = rate_over(n_sleepers.min(size)..size);
        // Energy ratio from the observation tournament (full codec only
        // uses it, but compute uniformly).
        let profile = ahn_net::energy::PowerProfile::wavelan();
        let mean = |r: std::ops::Range<usize>| -> f64 {
            let n = r.len().max(1) as f64;
            r.map(|i| arena.energy[i].total_mj(&profile)).sum::<f64>() / n
        };
        let ratio = {
            let active = mean(n_sleepers.min(size)..size);
            if active == 0.0 {
                1.0
            } else {
                mean(0..n_sleepers.min(size)) / active
            }
        };
        (sleeper_rate, active_rate, ratio)
    };

    let (full_sleeper, full_active, energy_ratio) = run_codec(StrategyCodec::Full);
    let (trust_sleeper, trust_active, _) = run_codec(StrategyCodec::TrustOnly);
    SleeperStudy {
        full_sleeper_delivery: full_sleeper,
        full_active_delivery: full_active,
        trust_only_sleeper_delivery: trust_sleeper,
        trust_only_active_delivery: trust_active,
        sleeper_energy_ratio: energy_ratio,
    }
}

#[cfg(test)]
mod sleeper_tests {
    use super::*;
    use ahn_net::PathMode;

    #[test]
    fn sleeper_study_reports_energy_savings() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.population = 12;
        cfg.rounds = 40;
        cfg.generations = 20;
        let case = CaseSpec::mini("sleep", &[0], 12, PathMode::Shorter);
        let study = sleeper_study(&cfg, &case, 3, 0.3, 7);
        // Sleeping must save energy in the observation tournament.
        assert!(
            study.sleeper_energy_ratio < 0.9,
            "sleepers should be cheaper: ratio {}",
            study.sleeper_energy_ratio
        );
        // Deliveries are probabilities.
        for v in [
            study.full_sleeper_delivery,
            study.full_active_delivery,
            study.trust_only_sleeper_delivery,
            study.trust_only_active_delivery,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
        let (_full_gap, _trust_gap) = study.activity_penalty();
    }

    #[test]
    #[should_panic(expected = "leave some nodes awake")]
    fn all_sleepers_rejected() {
        let cfg = ExperimentConfig::smoke();
        let case = CaseSpec::mini("sleep", &[0], 10, PathMode::Shorter);
        sleeper_study(&cfg, &case, cfg.population, 0.5, 0);
    }
}
