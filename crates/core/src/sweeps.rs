//! Parameter sweeps.
//!
//! Three curves the paper never plots but that govern its results:
//!
//! * [`sweep_rounds`] — cooperation vs. the reputation horizon `R`. The
//!   defection basin swallows every run below a critical `R`
//!   (EXPERIMENTS.md, "scale sensitivity"); the paper's R = 300 sits
//!   comfortably above it.
//! * [`sweep_csn`] — cooperation vs. selfish-node density, the
//!   continuous version of environments TE1–TE4.
//! * [`sweep_mutation`] — cooperation vs. the GA's mutation rate; too
//!   much mutation destroys the evolved conventions.

use crate::cases::CaseSpec;
use crate::config::ExperimentConfig;
use crate::experiment::run_experiment;
use ahn_net::PathMode;
use ahn_stats::Summary;
use serde::{Deserialize, Serialize};

/// One point of a sweep curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Final cooperation level across replications.
    pub cooperation: Summary,
}

/// Cooperation as a function of tournament rounds `R`.
pub fn sweep_rounds(base: &ExperimentConfig, case: &CaseSpec, rounds: &[usize]) -> Vec<SweepPoint> {
    rounds
        .iter()
        .map(|&r| {
            let mut cfg = base.clone();
            cfg.rounds = r;
            SweepPoint {
                x: r as f64,
                cooperation: run_experiment(&cfg, case).final_coop,
            }
        })
        .collect()
}

/// Cooperation as a function of CSN density (fraction of each
/// tournament's `size` participants that are constantly selfish).
///
/// # Panics
/// Panics if a density would leave fewer than one normal player.
pub fn sweep_csn(
    base: &ExperimentConfig,
    size: usize,
    mode: PathMode,
    densities: &[f64],
) -> Vec<SweepPoint> {
    densities
        .iter()
        .map(|&d| {
            assert!((0.0..1.0).contains(&d), "density {d} outside [0, 1)");
            let csn = ((size as f64) * d).round() as usize;
            let case = CaseSpec::mini(&format!("csn {:.0}%", d * 100.0), &[csn], size, mode);
            SweepPoint {
                x: d,
                cooperation: run_experiment(base, &case).final_coop,
            }
        })
        .collect()
}

/// Cooperation as a function of the per-bit mutation probability.
pub fn sweep_mutation(base: &ExperimentConfig, case: &CaseSpec, rates: &[f64]) -> Vec<SweepPoint> {
    rates
        .iter()
        .map(|&p| {
            let mut cfg = base.clone();
            cfg.ga.mutation_prob = p;
            SweepPoint {
                x: p,
                cooperation: run_experiment(&cfg, case).final_coop,
            }
        })
        .collect()
}

/// Renders a sweep as an aligned text table.
pub fn render_sweep(title: &str, x_label: &str, points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{title}\n  {x_label:>12}  cooperation (±95% CI)\n");
    for p in points {
        let _ = writeln!(
            out,
            "  {:>12}  {:>7} ± {:>5}",
            trim_float(p.x),
            ahn_stats::pct(p.cooperation.mean().unwrap_or(0.0), 1),
            ahn_stats::pct(p.cooperation.ci95_half_width().unwrap_or(0.0), 1),
        );
    }
    out
}

/// Formats sweep x-values without trailing zeros (300 not 300.000,
/// 0.001 stays 0.001).
fn trim_float(x: f64) -> String {
    if x == x.trunc() {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::smoke();
        c.population = 16;
        c.rounds = 30;
        c.generations = 20;
        c.replications = 3;
        c
    }

    #[test]
    fn rounds_sweep_shows_the_defection_basin() {
        // At 8-participant scale the crossover sits between ~5 and ~40
        // rounds: the short-horizon end must do markedly worse.
        let case = CaseSpec::mini("r-sweep", &[0], 8, PathMode::Shorter);
        let points = sweep_rounds(&cfg(), &case, &[4, 40]);
        assert_eq!(points.len(), 2);
        let short = points[0].cooperation.mean().unwrap();
        let long = points[1].cooperation.mean().unwrap();
        assert!(
            long > short + 0.2,
            "reputation horizon should matter: R=4 -> {short:.2}, R=40 -> {long:.2}"
        );
    }

    #[test]
    fn csn_sweep_is_monotone_at_the_extremes() {
        let points = sweep_csn(&cfg(), 8, PathMode::Shorter, &[0.0, 0.5]);
        let clean = points[0].cooperation.mean().unwrap();
        let half = points[1].cooperation.mean().unwrap();
        assert!(clean > half, "CSN must hurt: {clean:.2} vs {half:.2}");
        assert_eq!(points[0].x, 0.0);
    }

    #[test]
    fn mutation_sweep_extreme_rates_destroy_convention() {
        let case = CaseSpec::mini("m-sweep", &[0], 8, PathMode::Shorter);
        let points = sweep_mutation(&cfg(), &case, &[0.001, 0.25]);
        let paper_rate = points[0].cooperation.mean().unwrap();
        let scrambled = points[1].cooperation.mean().unwrap();
        assert!(
            paper_rate > scrambled,
            "25% per-bit mutation should destroy conventions: {paper_rate:.2} vs {scrambled:.2}"
        );
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let points = vec![
            SweepPoint {
                x: 300.0,
                cooperation: [0.97, 0.99].into_iter().collect(),
            },
            SweepPoint {
                x: 0.001,
                cooperation: [0.5].into_iter().collect(),
            },
        ];
        let text = render_sweep("demo", "rounds", &points);
        assert!(text.contains("300"));
        assert!(text.contains("0.001"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn csn_density_one_is_rejected() {
        let _ = sweep_csn(&cfg(), 8, PathMode::Shorter, &[1.0]);
    }
}
