//! Parameter sweeps: single-axis curves and the multi-axis grid engine.
//!
//! Three curves the paper never plots but that govern its results:
//!
//! * [`sweep_rounds`] — cooperation vs. the reputation horizon `R`. The
//!   defection basin swallows every run below a critical `R`
//!   (EXPERIMENTS.md, "scale sensitivity"); the paper's R = 300 sits
//!   comfortably above it.
//! * [`sweep_csn`] — cooperation vs. selfish-node density, the
//!   continuous version of environments TE1–TE4.
//! * [`sweep_mutation`] — cooperation vs. the GA's mutation rate; too
//!   much mutation destroys the evolved conventions.
//!
//! # The scenario-sweep engine
//!
//! [`run_sweep`] evaluates a full grid — **case × payoff-variant ×
//! network-size × seed-block** — one [`crate::experiment::run_experiment`]
//! per cell, cells in parallel. Every cell is a *pure function* of its
//! resolved `(ExperimentConfig, CaseSpec)`:
//!
//! * the network-size axis rescales each paper environment to `size`
//!   participants, preserving its CSN fraction ([`scale_case`]);
//! * the payoff axis swaps in a named payoff table
//!   ([`payoff_variant`]);
//! * the seed-block axis shifts `base_seed` by a golden-ratio multiple
//!   of the block index ([`block_seed`] — block 0 keeps the base seed,
//!   so cell `(c, p, s, 0)` is byte-identical to running the same
//!   config directly, and shares its `ahn_serve` cache entry);
//! * replications inside a cell fold serially over `base_seed + k`,
//!   which `tests/determinism.rs` pins as bit-identical to
//!   `run_experiment`'s parallel fan-out — so parallelizing across
//!   cells instead of inside them changes wall-clock, never results.
//!
//! The CLI front end is `ahn-exp sweep`; the serving front end is
//! `POST /v1/sweeps` (each cell cached under its canonical hash).

use crate::cases::CaseSpec;
use crate::config::ExperimentConfig;
use crate::experiment::{
    aggregate, run_experiment, run_replication, run_replication_with, ExperimentResult,
};
use ahn_game::{EnvironmentSpec, PayoffConfig};
use ahn_net::PathMode;
use ahn_stats::Summary;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One point of a sweep curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Final cooperation level across replications.
    pub cooperation: Summary,
}

/// Cooperation as a function of tournament rounds `R`.
pub fn sweep_rounds(base: &ExperimentConfig, case: &CaseSpec, rounds: &[usize]) -> Vec<SweepPoint> {
    rounds
        .iter()
        .map(|&r| {
            let mut cfg = base.clone();
            cfg.rounds = r;
            SweepPoint {
                x: r as f64,
                cooperation: run_experiment(&cfg, case).final_coop,
            }
        })
        .collect()
}

/// Cooperation as a function of CSN density (fraction of each
/// tournament's `size` participants that are constantly selfish).
///
/// # Panics
/// Panics if a density would leave fewer than one normal player.
pub fn sweep_csn(
    base: &ExperimentConfig,
    size: usize,
    mode: PathMode,
    densities: &[f64],
) -> Vec<SweepPoint> {
    densities
        .iter()
        .map(|&d| {
            assert!((0.0..1.0).contains(&d), "density {d} outside [0, 1)");
            let csn = ((size as f64) * d).round() as usize;
            let case = CaseSpec::mini(&format!("csn {:.0}%", d * 100.0), &[csn], size, mode);
            SweepPoint {
                x: d,
                cooperation: run_experiment(base, &case).final_coop,
            }
        })
        .collect()
}

/// Cooperation as a function of the per-bit mutation probability.
pub fn sweep_mutation(base: &ExperimentConfig, case: &CaseSpec, rates: &[f64]) -> Vec<SweepPoint> {
    rates
        .iter()
        .map(|&p| {
            let mut cfg = base.clone();
            cfg.ga.mutation_prob = p;
            SweepPoint {
                x: p,
                cooperation: run_experiment(&cfg, case).final_coop,
            }
        })
        .collect()
}

/// Renders a sweep as an aligned text table.
pub fn render_sweep(title: &str, x_label: &str, points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{title}\n  {x_label:>12}  cooperation (±95% CI)\n");
    for p in points {
        let _ = writeln!(
            out,
            "  {:>12}  {:>7} ± {:>5}",
            trim_float(p.x),
            ahn_stats::pct(p.cooperation.mean().unwrap_or(0.0), 1),
            ahn_stats::pct(p.cooperation.ci95_half_width().unwrap_or(0.0), 1),
        );
    }
    out
}

/// Formats sweep x-values without trailing zeros (300 not 300.000,
/// 0.001 stays 0.001).
fn trim_float(x: f64) -> String {
    if x == x.trunc() {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// The payoff-variant names [`payoff_variant`] accepts.
pub const PAYOFF_VARIANTS: [&str; 4] = ["paper", "best-fit", "literal-ocr", "no-reputation"];

/// The pass-through payoff-variant name: keep whatever table the sweep's
/// base configuration already carries. This is how the reconstruction
/// search (`crate::calibrate`) pushes arbitrary candidate tables through
/// the sweep engine — the resolved per-cell config embeds the concrete
/// table, so cache keys stay exact.
pub const BASE_PAYOFF_VARIANT: &str = "base";

/// Resolves a named payoff table (the payoff-variant sweep axis; the
/// same three tables as ablation A1).
pub fn payoff_variant(name: &str) -> Result<PayoffConfig, String> {
    match name {
        "paper" => Ok(PayoffConfig::paper()),
        "best-fit" => Ok(PayoffConfig::best_fit()),
        "literal-ocr" => Ok(PayoffConfig::literal_ocr()),
        "no-reputation" => Ok(PayoffConfig::no_reputation()),
        other => Err(format!(
            "unknown payoff variant {other:?} (expected one of {PAYOFF_VARIANTS:?} \
             or {BASE_PAYOFF_VARIANT:?})"
        )),
    }
}

/// Resolves a payoff-variant name against a base table:
/// [`BASE_PAYOFF_VARIANT`] keeps `base`, anything else goes through
/// [`payoff_variant`].
pub fn resolve_payoff(name: &str, base: &PayoffConfig) -> Result<PayoffConfig, String> {
    if name == BASE_PAYOFF_VARIANT {
        Ok(*base)
    } else {
        payoff_variant(name)
    }
}

/// Rescales one of the paper's cases (1–4) to tournaments of `size`
/// participants, preserving each environment's CSN *fraction* (rounded)
/// and the case's path mode. `size == 50` reproduces the paper case
/// exactly.
///
/// # Panics
/// Panics unless `1 <= case_no <= 4` (like [`CaseSpec::paper`]).
///
/// # Errors
/// Errors when `size` is too small to route (< 3 participants) or the
/// rounded CSN count would leave no normal player.
pub fn scale_case(case_no: usize, size: usize) -> Result<CaseSpec, String> {
    let paper = CaseSpec::paper(case_no);
    if size < 3 {
        return Err(format!(
            "network size {size} cannot route (3 participants minimum)"
        ));
    }
    let mut envs = Vec::with_capacity(paper.envs.len());
    for env in &paper.envs {
        let fraction = env.csn as f64 / env.size as f64;
        let csn = ((size as f64) * fraction).round() as usize;
        if csn >= size {
            return Err(format!(
                "scaling {} to {size} participants leaves no normal player",
                paper.name
            ));
        }
        envs.push(EnvironmentSpec::new(size, csn));
    }
    Ok(CaseSpec {
        name: format!("{} @{size}", paper.name),
        envs,
        mode: paper.mode,
    })
}

/// The derived base seed of seed-block `block`: a golden-ratio stride
/// keeps blocks far apart in seed space (replications within a cell use
/// `seed + k`, so adjacent blocks must not overlap), and block 0 is the
/// identity so the first block of any sweep reproduces — and shares the
/// cache key of — a direct run.
pub fn block_seed(base_seed: u64, block: u64) -> u64 {
    base_seed.wrapping_add(block.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A scenario-sweep grid: the cross product of up to five axes around a
/// base configuration. See the module docs for what each axis means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Base configuration every cell derives from.
    pub base: ExperimentConfig,
    /// Threat-model axis: names from the scenario registry
    /// ([`crate::scenarios::builtin_scenarios`]). `None` — the legacy
    /// wire form — sweeps the base model only and keeps the original
    /// four-axis cell order, so old grids, caches and journals are
    /// untouched.
    pub scenarios: Option<Vec<String>>,
    /// Case axis: paper case numbers (1–4).
    pub cases: Vec<usize>,
    /// Payoff-variant axis: names accepted by [`payoff_variant`].
    pub payoffs: Vec<String>,
    /// Network-size axis: participants per tournament (the paper: 50).
    pub sizes: Vec<usize>,
    /// Seed-block axis: block indices fed to [`block_seed`].
    pub seed_blocks: Vec<u64>,
}

impl SweepGrid {
    /// A grid over `cases` and `sizes` with the paper payoff table and
    /// seed blocks `0..blocks` — the common CLI shape.
    pub fn new(base: ExperimentConfig, cases: &[usize], sizes: &[usize], blocks: u64) -> Self {
        SweepGrid {
            base,
            scenarios: None,
            cases: cases.to_vec(),
            payoffs: vec!["paper".into()],
            sizes: sizes.to_vec(),
            seed_blocks: (0..blocks.max(1)).collect(),
        }
    }

    /// The scenario axis as cell coordinates: the registry names when
    /// the axis is set, or the single legacy "no scenario" coordinate.
    fn scenario_axis(&self) -> Vec<Option<String>> {
        match &self.scenarios {
            Some(names) => names.iter().cloned().map(Some).collect(),
            None => vec![None],
        }
    }

    /// Total cells in the grid (saturating, so hostile axis lengths
    /// cannot overflow the product before a caller's size cap sees it).
    pub fn cell_count(&self) -> usize {
        self.scenario_axis()
            .len()
            .saturating_mul(self.cases.len())
            .saturating_mul(self.payoffs.len())
            .saturating_mul(self.sizes.len())
            .saturating_mul(self.seed_blocks.len())
    }

    /// Validates the axes and every cell they imply (so a bad grid fails
    /// before any compute is spent).
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if self.cell_count() == 0 {
            return Err("every sweep axis needs at least one value".into());
        }
        for &c in &self.cases {
            if !(1..=4).contains(&c) {
                return Err(format!("the paper defines cases 1..=4, not {c}"));
            }
        }
        for name in &self.payoffs {
            resolve_payoff(name, &self.base.payoff)?;
        }
        if let Some(names) = &self.scenarios {
            for name in names {
                crate::scenarios::resolve_scenario(name)?;
            }
        }
        for spec in self.cell_specs() {
            self.resolve(&spec)?;
        }
        Ok(())
    }

    /// Every cell of the grid in deterministic axis order (scenarios
    /// outermost, then cases, seed blocks innermost). Without a
    /// scenario axis this is exactly the legacy four-axis order.
    pub fn cell_specs(&self) -> Vec<SweepCellSpec> {
        let mut out = Vec::with_capacity(self.cell_count());
        for scenario in self.scenario_axis() {
            for &case_no in &self.cases {
                for payoff in &self.payoffs {
                    for &size in &self.sizes {
                        for &seed_block in &self.seed_blocks {
                            out.push(SweepCellSpec {
                                scenario: scenario.clone(),
                                case_no,
                                payoff: payoff.clone(),
                                size,
                                seed_block,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Resolves one cell to the pure `(config, case)` inputs of
    /// [`run_experiment`]. The population grows to fill the scaled
    /// case's normal-player demand when the base population is too
    /// small for a large network size. A scenario coordinate, when
    /// present, is applied last ([`crate::scenarios::Scenario::apply`]),
    /// so scenario-free cells resolve exactly as they always have.
    pub fn resolve(&self, spec: &SweepCellSpec) -> Result<(ExperimentConfig, CaseSpec), String> {
        let case = scale_case(spec.case_no, spec.size)?;
        let mut config = self.base.clone();
        config.payoff = resolve_payoff(&spec.payoff, &self.base.payoff)?;
        config.base_seed = block_seed(self.base.base_seed, spec.seed_block);
        if let Some(name) = &spec.scenario {
            return crate::scenarios::resolve_scenario(name)?.apply(&config, &case);
        }
        config.population = config.population.max(case.required_normal());
        Ok((config, case))
    }
}

/// The coordinates of one sweep cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepCellSpec {
    /// Threat-model coordinate (`None` on the legacy base-model axis).
    pub scenario: Option<String>,
    /// Paper case number (1–4).
    pub case_no: usize,
    /// Payoff-variant name.
    pub payoff: String,
    /// Participants per tournament.
    pub size: usize,
    /// Seed-block index.
    pub seed_block: u64,
}

/// One evaluated cell of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// The cell's grid coordinates.
    pub spec: SweepCellSpec,
    /// Canonical hash of the cell's resolved `(config, case)` pair — a
    /// stable identity for correlating cells across sweeps that share
    /// resolved inputs. (Not the `ahn_serve` cache key: the server
    /// hashes the externally tagged job spec wrapping the same pair,
    /// which is a different byte stream.)
    pub config_hash: u64,
    /// Final-generation cooperation level across the cell's
    /// replications.
    pub final_coop: Summary,
    /// Final-generation cooperation per environment.
    pub per_env_coop: Vec<Summary>,
    /// Final-generation CSN-free-path share per environment.
    pub per_env_csn_free: Vec<Summary>,
}

/// A completed sweep: one entry per cell, in [`SweepGrid::cell_specs`]
/// order. Pure data — two runs of the same grid serialize to identical
/// bytes (the CI sweep smoke pins this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Report schema tag (`"ahn-sweep/1"`).
    pub schema: String,
    /// Replications per cell (from the base config).
    pub replications: usize,
    /// Evaluated cells.
    pub cells: Vec<SweepCell>,
}

/// Evaluates one resolved cell: a serial fold of `run_replication` over
/// the cell's seeds, which `tests/determinism.rs` pins as bit-identical
/// to [`run_experiment`]'s parallel fan-out. Serial-inside /
/// parallel-across-cells is the right shape once the grid has at least
/// as many cells as cores.
fn run_cell(spec: SweepCellSpec, config: &ExperimentConfig, case: &CaseSpec) -> SweepCell {
    let results: Vec<_> = (0..config.replications as u64)
        .map(|k| run_replication(config, case, config.base_seed.wrapping_add(k)))
        .collect();
    let aggregated = aggregate(config, case, &results);
    SweepCell {
        spec,
        config_hash: crate::config::canonical_hash(&(config, case)).unwrap_or(0),
        final_coop: aggregated.final_coop,
        per_env_coop: aggregated.per_env_coop,
        per_env_csn_free: aggregated.per_env_csn_free,
    }
}

/// Reduces the [`ExperimentResult`] of a cell's resolved
/// `(config, case)` to the [`SweepCell`] a local [`run_sweep`] would
/// have produced — bit for bit, because `run_experiment`'s parallel
/// fan-out is pinned identical to the serial fold [`run_sweep`]
/// performs (`tests/determinism.rs`). This is the bridge distributed
/// workers use: a worker computes the ordinary single-experiment job
/// (the exact thing `ahn_serve` caches) and the coordinator folds it
/// back into the sweep.
pub fn cell_from_result(
    spec: SweepCellSpec,
    config: &ExperimentConfig,
    case: &CaseSpec,
    result: &ExperimentResult,
) -> SweepCell {
    SweepCell {
        spec,
        config_hash: crate::config::canonical_hash(&(config, case)).unwrap_or(0),
        final_coop: result.final_coop.clone(),
        per_env_coop: result.per_env_coop.clone(),
        per_env_csn_free: result.per_env_csn_free.clone(),
    }
}

/// Assembles a [`SweepReport`] from cells evaluated elsewhere — in any
/// arrival order, duplicates tolerated — re-keyed to the grid's
/// canonical [`SweepGrid::cell_specs`] order, so the merged report is
/// byte-identical to a single-process [`run_sweep`] regardless of how
/// many workers produced the cells or how their completions
/// interleaved.
///
/// # Errors
/// Errors when the grid is invalid, a cell is missing, a cell's
/// coordinates don't belong to the grid, or two completions of the same
/// cell disagree (which would mean a worker broke the purity contract).
pub fn merge_sweep(grid: &SweepGrid, cells: &[SweepCell]) -> Result<SweepReport, String> {
    grid.validate()?;
    let specs = grid.cell_specs();
    type CellKey<'a> = (Option<&'a str>, usize, &'a str, usize, u64);
    fn key(spec: &SweepCellSpec) -> CellKey<'_> {
        (
            spec.scenario.as_deref(),
            spec.case_no,
            spec.payoff.as_str(),
            spec.size,
            spec.seed_block,
        )
    }
    let index: std::collections::HashMap<CellKey<'_>, usize> =
        specs.iter().enumerate().map(|(i, s)| (key(s), i)).collect();
    let mut slots: Vec<Option<&SweepCell>> = vec![None; specs.len()];
    for cell in cells {
        let key = key(&cell.spec);
        let Some(&i) = index.get(&key) else {
            return Err(format!("cell {:?} does not belong to this grid", cell.spec));
        };
        match slots[i] {
            None => slots[i] = Some(cell),
            // First completion wins; an unequal duplicate means some
            // worker violated the pure-function contract — fail loudly
            // rather than merge nondeterminism.
            Some(first) if first == cell => {}
            Some(_) => {
                return Err(format!(
                    "conflicting duplicate completions for cell {:?}",
                    cell.spec
                ));
            }
        }
    }
    let mut out = Vec::with_capacity(specs.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(cell) => out.push(cell.clone()),
            None => return Err(format!("cell {:?} was never completed", specs[i])),
        }
    }
    Ok(SweepReport {
        schema: "ahn-sweep/1".into(),
        replications: grid.base.replications,
        cells: out,
    })
}

/// Runs every cell of the grid, cells in parallel (bounded by
/// `AHN_THREADS` like all rayon fan-out in this workspace).
///
/// # Errors
/// Errors when the grid fails [`SweepGrid::validate`]; never errors
/// mid-run.
pub fn run_sweep(grid: &SweepGrid) -> Result<SweepReport, String> {
    grid.validate()?;
    crate::threads::log_once("sweep");
    let resolved: Vec<(SweepCellSpec, ExperimentConfig, CaseSpec)> = grid
        .cell_specs()
        .into_iter()
        .map(|spec| {
            let (config, case) = grid.resolve(&spec).expect("validated above");
            (spec, config, case)
        })
        .collect();
    let cells: Vec<SweepCell> = resolved
        .into_par_iter()
        .map(|(spec, config, case)| run_cell(spec, &config, &case))
        .collect();
    Ok(SweepReport {
        schema: "ahn-sweep/1".into(),
        replications: grid.base.replications,
        cells,
    })
}

/// One progress event from [`run_sweep_observed`]. `config_hash` is
/// the cell's canonical-hash identity (see [`SweepCell::config_hash`])
/// — the CLI derives local trace ids from it.
#[derive(Debug, Clone, Copy)]
pub enum SweepObservation<'a> {
    /// A cell started evaluating.
    CellStart {
        /// Position in [`SweepGrid::cell_specs`] order.
        index: usize,
        /// The cell's grid coordinates.
        spec: &'a SweepCellSpec,
        /// Canonical hash of the resolved `(config, case)`.
        config_hash: u64,
    },
    /// One replication of a cell finished, with its per-generation
    /// hot-loop samples.
    Replication {
        /// Position in [`SweepGrid::cell_specs`] order.
        index: usize,
        /// The cell's grid coordinates.
        spec: &'a SweepCellSpec,
        /// Canonical hash of the resolved `(config, case)`.
        config_hash: u64,
        /// Replication index within the cell.
        replication: u64,
        /// The replication's derived seed.
        seed: u64,
        /// Per-generation cooperation + phase-timing samples.
        samples: &'a [ahn_obs::GenSample],
    },
    /// A cell finished all its replications.
    CellDone {
        /// Position in [`SweepGrid::cell_specs`] order.
        index: usize,
        /// The cell's grid coordinates.
        spec: &'a SweepCellSpec,
        /// Canonical hash of the resolved `(config, case)`.
        config_hash: u64,
        /// Wall-clock microseconds the cell took.
        dur_us: u64,
    },
}

/// [`run_sweep`] with live progress introspection: every replication
/// runs under an [`ahn_obs::SeriesRecorder`] and `observe` receives
/// cell-start / per-replication / cell-done events as they happen
/// (cells run in parallel, so events from different cells interleave).
/// Kept separate from [`run_sweep`] so the unobserved path keeps its
/// zero-cost [`ahn_obs::NoopRecorder`]. The report is bit-identical to
/// [`run_sweep`]'s: observation never touches seeds or results.
///
/// # Errors
/// Errors when the grid fails [`SweepGrid::validate`]; never errors
/// mid-run.
pub fn run_sweep_observed<F>(grid: &SweepGrid, observe: &F) -> Result<SweepReport, String>
where
    F: Fn(SweepObservation<'_>) + Sync,
{
    grid.validate()?;
    crate::threads::log_once("sweep");
    // The vendored rayon shim has no `enumerate`; carry the index.
    let resolved: Vec<(usize, SweepCellSpec, ExperimentConfig, CaseSpec)> = grid
        .cell_specs()
        .into_iter()
        .enumerate()
        .map(|(index, spec)| {
            let (config, case) = grid.resolve(&spec).expect("validated above");
            (index, spec, config, case)
        })
        .collect();
    let cells: Vec<SweepCell> = resolved
        .into_par_iter()
        .map(|(index, spec, config, case)| {
            let config_hash = crate::config::canonical_hash(&(&config, &case)).unwrap_or(0);
            observe(SweepObservation::CellStart {
                index,
                spec: &spec,
                config_hash,
            });
            let started = std::time::Instant::now();
            let results: Vec<_> = (0..config.replications as u64)
                .map(|k| {
                    let seed = config.base_seed.wrapping_add(k);
                    let mut recorder = ahn_obs::SeriesRecorder::default();
                    let result = run_replication_with(&config, &case, seed, &mut recorder);
                    observe(SweepObservation::Replication {
                        index,
                        spec: &spec,
                        config_hash,
                        replication: k,
                        seed,
                        samples: &recorder.samples,
                    });
                    result
                })
                .collect();
            let aggregated = aggregate(&config, &case, &results);
            observe(SweepObservation::CellDone {
                index,
                spec: &spec,
                config_hash,
                dur_us: started.elapsed().as_micros() as u64,
            });
            SweepCell {
                spec,
                config_hash,
                final_coop: aggregated.final_coop,
                per_env_coop: aggregated.per_env_coop,
                per_env_csn_free: aggregated.per_env_csn_free,
            }
        })
        .collect();
    Ok(SweepReport {
        schema: "ahn-sweep/1".into(),
        replications: grid.base.replications,
        cells,
    })
}

/// Renders a sweep report as an aligned text table. The scenario
/// column appears only when some cell carries a scenario coordinate,
/// so base-model sweep output is unchanged.
pub fn render_sweep_report(report: &SweepReport) -> String {
    use std::fmt::Write as _;
    let with_scenarios = report.cells.iter().any(|c| c.spec.scenario.is_some());
    let mut out = format!(
        "scenario sweep: {} cells x {} replications\n",
        report.cells.len(),
        report.replications
    );
    if with_scenarios {
        out.push_str("scenario           ");
    }
    out.push_str("case  payoff         size  block  cooperation (±95% CI)\n");
    for cell in &report.cells {
        if with_scenarios {
            let _ = write!(
                out,
                "{:<19}",
                cell.spec.scenario.as_deref().unwrap_or("base")
            );
        }
        let _ = writeln!(
            out,
            "  {:>3}  {:<13} {:>5}  {:>5}  {:>7} ± {:>5}",
            cell.spec.case_no,
            cell.spec.payoff,
            cell.spec.size,
            cell.spec.seed_block,
            ahn_stats::pct(cell.final_coop.mean().unwrap_or(0.0), 1),
            ahn_stats::pct(cell.final_coop.ci95_half_width().unwrap_or(0.0), 1),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::smoke();
        c.population = 16;
        c.rounds = 30;
        c.generations = 20;
        c.replications = 3;
        c
    }

    #[test]
    fn rounds_sweep_shows_the_defection_basin() {
        // At 8-participant scale the crossover sits between ~5 and ~40
        // rounds: the short-horizon end must do markedly worse.
        let case = CaseSpec::mini("r-sweep", &[0], 8, PathMode::Shorter);
        let points = sweep_rounds(&cfg(), &case, &[4, 40]);
        assert_eq!(points.len(), 2);
        let short = points[0].cooperation.mean().unwrap();
        let long = points[1].cooperation.mean().unwrap();
        assert!(
            long > short + 0.2,
            "reputation horizon should matter: R=4 -> {short:.2}, R=40 -> {long:.2}"
        );
    }

    #[test]
    fn csn_sweep_is_monotone_at_the_extremes() {
        let points = sweep_csn(&cfg(), 8, PathMode::Shorter, &[0.0, 0.5]);
        let clean = points[0].cooperation.mean().unwrap();
        let half = points[1].cooperation.mean().unwrap();
        assert!(clean > half, "CSN must hurt: {clean:.2} vs {half:.2}");
        assert_eq!(points[0].x, 0.0);
    }

    #[test]
    fn mutation_sweep_extreme_rates_destroy_convention() {
        let case = CaseSpec::mini("m-sweep", &[0], 8, PathMode::Shorter);
        let points = sweep_mutation(&cfg(), &case, &[0.001, 0.25]);
        let paper_rate = points[0].cooperation.mean().unwrap();
        let scrambled = points[1].cooperation.mean().unwrap();
        assert!(
            paper_rate > scrambled,
            "25% per-bit mutation should destroy conventions: {paper_rate:.2} vs {scrambled:.2}"
        );
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let points = vec![
            SweepPoint {
                x: 300.0,
                cooperation: [0.97, 0.99].into_iter().collect(),
            },
            SweepPoint {
                x: 0.001,
                cooperation: [0.5].into_iter().collect(),
            },
        ];
        let text = render_sweep("demo", "rounds", &points);
        assert!(text.contains("300"));
        assert!(text.contains("0.001"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn csn_density_one_is_rejected() {
        let _ = sweep_csn(&cfg(), 8, PathMode::Shorter, &[1.0]);
    }

    fn grid_cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::smoke();
        c.generations = 3;
        c.replications = 2;
        c
    }

    #[test]
    fn scale_case_preserves_csn_fraction_and_mode() {
        // Case 2 is TE4 (30 of 50 = 60% CSN), shorter paths.
        let scaled = scale_case(2, 10).unwrap();
        assert_eq!(scaled.envs, vec![EnvironmentSpec::new(10, 6)]);
        assert_eq!(scaled.mode, PathMode::Shorter);
        assert_eq!(scaled.name, "case 2 @10");
        // Size 50 reproduces the paper environments exactly.
        assert_eq!(scale_case(4, 50).unwrap().envs, CaseSpec::paper(4).envs);
        // Too small to route.
        assert!(scale_case(1, 2).is_err());
    }

    #[test]
    fn payoff_variants_resolve_and_reject() {
        for name in PAYOFF_VARIANTS {
            payoff_variant(name).unwrap();
        }
        let err = payoff_variant("galactic").unwrap_err();
        assert!(err.contains("unknown payoff variant"), "{err}");
    }

    #[test]
    fn base_variant_passes_the_base_table_through() {
        let custom = PayoffConfig {
            forward: [0.3, 0.5, 1.0, 2.0],
            ..PayoffConfig::paper()
        };
        assert_eq!(resolve_payoff("base", &custom).unwrap(), custom);
        assert_eq!(
            resolve_payoff("paper", &custom).unwrap(),
            PayoffConfig::paper()
        );
        // A grid whose payoff axis is ["base"] evaluates the base
        // config's table in every cell.
        let mut base = grid_cfg();
        base.payoff = custom;
        let grid = SweepGrid {
            base,
            scenarios: None,
            cases: vec![1],
            payoffs: vec!["base".into()],
            sizes: vec![10],
            seed_blocks: vec![0],
        };
        grid.validate().unwrap();
        let (config, _) = grid.resolve(&grid.cell_specs()[0]).unwrap();
        assert_eq!(config.payoff, custom);
        // Unknown names still fail validation.
        let mut bad = grid;
        bad.payoffs = vec!["bass".into()];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn block_zero_is_the_identity() {
        assert_eq!(block_seed(42, 0), 42);
        assert_ne!(block_seed(42, 1), block_seed(42, 2));
        // Blocks are spaced far beyond any replication offset.
        assert!(block_seed(0, 1).abs_diff(block_seed(0, 0)) > 1 << 32);
    }

    #[test]
    fn grid_expands_in_deterministic_axis_order() {
        let grid = SweepGrid {
            base: grid_cfg(),
            scenarios: None,
            cases: vec![1, 2],
            payoffs: vec!["paper".into(), "literal-ocr".into()],
            sizes: vec![10, 12],
            seed_blocks: vec![0, 1],
        };
        assert_eq!(grid.cell_count(), 16);
        let specs = grid.cell_specs();
        assert_eq!(specs.len(), 16);
        assert_eq!(specs[0].case_no, 1);
        assert_eq!(specs[0].seed_block, 0);
        assert_eq!(specs[1].seed_block, 1, "seed blocks are innermost");
        assert_eq!(specs[15].case_no, 2);
        assert_eq!(specs[15].size, 12);
        grid.validate().unwrap();
    }

    #[test]
    fn grid_validation_rejects_bad_axes() {
        let ok = SweepGrid::new(grid_cfg(), &[1], &[10], 1);
        ok.validate().unwrap();
        let mut bad = ok.clone();
        bad.cases = vec![5];
        assert!(bad.validate().unwrap_err().contains("cases 1..=4"));
        let mut bad = ok.clone();
        bad.payoffs = vec!["x".into()];
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.sizes = vec![];
        assert!(bad.validate().unwrap_err().contains("at least one value"));
        let mut bad = ok;
        bad.sizes = vec![2];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn cells_match_run_experiment_bit_for_bit() {
        // A cell is the same pure function ahn_serve runs for the
        // equivalent single-case job — so its summaries (and cache key)
        // must match run_experiment exactly.
        let grid = SweepGrid::new(grid_cfg(), &[1], &[10], 1);
        let report = run_sweep(&grid).unwrap();
        assert_eq!(report.cells.len(), 1);
        let (config, case) = grid.resolve(&grid.cell_specs()[0]).unwrap();
        let direct = run_experiment(&config, &case);
        assert_eq!(report.cells[0].final_coop, direct.final_coop);
        assert_eq!(report.cells[0].per_env_coop, direct.per_env_coop);
        assert_eq!(
            report.cells[0].config_hash,
            crate::config::canonical_hash(&(&config, &case)).unwrap()
        );
    }

    #[test]
    fn sweep_is_deterministic_and_serializable() {
        let grid = SweepGrid::new(grid_cfg(), &[1, 2], &[10, 12], 1);
        let a = run_sweep(&grid).unwrap();
        let b = run_sweep(&grid).unwrap();
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, serde_json::to_string(&b).unwrap());
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
        assert_eq!(a.cells.len(), 4);
        // Different seed blocks produce different trajectories.
        let shifted = SweepGrid {
            seed_blocks: vec![3],
            ..grid
        };
        let c = run_sweep(&shifted).unwrap();
        assert_ne!(a.cells[0].final_coop, c.cells[0].final_coop);
    }

    #[test]
    fn cell_from_result_matches_run_sweep_bit_for_bit() {
        let grid = SweepGrid::new(grid_cfg(), &[1, 2], &[10], 2);
        let local = run_sweep(&grid).unwrap();
        for (spec, expected) in grid.cell_specs().into_iter().zip(&local.cells) {
            let (config, case) = grid.resolve(&spec).unwrap();
            let result = run_experiment(&config, &case);
            let rebuilt = cell_from_result(spec, &config, &case, &result);
            assert_eq!(&rebuilt, expected);
        }
    }

    #[test]
    fn merge_sweep_is_order_and_duplicate_insensitive() {
        let grid = SweepGrid::new(grid_cfg(), &[1, 2], &[10, 12], 1);
        let local = run_sweep(&grid).unwrap();
        // Reversed arrival order plus a duplicated cell merges to the
        // exact local report (and identical bytes).
        let mut shuffled: Vec<SweepCell> = local.cells.iter().rev().cloned().collect();
        shuffled.push(local.cells[1].clone());
        let merged = merge_sweep(&grid, &shuffled).unwrap();
        assert_eq!(merged, local);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&local).unwrap()
        );
        // A missing cell fails.
        let partial = &local.cells[..3];
        let err = merge_sweep(&grid, partial).unwrap_err();
        assert!(err.contains("never completed"), "{err}");
        // A stray cell from another grid fails.
        let mut stray = local.cells.clone();
        stray[0].spec.seed_block = 7;
        let err = merge_sweep(&grid, &stray).unwrap_err();
        assert!(err.contains("does not belong"), "{err}");
        // A conflicting duplicate fails.
        let mut conflict = local.cells.clone();
        let mut twin = conflict[0].clone();
        twin.config_hash ^= 1;
        conflict.push(twin);
        let err = merge_sweep(&grid, &conflict).unwrap_err();
        assert!(err.contains("conflicting duplicate"), "{err}");
    }

    #[test]
    fn sweep_render_lists_every_cell() {
        let grid = SweepGrid::new(grid_cfg(), &[1], &[10, 12], 1);
        let report = run_sweep(&grid).unwrap();
        let text = render_sweep_report(&report);
        assert_eq!(text.lines().count(), 2 + report.cells.len());
        assert!(text.contains("paper"), "{text}");
        assert!(text.contains("12"), "{text}");
    }
}
