//! Runtime self-checks of the paper-input presets (`ahn-exp check`).
//!
//! Tables 1–4 of the paper are *inputs*; the test suite pins them at
//! compile time, and this module re-verifies them at runtime — including
//! a chi-squared goodness-of-fit of the path samplers against Tables 2–3
//! — so a packaged binary can prove its presets on any machine.

use ahn_game::EnvironmentSpec;
use ahn_net::{AltPathDist, PathLengthDist, PathMode, TrustTable};
use ahn_stats::{chi_squared, chi_squared_crit_999};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One check's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// What was checked (e.g. "Table 1: TE2 composition").
    pub name: String,
    /// `Ok` or a description of the deviation.
    pub outcome: Result<(), String>,
}

fn check(name: &str, ok: bool, detail: &str) -> CheckResult {
    CheckResult {
        name: name.to_string(),
        outcome: if ok { Ok(()) } else { Err(detail.to_string()) },
    }
}

/// Runs every preset check; deterministic (fixed seed for the sampling
/// checks).
pub fn run_all() -> Vec<CheckResult> {
    let mut out = Vec::new();

    // Table 1 — environments.
    let expected = [(1usize, 0usize), (2, 10), (3, 25), (4, 30)];
    for (i, csn) in expected {
        let te = EnvironmentSpec::paper_te(i);
        out.push(check(
            &format!("Table 1: TE{i} composition"),
            te.size == 50 && te.csn == csn,
            &format!("expected 50 participants / {csn} CSN, got {te:?}"),
        ));
    }

    // Table 2 — hop-count distributions (point probabilities + sampling).
    let sp = PathLengthDist::paper_shorter();
    let lp = PathLengthDist::paper_longer();
    out.push(check(
        "Table 2: SP point probabilities",
        (sp.prob(2), sp.prob(3), sp.prob(5), sp.prob(9)) == (0.2, 0.3, 0.05, 0.0),
        "SP probabilities disagree with Table 2",
    ));
    out.push(check(
        "Table 2: LP point probabilities",
        (lp.prob(2), lp.prob(5), lp.prob(9), lp.prob(10)) == (0.1, 0.1, 0.15, 0.15),
        "LP probabilities disagree with Table 2",
    ));
    let mut rng = ChaCha8Rng::seed_from_u64(2007);
    for (label, dist) in [("SP", &sp), ("LP", &lp)] {
        let mut counts = [0u64; 9];
        for _ in 0..50_000 {
            counts[dist.sample(&mut rng) - 2] += 1;
        }
        let expected: Vec<f64> = (2..=10).map(|h| dist.prob(h)).collect();
        // Drop zero-probability bins before the chi-squared test.
        let (mut obs, mut exp) = (Vec::new(), Vec::new());
        for (c, p) in counts.iter().zip(&expected) {
            if *p > 0.0 {
                obs.push(*c);
                exp.push(*p);
            } else if *c > 0 {
                obs.push(*c);
                exp.push(0.0);
            }
        }
        let total: f64 = exp.iter().sum();
        let exp: Vec<f64> = exp.iter().map(|p| p / total).collect();
        let stat = chi_squared(&obs, &exp);
        let crit = chi_squared_crit_999(obs.len() - 1);
        out.push(check(
            &format!("Table 2: {label} sampler goodness-of-fit"),
            stat < crit,
            &format!("chi2 = {stat:.2} exceeds the 99.9% critical value {crit:.2}"),
        ));
    }

    // Table 3 — alternate-path counts.
    let alt = AltPathDist::paper();
    out.push(check(
        "Table 3: bucket rows",
        alt.row(2) == &[0.5, 0.3, 0.2]
            && alt.row(5) == &[0.6, 0.25, 0.15]
            && alt.row(8) == &[0.8, 0.15, 0.05],
        "alternate-path rows disagree with Table 3",
    ));
    let mut counts = [0u64; 3];
    for _ in 0..50_000 {
        counts[alt.sample(&mut rng, 4) - 1] += 1;
    }
    let stat = chi_squared(&counts, &[0.6, 0.25, 0.15]);
    out.push(check(
        "Table 3: sampler goodness-of-fit (4-6 hops)",
        stat < chi_squared_crit_999(2),
        &format!("chi2 = {stat:.2}"),
    ));

    // Table 4 — evaluation cases.
    let c3 = crate::cases::CaseSpec::paper(3);
    let c4 = crate::cases::CaseSpec::paper(4);
    out.push(check(
        "Table 4: cases 3-4 environments and modes",
        c3.envs.len() == 4
            && c4.envs.len() == 4
            && c3.mode == PathMode::Shorter
            && c4.mode == PathMode::Longer,
        "case 3/4 presets disagree with Table 4",
    ));

    // Fig. 1b — trust lookup.
    let t = TrustTable::paper();
    out.push(check(
        "Fig 1b: trust lookup (0.95 -> TL3, unknown -> TL1)",
        t.level(0.95) == ahn_net::TrustLevel::T3 && t.unknown == ahn_net::TrustLevel::T1,
        "trust table disagrees with Fig 1b / §6.1",
    ));

    // §6.1 — GA parameters.
    let cfg = crate::config::ExperimentConfig::paper();
    out.push(check(
        "§6.1: GA parameters (0.9 / 0.001 / 300 / 500 / 60)",
        cfg.ga.crossover_prob == 0.9
            && cfg.ga.mutation_prob == 0.001
            && cfg.rounds == 300
            && cfg.generations == 500
            && cfg.replications == 60,
        "paper preset disagrees with §6.1",
    ));

    out
}

/// Renders check results; returns `Err` with the rendered text if any
/// check failed.
pub fn render(results: &[CheckResult]) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut failed = 0;
    for r in results {
        match &r.outcome {
            Ok(()) => {
                let _ = writeln!(out, "  ok   {}", r.name);
            }
            Err(e) => {
                failed += 1;
                let _ = writeln!(out, "  FAIL {} — {e}", r.name);
            }
        }
    }
    let _ = writeln!(out, "{} checks, {failed} failed", results.len());
    if failed == 0 {
        Ok(out)
    } else {
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_preset_checks_pass() {
        let results = run_all();
        let rendered = render(&results).expect("preset checks must pass");
        assert!(rendered.contains("0 failed"));
        assert!(results.len() >= 10);
    }

    #[test]
    fn render_reports_failures() {
        let results = vec![CheckResult {
            name: "demo".into(),
            outcome: Err("broken".into()),
        }];
        let err = render(&results).unwrap_err();
        assert!(err.contains("FAIL demo"));
        assert!(err.contains("1 failed"));
    }
}
