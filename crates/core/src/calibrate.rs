//! Reconstruction search: calibrating the OCR-garbled Fig. 2 payoff
//! table (and the GA's selection pressure) against the paper's reported
//! cooperation levels.
//!
//! # Why this exists
//!
//! Cases 1 and 3 of Table 4 reproduce closely with the default
//! reconstruction of the intermediate payoff table, but the harsh
//! regimes — case 2 (60 % CSN under shorter paths) and case 4 (longer
//! paths) — collapse to all-defect at paper scale, where the paper
//! reports 19 % and 54 % cooperation. The leading suspects are the
//! garbled Fig. 2 digits (`ahn_game::payoff` module docs) and the
//! unreported selection pressure. Instead of hand-tweaking, this module
//! searches the whole space the prose constraints allow:
//!
//! * **payoff axis** — every member of
//!   [`ahn_game::enumerate_reconstructions`]: permutations of the OCR
//!   digit multiset across the eight intermediate cells, one pool per
//!   reading of the garbled digit, constraint-filtered;
//! * **scale axis** — the surviving tables with both intermediate rows
//!   multiplied by each factor in `scales`
//!   ([`PayoffConfig::scaled_intermediate`]), varying the weight of
//!   per-decision payoffs against the fixed source payoff S = 5;
//! * **selection axis** — the named selection-pressure variants of
//!   [`SELECTION_VARIANTS`] (tournament sizes, elitism, roulette,
//!   linear ranking).
//!
//! Each candidate is evaluated across the configured paper cases via
//! [`crate::sweeps::run_sweep`] (one pure experiment per case ×
//! seed-block cell, cells in parallel, replications serial-folded — so
//! results are bit-identical whatever `AHN_THREADS` says) and scored
//! with a deterministic loss: the L1 distance, summed over cases,
//! between its replication-averaged final cooperation and the paper's
//! targets ([`PAPER_TARGETS`]).
//!
//! The report ranks every candidate by loss, marks the Pareto front of
//! per-case errors (a candidate is on the front when no other candidate
//! is at least as close on every case and strictly closer on one), and
//! states — with numbers — whether any candidate sustains nonzero
//! cooperation in the harsh regimes. The front ends are `ahn-exp
//! calibrate` and `POST /v1/calibrations`; per-cell results flow through
//! the same cache keys as direct runs and sweeps, so repeated searches
//! hit the `ahn_serve` cache.

use crate::config::ExperimentConfig;
use crate::sweeps::{run_sweep, SweepGrid, SweepReport, BASE_PAYOFF_VARIANT};
use ahn_ga::Selection;
use ahn_game::{enumerate_reconstructions, PayoffConfig};
use serde::{Deserialize, Serialize};

/// The paper's target final cooperation level per case (1–4), §6.2's
/// quoted numbers (the same reference values
/// `crate::report::fig4_summary` prints): 97 %, 19 %, 38 %, 54 %.
pub const PAPER_TARGETS: [f64; 4] = [0.97, 0.19, 0.38, 0.54];

/// The paper's target cooperation for one case (1–4).
///
/// # Panics
/// Panics unless `1 <= case_no <= 4` (like [`crate::CaseSpec::paper`]).
pub fn paper_target(case_no: usize) -> f64 {
    assert!(
        (1..=4).contains(&case_no),
        "the paper defines cases 1..=4, not {case_no}"
    );
    PAPER_TARGETS[case_no - 1]
}

/// Table 5's per-environment cooperation levels for case 3
/// (TE1..TE4).
pub const TABLE5_CASE3: [f64; 4] = [0.99, 0.66, 0.28, 0.19];

/// Table 5's per-environment cooperation levels for case 4
/// (TE1..TE4).
pub const TABLE5_CASE4: [f64; 4] = [0.99, 0.41, 0.07, 0.05];

/// The paper's per-environment cooperation targets, where it reports
/// them: the multi-environment cases 3 and 4 get Table 5's TE1–TE4
/// columns; the single-environment cases 1 and 2 have only the
/// aggregate §6.2 number ([`paper_target`]) and return `None`.
///
/// The per-environment view is the sharper yardstick for cases 3–4:
/// their aggregate cooperation averages environments with very
/// different equilibria, while Table 5 pins each environment
/// separately.
///
/// # Panics
/// Panics unless `1 <= case_no <= 4`.
pub fn per_env_targets(case_no: usize) -> Option<&'static [f64; 4]> {
    match case_no {
        1 | 2 => None,
        3 => Some(&TABLE5_CASE3),
        4 => Some(&TABLE5_CASE4),
        other => panic!("the paper defines cases 1..=4, not {other}"),
    }
}

/// The named selection-pressure variants of the search's selection
/// axis, resolvable via [`selection_variant`].
pub const SELECTION_VARIANTS: [&str; 6] = [
    "paper",
    "tournament-3",
    "tournament-4",
    "elitist-2",
    "roulette",
    "rank",
];

/// Resolves a named selection-pressure variant to `(operator, elitism)`.
///
/// `"paper"` is the paper's size-2 tournament with no elitism; the
/// others vary exactly one pressure knob at a time: larger tournaments
/// (`"tournament-3"`, `"tournament-4"`), two elite slots
/// (`"elitist-2"`), fitness-proportionate selection (`"roulette"`), and
/// linear ranking at pressure 1.8 (`"rank"`).
pub fn selection_variant(name: &str) -> Result<(Selection, usize), String> {
    match name {
        "paper" => Ok((Selection::paper(), 0)),
        "tournament-3" => Ok((Selection::Tournament { size: 3 }, 0)),
        "tournament-4" => Ok((Selection::Tournament { size: 4 }, 0)),
        "elitist-2" => Ok((Selection::paper(), 2)),
        "roulette" => Ok((Selection::Roulette, 0)),
        "rank" => Ok((Selection::Rank { pressure: 1.8 }, 0)),
        other => Err(format!(
            "unknown selection variant {other:?} (expected one of {SELECTION_VARIANTS:?})"
        )),
    }
}

/// The scored error of one case, given its replication-averaged
/// aggregate cooperation and per-environment cooperation levels: the
/// mean per-environment L1 distance to Table 5's column when the paper
/// reports one ([`per_env_targets`]), the distance to the aggregate
/// §6.2 number ([`paper_target`]) otherwise. Always finite for finite
/// inputs.
pub fn case_error(case_no: usize, aggregate_coop: f64, per_env_coop: &[f64]) -> f64 {
    match per_env_targets(case_no) {
        Some(env_targets) if per_env_coop.len() == env_targets.len() => {
            per_env_coop
                .iter()
                .zip(env_targets)
                .map(|(c, t)| (c - t).abs())
                .sum::<f64>()
                / env_targets.len() as f64
        }
        _ => (aggregate_coop - paper_target(case_no)).abs(),
    }
}

/// One candidate reconstruction: a concrete intermediate payoff table
/// (already scaled) plus a selection-pressure variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSpec {
    /// Index in the full deterministic candidate order (before any
    /// `max_candidates` cap) — stable across runs, threads, processes.
    pub id: usize,
    /// The candidate intermediate payoff table, scale already applied.
    pub payoff: PayoffConfig,
    /// The scale factor applied to the enumerated table.
    pub scale: f64,
    /// Selection-variant name ([`SELECTION_VARIANTS`]).
    pub selection: String,
}

/// A reconstruction-search grid: payoff-table family × scale ×
/// selection variant, evaluated over `cases` × `seed_blocks` at network
/// size `size`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationGrid {
    /// Base configuration every candidate derives from (its own payoff
    /// table is replaced by each candidate's).
    pub base: ExperimentConfig,
    /// Paper case numbers to score against (1–4).
    pub cases: Vec<usize>,
    /// Scale factors applied to every enumerated table.
    pub scales: Vec<f64>,
    /// Selection-variant names ([`SELECTION_VARIANTS`]).
    pub selections: Vec<String>,
    /// Participants per tournament (the paper: 50; environments rescale
    /// preserving their CSN fraction, as in the sweep engine).
    pub size: usize,
    /// Seed-block indices ([`crate::sweeps::block_seed`]); per-case
    /// cooperation averages over blocks, so more blocks mean a smoother
    /// (and resumable, block-by-block cacheable) objective.
    pub seed_blocks: Vec<u64>,
    /// Deterministic cap on the candidate count (first `n` in candidate
    /// order); 0 means unlimited.
    pub max_candidates: usize,
}

impl CalibrationGrid {
    /// A small smoke-scale search (2 candidates × cases 1–2), used by
    /// tests, the bench row and the CI calibrate smoke.
    pub fn smoke() -> Self {
        let mut base = ExperimentConfig::smoke();
        base.generations = 4;
        base.replications = 2;
        CalibrationGrid {
            base,
            cases: vec![1, 2],
            scales: vec![1.0],
            selections: vec!["paper".into()],
            size: 10,
            seed_blocks: vec![0],
            max_candidates: 2,
        }
    }

    /// The full candidate list in deterministic order — enumerated
    /// tables outermost (their sorted order), then scales, then
    /// selection variants — truncated at `max_candidates` when nonzero.
    pub fn candidates(&self) -> Vec<CandidateSpec> {
        let tables = enumerate_reconstructions();
        let mut out = Vec::new();
        let mut id = 0usize;
        'outer: for table in &tables {
            for &scale in &self.scales {
                for selection in &self.selections {
                    if self.max_candidates > 0 && out.len() >= self.max_candidates {
                        break 'outer;
                    }
                    out.push(CandidateSpec {
                        id,
                        payoff: table.scaled_intermediate(scale),
                        scale,
                        selection: selection.clone(),
                    });
                    id += 1;
                }
            }
        }
        out
    }

    /// Candidates the grid will evaluate (after the cap).
    pub fn candidate_count(&self) -> usize {
        let full = enumerate_reconstructions()
            .len()
            .saturating_mul(self.scales.len())
            .saturating_mul(self.selections.len());
        if self.max_candidates > 0 {
            full.min(self.max_candidates)
        } else {
            full
        }
    }

    /// Total experiment cells the search implies
    /// (candidates × cases × seed blocks).
    pub fn cell_count(&self) -> usize {
        self.candidate_count()
            .saturating_mul(self.cases.len())
            .saturating_mul(self.seed_blocks.len())
    }

    /// Resolves one candidate to the base configuration its cells
    /// derive from: the candidate's payoff table and selection variant
    /// grafted onto `base`.
    pub fn resolve(&self, candidate: &CandidateSpec) -> Result<ExperimentConfig, String> {
        let (selection, elitism) = selection_variant(&candidate.selection)?;
        let mut config = self.base.clone();
        config.payoff = candidate.payoff;
        config.ga.selection = selection;
        config.ga.elitism = elitism;
        config.validate()?;
        Ok(config)
    }

    /// The per-candidate sweep grid: `cases` × the candidate's table
    /// (via the [`BASE_PAYOFF_VARIANT`] pass-through) × `size` ×
    /// `seed_blocks`. Because the sweep engine resolves each cell to a
    /// concrete `(config, case)` pair, a calibration cell shares its
    /// cache key with any direct run or sweep of the same inputs.
    pub fn sweep_for(&self, candidate: &CandidateSpec) -> Result<SweepGrid, String> {
        Ok(SweepGrid {
            base: self.resolve(candidate)?,
            scenarios: None,
            cases: self.cases.clone(),
            payoffs: vec![BASE_PAYOFF_VARIANT.into()],
            sizes: vec![self.size],
            seed_blocks: self.seed_blocks.clone(),
        })
    }

    /// Validates the axes and the first candidate's implied sweep (all
    /// candidates share case/size geometry, so one check covers the
    /// expensive invariants before any compute is spent).
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if self.cases.is_empty() || self.scales.is_empty() || self.selections.is_empty() {
            return Err("every calibration axis needs at least one value".into());
        }
        if self.seed_blocks.is_empty() {
            return Err("at least one seed block is required".into());
        }
        for &c in &self.cases {
            if !(1..=4).contains(&c) {
                return Err(format!("the paper defines cases 1..=4, not {c}"));
            }
        }
        for &s in &self.scales {
            if !(s.is_finite() && s > 0.0) {
                return Err(format!(
                    "scale factors must be positive and finite, not {s}"
                ));
            }
        }
        for name in &self.selections {
            selection_variant(name)?;
        }
        let candidates = self.candidates();
        let Some(first) = candidates.first() else {
            return Err("the candidate family is empty".into());
        };
        self.sweep_for(first)?.validate()?;
        Ok(())
    }
}

/// One scored candidate of a finished search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateResult {
    /// The candidate that was evaluated.
    pub spec: CandidateSpec,
    /// Replication-averaged final cooperation per case (aligned with
    /// the grid's `cases`; averaged over seed blocks).
    pub per_case_coop: Vec<f64>,
    /// `|cooperation − target|` per case.
    pub per_case_error: Vec<f64>,
    /// The L1 loss: the sum of the per-case errors.
    pub loss: f64,
    /// Whether the candidate is on the Pareto front of per-case errors.
    pub pareto: bool,
    /// Canonical hash of the candidate's resolved base configuration
    /// (`crate::config::canonical_hash`), for correlating candidates
    /// across searches.
    pub config_hash: u64,
}

/// What the search says about one harsh regime (case 2 or 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarshRegimeFinding {
    /// The case number (2 or 4).
    pub case_no: usize,
    /// The paper's target cooperation for the case.
    pub target: f64,
    /// The highest replication-averaged cooperation any candidate
    /// reached in the case.
    pub best_coop: f64,
    /// The candidate id reaching `best_coop`.
    pub best_candidate: usize,
    /// Whether that best exceeds the 5 % noise floor — i.e. whether
    /// *any* constraint-satisfying reconstruction sustains nonzero
    /// cooperation in the regime at the searched scale.
    pub sustained: bool,
}

/// A completed reconstruction search. Pure data: two runs of the same
/// grid serialize to identical bytes whatever `AHN_THREADS` says (the
/// CI calibrate smoke pins this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Report schema tag (`"ahn-calibrate/1"`).
    pub schema: String,
    /// The cases scored, in grid order.
    pub cases: Vec<usize>,
    /// The paper's target per scored case (aligned with `cases`).
    pub targets: Vec<f64>,
    /// Replications per cell (from the base config).
    pub replications: usize,
    /// Seed blocks averaged into each per-case cooperation.
    pub seed_blocks: usize,
    /// Participants per tournament.
    pub size: usize,
    /// Every evaluated candidate, ranked by ascending loss (ties broken
    /// by candidate id).
    pub candidates: Vec<CandidateResult>,
    /// Per-harsh-regime findings (cases 2 and 4, when searched).
    pub harsh: Vec<HarshRegimeFinding>,
    /// One-line deterministic statement of the harsh-regime outcome,
    /// with numbers.
    pub summary: String,
}

/// The cooperation level below which a harsh regime counts as collapsed
/// (all-defect populations measure a few percent residual forwarding
/// before conventions die out).
pub const SUSTAINED_FLOOR: f64 = 0.05;

/// Runs the full search: every candidate evaluated over the grid's
/// cases and seed blocks via [`run_sweep`] (candidates serial, cells
/// within a candidate parallel), scored, ranked and summarized.
///
/// # Errors
/// Errors when the grid fails [`CalibrationGrid::validate`]; never
/// errors mid-search.
pub fn run_calibration(grid: &CalibrationGrid) -> Result<CalibrationReport, String> {
    grid.validate()?;
    let mut sweeps = Vec::with_capacity(grid.candidate_count());
    for candidate in grid.candidates() {
        sweeps.push(run_sweep(&grid.sweep_for(&candidate)?)?);
    }
    score_calibration(grid, &sweeps)
}

/// Scores per-candidate sweep reports into the final ranked report —
/// the deterministic back half of [`run_calibration`], split out so a
/// distributed coordinator that assembled each candidate's sweep from
/// remotely computed cells ([`crate::sweeps::merge_sweep`]) reproduces
/// the exact single-process report, Pareto front included.
///
/// `sweeps[i]` must be the evaluated sweep of `grid.candidates()[i]`
/// ([`CalibrationGrid::sweep_for`]).
///
/// # Errors
/// Errors when the grid is invalid or `sweeps` doesn't line up with the
/// candidate list (wrong count, wrong cell count per candidate).
pub fn score_calibration(
    grid: &CalibrationGrid,
    sweeps: &[SweepReport],
) -> Result<CalibrationReport, String> {
    grid.validate()?;
    let candidates = grid.candidates();
    let n_cases = grid.cases.len();
    let n_blocks = grid.seed_blocks.len();
    let targets: Vec<f64> = grid.cases.iter().map(|&c| paper_target(c)).collect();
    if sweeps.len() != candidates.len() {
        return Err(format!(
            "{} sweep reports for {} candidates",
            sweeps.len(),
            candidates.len()
        ));
    }

    let mut results: Vec<CandidateResult> = Vec::with_capacity(candidates.len());
    for (candidate, report) in candidates.into_iter().zip(sweeps) {
        let sweep = grid.sweep_for(&candidate)?;
        if report.cells.len() != n_cases * n_blocks {
            return Err(format!(
                "candidate {} sweep has {} cells, expected {}",
                candidate.id,
                report.cells.len(),
                n_cases * n_blocks
            ));
        }
        // Cells arrive cases-outermost, seed-blocks-innermost.
        let per_case_coop: Vec<f64> = (0..n_cases)
            .map(|ci| {
                let blocks = &report.cells[ci * n_blocks..(ci + 1) * n_blocks];
                blocks
                    .iter()
                    .map(|cell| cell.final_coop.mean().unwrap_or(0.0))
                    .sum::<f64>()
                    / n_blocks as f64
            })
            .collect();
        // A case's error: against its aggregate §6.2 target for the
        // single-environment cases; the mean per-environment distance to
        // Table 5's column for the multi-environment cases (which an
        // aggregate would blur) — see [`case_error`].
        let per_case_error: Vec<f64> = (0..n_cases)
            .map(|ci| {
                let blocks = &report.cells[ci * n_blocks..(ci + 1) * n_blocks];
                let n_envs = blocks[0].per_env_coop.len();
                let per_env: Vec<f64> = (0..n_envs)
                    .map(|e| {
                        blocks
                            .iter()
                            .map(|cell| cell.per_env_coop[e].mean().unwrap_or(0.0))
                            .sum::<f64>()
                            / n_blocks as f64
                    })
                    .collect();
                case_error(grid.cases[ci], per_case_coop[ci], &per_env)
            })
            .collect();
        let loss = per_case_error.iter().sum();
        let config_hash = crate::config::canonical_hash(&sweep.base).unwrap_or(0);
        results.push(CandidateResult {
            spec: candidate,
            per_case_coop,
            per_case_error,
            loss,
            pareto: false,
            config_hash,
        });
    }

    // Pareto front of per-case errors: dominated means some other
    // candidate is at least as close on every case and strictly closer
    // on at least one.
    for i in 0..results.len() {
        let dominated = (0..results.len()).any(|j| {
            j != i
                && results[j]
                    .per_case_error
                    .iter()
                    .zip(&results[i].per_case_error)
                    .all(|(ej, ei)| ej <= ei)
                && results[j]
                    .per_case_error
                    .iter()
                    .zip(&results[i].per_case_error)
                    .any(|(ej, ei)| ej < ei)
        });
        results[i].pareto = !dominated;
    }

    results.sort_by(|a, b| a.loss.total_cmp(&b.loss).then(a.spec.id.cmp(&b.spec.id)));

    let harsh: Vec<HarshRegimeFinding> = [2usize, 4]
        .into_iter()
        .filter_map(|case_no| {
            let ci = grid.cases.iter().position(|&c| c == case_no)?;
            let (best_candidate, best_coop) = results
                .iter()
                .map(|r| (r.spec.id, r.per_case_coop[ci]))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))?;
            Some(HarshRegimeFinding {
                case_no,
                target: paper_target(case_no),
                best_coop,
                best_candidate,
                sustained: best_coop > SUSTAINED_FLOOR,
            })
        })
        .collect();

    let summary = if harsh.is_empty() {
        format!(
            "no harsh regime (case 2 or 4) in the searched cases {:?}",
            grid.cases
        )
    } else {
        harsh
            .iter()
            .map(|h| {
                format!(
                    "case {}: best candidate (#{}) reaches {} cooperation vs the paper's {} — {}",
                    h.case_no,
                    h.best_candidate,
                    ahn_stats::pct(h.best_coop, 1),
                    ahn_stats::pct(h.target, 1),
                    if h.sustained {
                        "cooperation sustained"
                    } else {
                        "no constraint-satisfying reconstruction sustains cooperation"
                    }
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    };

    Ok(CalibrationReport {
        schema: "ahn-calibrate/1".into(),
        cases: grid.cases.clone(),
        targets,
        replications: grid.base.replications,
        seed_blocks: n_blocks,
        size: grid.size,
        candidates: results,
        harsh,
        summary,
    })
}

/// Renders a calibration report as an aligned text table (best
/// candidates first), followed by the harsh-regime summary.
pub fn render_calibration_report(report: &CalibrationReport) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "reconstruction search: {} candidates x {} cases x {} seed blocks \
         ({} replications, {}-node tournaments)\n",
        report.candidates.len(),
        report.cases.len(),
        report.seed_blocks,
        report.replications,
        report.size
    );
    let _ = write!(
        out,
        "rank    id  selection     scale  forward           discard          "
    );
    for case in &report.cases {
        let _ = write!(out, "  c{case}");
    }
    out.push_str("    loss  front\n");
    let row4 = |row: &[f64; 4]| {
        format!(
            "{:<4} {:<4} {:<4} {:<4}",
            trim(row[0]),
            trim(row[1]),
            trim(row[2]),
            trim(row[3])
        )
    };
    for (rank, r) in report.candidates.iter().enumerate() {
        let _ = write!(
            out,
            "{:>4}  {:>4}  {:<12} {:>6}  {} {}",
            rank + 1,
            r.spec.id,
            r.spec.selection,
            trim(r.spec.scale),
            row4(&r.spec.payoff.forward),
            row4(&r.spec.payoff.discard),
        );
        for coop in &r.per_case_coop {
            let _ = write!(out, " {:>4}", ahn_stats::pct(*coop, 0));
        }
        let _ = writeln!(
            out,
            "  {:>6.3}  {}",
            r.loss,
            if r.pareto { "*" } else { "" }
        );
    }
    let _ = write!(out, "targets:");
    for (case, target) in report.cases.iter().zip(&report.targets) {
        let _ = write!(out, "  c{case} {}", ahn_stats::pct(*target, 0));
    }
    out.push('\n');
    let _ = writeln!(out, "{}", report.summary);
    out
}

/// Formats scale factors and payoff cells without trailing zeros.
fn trim(x: f64) -> String {
    if x == x.trunc() {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_match_the_paper() {
        assert_eq!(paper_target(1), 0.97);
        assert_eq!(paper_target(2), 0.19);
        assert_eq!(paper_target(3), 0.38);
        assert_eq!(paper_target(4), 0.54);
    }

    #[test]
    #[should_panic(expected = "cases 1..=4")]
    fn target_for_case_5_panics() {
        paper_target(5);
    }

    #[test]
    fn selection_variants_resolve_and_reject() {
        for name in SELECTION_VARIANTS {
            let (selection, elitism) = selection_variant(name).unwrap();
            selection.validate().unwrap();
            assert!(elitism <= 2);
        }
        assert_eq!(selection_variant("paper").unwrap(), (Selection::paper(), 0));
        assert_eq!(selection_variant("elitist-2").unwrap().1, 2);
        let err = selection_variant("galactic").unwrap_err();
        assert!(err.contains("unknown selection variant"), "{err}");
    }

    #[test]
    fn candidate_order_is_deterministic_and_capped() {
        let mut grid = CalibrationGrid::smoke();
        grid.scales = vec![1.0, 2.0];
        grid.selections = vec!["paper".into(), "roulette".into()];
        grid.max_candidates = 0;
        let all = grid.candidates();
        assert_eq!(all.len(), grid.candidate_count());
        // ids are the enumeration order and the axes nest as documented:
        // scales outer, selections inner, per table.
        assert_eq!(all[0].id, 0);
        assert_eq!((all[0].scale, all[0].selection.as_str()), (1.0, "paper"));
        assert_eq!((all[1].scale, all[1].selection.as_str()), (1.0, "roulette"));
        assert_eq!((all[2].scale, all[2].selection.as_str()), (2.0, "paper"));
        assert_eq!(all[3].payoff, all[0].payoff.scaled_intermediate(2.0));
        // The cap takes a prefix.
        grid.max_candidates = 3;
        assert_eq!(grid.candidates(), all[..3].to_vec());
        assert_eq!(grid.candidate_count(), 3);
        assert_eq!(grid.cell_count(), 6); // 3 candidates x 2 cases x 1 block
    }

    #[test]
    fn resolve_grafts_payoff_and_selection() {
        let mut grid = CalibrationGrid::smoke();
        grid.selections = vec!["elitist-2".into()];
        let candidate = &grid.candidates()[0];
        let config = grid.resolve(candidate).unwrap();
        assert_eq!(config.payoff, candidate.payoff);
        assert_eq!(config.ga.selection, Selection::paper());
        assert_eq!(config.ga.elitism, 2);
        // Everything else is untouched.
        assert_eq!(config.population, grid.base.population);
        assert_eq!(config.base_seed, grid.base.base_seed);
    }

    #[test]
    fn validation_rejects_bad_axes() {
        let ok = CalibrationGrid::smoke();
        ok.validate().unwrap();
        let mut bad = ok.clone();
        bad.cases = vec![7];
        assert!(bad.validate().unwrap_err().contains("cases 1..=4"));
        let mut bad = ok.clone();
        bad.scales = vec![-1.0];
        assert!(bad.validate().unwrap_err().contains("positive"));
        let mut bad = ok.clone();
        bad.scales = vec![f64::NAN];
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.selections = vec!["x".into()];
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.seed_blocks = vec![];
        assert!(bad.validate().unwrap_err().contains("seed block"));
        let mut bad = ok.clone();
        bad.cases = vec![];
        assert!(bad.validate().unwrap_err().contains("at least one value"));
        let mut bad = ok;
        bad.size = 2;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn calibration_runs_ranks_and_is_deterministic() {
        let grid = CalibrationGrid::smoke();
        let a = run_calibration(&grid).unwrap();
        let b = run_calibration(&grid).unwrap();
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, serde_json::to_string(&b).unwrap());
        let back: CalibrationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);

        assert_eq!(a.candidates.len(), 2);
        assert_eq!(a.cases, vec![1, 2]);
        assert_eq!(a.targets, vec![0.97, 0.19]);
        // Ranked ascending by loss.
        assert!(a.candidates[0].loss <= a.candidates[1].loss);
        for r in &a.candidates {
            assert!(r.loss.is_finite());
            assert_eq!(r.per_case_coop.len(), 2);
            assert_eq!(r.per_case_error.len(), 2);
            let expect: f64 = r.per_case_error.iter().sum();
            assert_eq!(r.loss, expect);
            assert!(r.config_hash != 0);
            r.spec.payoff.check_paper_constraints().unwrap();
        }
        // The best-loss candidate is never dominated.
        assert!(a.candidates[0].pareto);
        // Case 2 is searched, so the harsh finding reports it.
        assert_eq!(a.harsh.len(), 1);
        assert_eq!(a.harsh[0].case_no, 2);
        assert!(a.summary.contains("case 2"), "{}", a.summary);
    }

    #[test]
    fn score_calibration_reproduces_run_calibration_and_checks_shape() {
        let grid = CalibrationGrid::smoke();
        // Scoring locally-run sweeps is exactly run_calibration.
        let sweeps: Vec<_> = grid
            .candidates()
            .iter()
            .map(|c| run_sweep(&grid.sweep_for(c).unwrap()).unwrap())
            .collect();
        let scored = score_calibration(&grid, &sweeps).unwrap();
        let direct = run_calibration(&grid).unwrap();
        assert_eq!(scored, direct);
        assert_eq!(
            serde_json::to_string(&scored).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
        // Misaligned inputs fail loudly instead of mis-scoring.
        let err = score_calibration(&grid, &sweeps[..1]).unwrap_err();
        assert!(err.contains("sweep reports"), "{err}");
        let mut short = sweeps.clone();
        short[1].cells.pop();
        let err = score_calibration(&grid, &short).unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }

    #[test]
    fn calibration_cells_share_cache_keys_with_direct_runs() {
        // A calibration cell resolves to exactly the (config, case)
        // pair a direct run_experiment of the candidate would use — the
        // property the serve cache relies on.
        let grid = CalibrationGrid::smoke();
        let candidate = &grid.candidates()[0];
        let sweep = grid.sweep_for(candidate).unwrap();
        let (config, case) = sweep.resolve(&sweep.cell_specs()[0]).unwrap();
        assert_eq!(config.payoff, candidate.payoff);
        let direct = crate::experiment::run_experiment(&config, &case);
        let report = run_calibration(&grid).unwrap();
        let cell_coop = report
            .candidates
            .iter()
            .find(|r| r.spec.id == candidate.id)
            .unwrap()
            .per_case_coop[0];
        assert_eq!(cell_coop, direct.final_coop.mean().unwrap());
    }

    #[test]
    fn render_lists_every_candidate_and_the_summary() {
        let report = run_calibration(&CalibrationGrid::smoke()).unwrap();
        let text = render_calibration_report(&report);
        assert_eq!(
            text.lines().count(),
            2 + report.candidates.len() + 2,
            "{text}"
        );
        assert!(text.contains("paper"), "{text}");
        assert!(text.contains("targets:"), "{text}");
        assert!(text.contains("case 2"), "{text}");
    }
}
