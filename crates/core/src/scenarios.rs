//! The scenario registry: named, hash-canonicalized threat models.
//!
//! The paper studies one adversary — static selfish nodes. The systems
//! it builds on (watchdog/pathrater, CONFIDANT, CORE; see PAPERS.md)
//! were designed against much richer ones: liars poisoning second-hand
//! reputation, colluding cliques vouching for each other, on-off
//! defectors, whitewashers re-entering with fresh identities,
//! energy-exhaustion attackers. A [`Scenario`] composes those behaviors
//! (implemented as [`ahn_game::NodeKind`] variants driven by
//! [`AttackerBehavior`]) with the topology and energy-budget knobs the
//! substrate already carries into a declarative, validated, canonically
//! hashable config that plugs into `run_sweep` as a first-class axis
//! ([`crate::sweeps::SweepGrid::scenarios`]) and is served via
//! `GET /v1/scenarios`.
//!
//! Scenarios deliberately do **not** choose the defense: the defense
//! (first-hand watchdog only, CORE-style positive gossip, or
//! CONFIDANT-style full gossip) is the other axis of the attack/defense
//! atlas (`crate::atlas`), so every scenario is evaluated against every
//! defense.

use crate::cases::CaseSpec;
use crate::config::{
    canonical_hash, AttackerBehavior, AttackerGroup, ExperimentConfig, SleeperSpec,
};
use ahn_net::PathMode;
use serde::{Deserialize, Serialize};

/// One attacker population group, sized as a *share* of each tournament
/// environment rather than an absolute count, so the same scenario
/// scales with the network-size sweep axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackerShare {
    /// Behavior of every node in the group.
    pub behavior: AttackerBehavior,
    /// Fraction of each environment's participants in (0, 1).
    pub share: f64,
}

/// A named, declarative threat model: an attacker population mix plus
/// optional topology and energy-budget overrides, applied on top of any
/// `(config, case)` pair the sweep engine resolves.
///
/// The all-`None` scenario (the registry's `"base"`) is a pure
/// pass-through: applying it changes nothing, so base-scenario sweep
/// cells keep their exact legacy seeds, streams and cache keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Registry key (`[a-z0-9-]`, by convention).
    pub name: String,
    /// One-line human description for listings and the atlas.
    pub summary: String,
    /// Attacker mix replacing the case's constantly-selfish pool.
    /// `None` keeps the case's own CSN environments.
    pub attackers: Option<Vec<AttackerShare>>,
    /// Topology override: forces the case's path mode.
    pub mode: Option<PathMode>,
    /// Energy-budget override: radio duty cycle in (0, 1] applied to
    /// every normal player (extension X6's sleep model).
    pub duty: Option<f64>,
}

impl Scenario {
    /// The pass-through scenario.
    pub fn base() -> Self {
        Scenario {
            name: "base".into(),
            summary: "the paper's model, untouched (reference row)".into(),
            attackers: None,
            mode: None,
            duty: None,
        }
    }

    /// Structural identity of the scenario: FNV-1a 64 over its compact
    /// JSON form (the same canonicalization the serve cache keys use).
    pub fn canonical_hash(&self) -> u64 {
        canonical_hash(self).unwrap_or(0)
    }

    /// Total attacker share (0 when the scenario keeps the case's mix).
    pub fn attacker_share(&self) -> f64 {
        self.attackers
            .as_ref()
            .map(|groups| groups.iter().map(|g| g.share).sum())
            .unwrap_or(0.0)
    }

    /// Validates the scenario's own parameters (share ranges, behavior
    /// parameters, knob ranges). Environment-dependent checks — does the
    /// mix leave enough normal players at a given size? — happen in
    /// [`Scenario::apply`].
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("a scenario needs a name".into());
        }
        if let Some(groups) = &self.attackers {
            if groups.is_empty() {
                return Err(format!(
                    "scenario {:?}: attackers, when set, needs at least one group",
                    self.name
                ));
            }
            for g in groups {
                if !(g.share > 0.0 && g.share < 1.0) {
                    return Err(format!(
                        "scenario {:?}: attacker share {} outside (0, 1)",
                        self.name, g.share
                    ));
                }
                g.behavior.validate()?;
            }
            let total = self.attacker_share();
            if total >= 1.0 {
                return Err(format!(
                    "scenario {:?}: attacker shares sum to {total} (must stay below 1)",
                    self.name
                ));
            }
        }
        if let Some(d) = self.duty {
            if !(d > 0.0 && d <= 1.0) {
                return Err(format!(
                    "scenario {:?}: duty cycle {d} outside (0, 1]",
                    self.name
                ));
            }
        }
        Ok(())
    }

    /// Applies the scenario to a resolved `(config, case)` pair,
    /// producing the pure inputs of `run_experiment`:
    ///
    /// * `mode` (when set) overrides the case's path mode;
    /// * `attackers` (when set) replaces every environment's CSN pool
    ///   with the scenario's mix — each group sized as
    ///   `round(share × size)` (at least 1) of that environment's
    ///   participant count — and records the groups in
    ///   `config.attackers` so the arena builds the matching kinds;
    /// * `duty` (when set) gives every normal player the reduced duty
    ///   cycle.
    ///
    /// The base scenario returns its inputs unchanged.
    ///
    /// # Errors
    /// Errors when the scenario is invalid, the environments have
    /// heterogeneous sizes (scaled cases never do), or the mix would
    /// leave fewer than 3 normal players anywhere.
    pub fn apply(
        &self,
        config: &ExperimentConfig,
        case: &CaseSpec,
    ) -> Result<(ExperimentConfig, CaseSpec), String> {
        self.validate()?;
        let mut config = config.clone();
        let mut case = case.clone();
        if let Some(mode) = self.mode {
            case.mode = mode;
        }
        if let Some(groups) = &self.attackers {
            let size = case.envs.first().map(|e| e.size).unwrap_or(0);
            if case.envs.iter().any(|e| e.size != size) {
                return Err(format!(
                    "scenario {:?} needs uniform environment sizes, got {:?}",
                    self.name,
                    case.envs.iter().map(|e| e.size).collect::<Vec<_>>()
                ));
            }
            let counted: Vec<AttackerGroup> = groups
                .iter()
                .map(|g| AttackerGroup {
                    behavior: g.behavior,
                    count: (((size as f64) * g.share).round() as usize).max(1),
                })
                .collect();
            let total: usize = counted.iter().map(|g| g.count).sum();
            if total + 3 > size {
                return Err(format!(
                    "scenario {:?}: {total} attackers of {size} participants leave \
                     fewer than 3 normal players",
                    self.name
                ));
            }
            for env in &mut case.envs {
                *env = ahn_game::EnvironmentSpec::new(size, total);
            }
            config.attackers = Some(counted);
        }
        config.population = config.population.max(case.required_normal());
        if let Some(duty) = self.duty {
            if duty < 1.0 {
                config.sleepers = (0..config.population)
                    .map(|index| SleeperSpec { index, duty })
                    .collect();
            }
        }
        Ok((config, case))
    }
}

/// All scenarios the registry ships. Order is the atlas row order —
/// append new scenarios at the end so existing atlas rows never move.
pub fn builtin_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::base(),
        Scenario {
            name: "selfish-majority".into(),
            summary: "60% constantly selfish nodes (the paper's TE4 density)".into(),
            attackers: Some(vec![AttackerShare {
                behavior: AttackerBehavior::Selfish,
                share: 0.6,
            }]),
            mode: None,
            duty: None,
        },
        Scenario {
            name: "random-droppers".into(),
            summary: "30% droppers discarding half of all requests at random".into(),
            attackers: Some(vec![AttackerShare {
                behavior: AttackerBehavior::RandomDropper { p: 0.5 },
                share: 0.3,
            }]),
            mode: None,
            duty: None,
        },
        Scenario {
            name: "slanderers".into(),
            summary: "20% liars: forward faithfully, poison gossip about honest nodes".into(),
            attackers: Some(vec![AttackerShare {
                behavior: AttackerBehavior::Liar,
                share: 0.2,
            }]),
            mode: None,
            duty: None,
        },
        Scenario {
            name: "colluding-clique".into(),
            summary: "30% colluders: forward only inside the clique, vouch for each other".into(),
            attackers: Some(vec![AttackerShare {
                behavior: AttackerBehavior::Colluder { clique: 1 },
                share: 0.3,
            }]),
            mode: None,
            duty: None,
        },
        Scenario {
            name: "on-off-grudgers".into(),
            summary: "30% on-off defectors alternating 15 good rounds with 15 bad".into(),
            attackers: Some(vec![AttackerShare {
                behavior: AttackerBehavior::OnOff { on: 15, off: 15 },
                share: 0.3,
            }]),
            mode: None,
            duty: None,
        },
        Scenario {
            name: "whitewashers".into(),
            summary: "30% whitewashers: always discard, shed their history every 75 rounds".into(),
            attackers: Some(vec![AttackerShare {
                behavior: AttackerBehavior::Whitewasher { period: 75 },
                share: 0.3,
            }]),
            mode: None,
            duty: None,
        },
        Scenario {
            name: "energy-flooders".into(),
            summary: "20% flooders: discard everything, source 3 extra packets a round".into(),
            attackers: Some(vec![AttackerShare {
                behavior: AttackerBehavior::Flooder { extra: 3 },
                share: 0.2,
            }]),
            mode: None,
            duty: None,
        },
        Scenario {
            name: "low-power-mesh".into(),
            summary: "no attackers, longer paths, every radio at 60% duty cycle".into(),
            attackers: None,
            mode: Some(PathMode::Longer),
            duty: Some(0.6),
        },
    ]
}

/// Looks a built-in scenario up by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

/// Resolves a scenario name against the registry with a listing error.
pub fn resolve_scenario(name: &str) -> Result<Scenario, String> {
    find_scenario(name).ok_or_else(|| {
        let known: Vec<String> = builtin_scenarios().into_iter().map(|s| s.name).collect();
        format!("unknown scenario {name:?} (expected one of {known:?})")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps::scale_case;

    #[test]
    fn registry_ships_base_plus_the_adversary_zoo() {
        let all = builtin_scenarios();
        assert!(all.len() >= 6, "base + at least 5 attacker scenarios");
        assert_eq!(all[0].name, "base");
        let attacker_scenarios = all.iter().filter(|s| s.attackers.is_some()).count();
        assert!(attacker_scenarios >= 5, "got {attacker_scenarios}");
        // Names are unique and every scenario validates.
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate scenario names");
        for s in &all {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn find_and_resolve() {
        assert!(find_scenario("slanderers").is_some());
        assert!(find_scenario("nope").is_none());
        let err = resolve_scenario("nope").unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        assert!(err.contains("slanderers"), "{err}");
    }

    #[test]
    fn base_is_a_pure_pass_through() {
        let config = ExperimentConfig::smoke();
        let case = scale_case(2, 10).unwrap();
        let (c, k) = Scenario::base().apply(&config, &case).unwrap();
        // Identical except the population floor the sweep engine would
        // apply anyway.
        let mut expected = config.clone();
        expected.population = expected.population.max(case.required_normal());
        assert_eq!(c, expected);
        assert_eq!(k, case);
    }

    #[test]
    fn apply_replaces_the_selfish_pool_with_the_mix() {
        let config = ExperimentConfig::smoke();
        let case = scale_case(1, 10).unwrap();
        let s = find_scenario("colluding-clique").unwrap();
        let (c, k) = s.apply(&config, &case).unwrap();
        // 30% of 10 participants -> 3 colluders in every environment.
        assert_eq!(k.envs.len(), 1);
        assert_eq!(k.envs[0].size, 10);
        assert_eq!(k.envs[0].csn, 3);
        let groups = c.attackers.unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].count, 3);
        assert_eq!(groups[0].behavior, AttackerBehavior::Colluder { clique: 1 });
    }

    #[test]
    fn apply_overrides_topology_and_energy() {
        let config = ExperimentConfig::smoke();
        let case = scale_case(1, 10).unwrap();
        let s = find_scenario("low-power-mesh").unwrap();
        let (c, k) = s.apply(&config, &case).unwrap();
        assert_eq!(k.mode, PathMode::Longer);
        assert_eq!(c.sleepers.len(), c.population);
        assert!(c.sleepers.iter().all(|sl| sl.duty == 0.6));
        assert!(c.attackers.is_none());
    }

    #[test]
    fn overfull_mixes_are_rejected() {
        let s = Scenario {
            name: "crowd".into(),
            summary: String::new(),
            attackers: Some(vec![AttackerShare {
                behavior: AttackerBehavior::Selfish,
                share: 0.9,
            }]),
            mode: None,
            duty: None,
        };
        let config = ExperimentConfig::smoke();
        let case = scale_case(1, 10).unwrap();
        let err = s.apply(&config, &case).unwrap_err();
        assert!(err.contains("fewer than 3 normal players"), "{err}");
        // Share bounds and duty bounds are validated too.
        let mut bad = s.clone();
        bad.attackers = Some(vec![AttackerShare {
            behavior: AttackerBehavior::Selfish,
            share: 1.5,
        }]);
        assert!(bad.validate().is_err());
        let mut bad = Scenario::base();
        bad.duty = Some(0.0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn canonical_hashes_are_stable_and_distinct() {
        let all = builtin_scenarios();
        let mut hashes: Vec<u64> = all.iter().map(Scenario::canonical_hash).collect();
        // Stable across calls.
        assert_eq!(
            hashes,
            builtin_scenarios()
                .iter()
                .map(Scenario::canonical_hash)
                .collect::<Vec<_>>()
        );
        // Distinct across scenarios.
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), all.len());
    }

    #[test]
    fn pure_selfish_scenario_matches_the_equivalent_plain_case() {
        // A scenario whose mix is exactly "Selfish at the case's CSN
        // fraction" resolves to the same environments and the same
        // construction path outcome a plain case 2 would use — the
        // cleanest statement that scenarios compose rather than fork
        // the model.
        let s = find_scenario("selfish-majority").unwrap();
        let config = ExperimentConfig::smoke();
        let case = scale_case(1, 10).unwrap();
        let (c, k) = s.apply(&config, &case).unwrap();
        let plain = scale_case(2, 10).unwrap();
        assert_eq!(k.envs, plain.envs, "TE4's 60% density");
        let a = crate::experiment::run_experiment(&c, &k);
        let mut c2 = config.clone();
        c2.population = c2.population.max(plain.required_normal());
        let b = crate::experiment::run_experiment(&c2, &plain);
        assert_eq!(a.final_coop, b.final_coop, "all-Selfish pool == CSN pool");
    }
}
