//! Non-evolving baselines.
//!
//! * [`evaluate_static`] runs the multi-environment schedule once with
//!   fixed (non-evolving) strategies — the hand-written baselines AllC,
//!   AllD and trust-threshold live here;
//! * [`pathrater_comparison`] reproduces the qualitative claim the paper
//!   cites from Marti et al. \[9\] (§2): route *avoidance* alone (watchdog
//!   plus pathrater) improves throughput in the presence of selfish
//!   nodes, but does not punish them. We compare best-rated route
//!   selection against random selection with identical cooperative
//!   populations and selfish minorities.

use crate::cases::CaseSpec;
use crate::config::ExperimentConfig;
use ahn_game::{Arena, EnvMetrics, EvaluationSchedule, GameConfig};
use ahn_net::{PathGenerator, RouteSelection};
use ahn_strategy::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Runs the schedule once with a fixed population of `strategies`
/// (cycled to fill `config.population`) and returns the aggregate
/// metrics.
pub fn evaluate_static(
    config: &ExperimentConfig,
    case: &CaseSpec,
    strategies: &[Strategy],
    seed: u64,
) -> EnvMetrics {
    assert!(!strategies.is_empty(), "at least one strategy is required");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let schedule = EvaluationSchedule::new(case.envs.clone(), config.rounds, config.plays_per_env);
    let population: Vec<Strategy> = (0..config.population)
        .map(|i| strategies[i % strategies.len()].clone())
        .collect();
    let game_config = GameConfig {
        payoff: config.payoff,
        trust: config.trust,
        activity: config.activity,
        paths: PathGenerator::for_mode(case.mode),
        route_selection: config.route_selection,
        gossip: config.gossip,
    };
    let mut arena = Arena::new(
        population,
        schedule.required_csn(),
        game_config,
        case.envs.len(),
    );
    schedule.run(&mut arena, &mut rng);
    arena.metrics.total()
}

/// Result of the watchdog/pathrater-style comparison (X1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathraterReport {
    /// Cooperation level with reputation-rated route selection.
    pub with_rating: f64,
    /// Cooperation level with random route selection.
    pub without_rating: f64,
}

impl PathraterReport {
    /// Relative throughput improvement from avoidance
    /// (`with/without − 1`); Marti et al. report +17 % for 50 nodes with
    /// 20 selfish — the shape, not the constant, is what we check.
    pub fn improvement(&self) -> f64 {
        if self.without_rating == 0.0 {
            0.0
        } else {
            self.with_rating / self.without_rating - 1.0
        }
    }
}

/// Compares cooperative populations (AllC — avoidance without
/// punishment, exactly the pathrater setting) with and without
/// reputation-based route selection, in an environment with `csn`
/// selfish nodes out of `size`.
pub fn pathrater_comparison(
    config: &ExperimentConfig,
    size: usize,
    csn: usize,
    seed: u64,
) -> PathraterReport {
    let case = CaseSpec::mini("pathrater", &[csn], size, ahn_net::PathMode::Shorter);
    let allc = [Strategy::always_forward()];

    let mut rated = config.clone();
    // The population must at least fill one tournament of this size.
    rated.population = rated.population.max(size - csn);
    rated.route_selection = RouteSelection::BestRated;
    let with_rating = evaluate_static(&rated, &case, &allc, seed).cooperation_level();

    let mut random = config.clone();
    random.population = random.population.max(size - csn);
    random.route_selection = RouteSelection::Random;
    let without_rating = evaluate_static(&random, &case, &allc, seed).cooperation_level();

    PathraterReport {
        with_rating,
        without_rating,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahn_net::{PathMode, TrustLevel};

    fn cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::smoke();
        c.rounds = 40;
        c
    }

    #[test]
    fn allc_without_csn_always_delivers() {
        let case = CaseSpec::mini("clean", &[0], 10, PathMode::Shorter);
        let m = evaluate_static(&cfg(), &case, &[Strategy::always_forward()], 0);
        assert_eq!(m.cooperation_level(), 1.0);
    }

    #[test]
    fn alld_never_delivers() {
        let case = CaseSpec::mini("dark", &[0], 10, PathMode::Shorter);
        let m = evaluate_static(&cfg(), &case, &[Strategy::always_discard()], 0);
        assert_eq!(m.cooperation_level(), 0.0);
    }

    #[test]
    fn threshold_strategy_beats_alld_under_csn() {
        let case = CaseSpec::mini("mixed", &[3], 10, PathMode::Shorter);
        let threshold = evaluate_static(
            &cfg(),
            &case,
            &[Strategy::trust_threshold(TrustLevel::T1, true)],
            1,
        );
        let alld = evaluate_static(&cfg(), &case, &[Strategy::always_discard()], 1);
        assert!(threshold.cooperation_level() > alld.cooperation_level());
    }

    #[test]
    fn pathrater_avoidance_improves_throughput() {
        // The Marti et al. shape: with selfish nodes present, rating-based
        // avoidance beats random routing.
        let report = pathrater_comparison(&cfg(), 12, 4, 3);
        assert!(
            report.with_rating > report.without_rating,
            "avoidance should help: {report:?}"
        );
        assert!(report.improvement() > 0.05, "{report:?}");
        // And neither setting punishes: cooperation stays well above zero.
        assert!(report.without_rating > 0.2);
    }

    #[test]
    fn pathrater_report_improvement_math() {
        let r = PathraterReport {
            with_rating: 0.6,
            without_rating: 0.5,
        };
        assert!((r.improvement() - 0.2).abs() < 1e-12);
        let z = PathraterReport {
            with_rating: 0.5,
            without_rating: 0.0,
        };
        assert_eq!(z.improvement(), 0.0);
    }
}
