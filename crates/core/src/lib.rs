//! Experiment harness reproducing every table and figure of
//! *Evolution of Strategy Driven Behavior in Ad Hoc Networks Using a
//! Genetic Algorithm* (Seredynski, Bouvry, Klopotek; IPDPS Workshops
//! 2007).
//!
//! The harness wires the workspace together: the network substrate
//! (`ahn-net`), the 13-bit strategies (`ahn-strategy`), the Ad Hoc
//! Network Game (`ahn-game`) and the GA engine (`ahn-ga`). Replications
//! run in parallel with rayon; every run is a pure function of
//! `(config, case, seed)`.
//!
//! * [`cases`] — the four evaluation cases of Table 4;
//! * [`config`] — experiment parameters with `paper`, `scaled` and
//!   `smoke` presets;
//! * [`experiment`] — replication runner and cross-replication
//!   aggregation (Fig. 4, Tables 5–9 inputs);
//! * [`report`] — plain-text renderers that print each table the way the
//!   paper lays it out;
//! * [`baselines`] — static-strategy and watchdog/pathrater-style
//!   baselines (DESIGN.md X1);
//! * [`scenarios`] — the adversary zoo: named, hash-canonicalized
//!   threat models composing attacker mixes with topology and energy
//!   knobs;
//! * [`atlas`] — the attack/defense atlas: every scenario against
//!   every defense posture, rendered as the committed `ATLAS.md`;
//! * [`threads`] — reporting the effective (`AHN_THREADS`-capped)
//!   worker-thread count;
//! * [`ablations`] — the A1–A6 design-choice studies of DESIGN.md.
//!
//! # Quickstart
//!
//! ```
//! use ahn_core::{cases::CaseSpec, config::ExperimentConfig, experiment};
//!
//! // A deliberately tiny configuration so the doctest stays fast (the
//! // longer R = 100 reputation horizon keeps 10-participant
//! // tournaments inside the cooperative basin).
//! let mut cfg = ExperimentConfig::smoke();
//! cfg.replications = 2;
//! cfg.rounds = 100;
//! cfg.generations = 40;
//! let case = CaseSpec::mini("demo", &[0], 10, ahn_net::PathMode::Shorter);
//! let result = experiment::run_experiment(&cfg, &case);
//! // A CSN-free world with evolving strategies learns to cooperate.
//! assert!(result.final_coop.mean().unwrap() > 0.4);
//! ```

#![deny(missing_docs)]

pub mod ablations;
pub mod atlas;
pub mod baselines;
pub mod calibrate;
pub mod cases;
pub mod checks;
pub mod config;
pub mod experiment;
pub mod extensions;
pub mod report;
pub mod scenarios;
pub mod sweeps;
pub mod threads;

pub use ahn_net::PathMode;
pub use atlas::{render_atlas, run_atlas, AtlasGrid, AtlasReport};
pub use calibrate::{run_calibration, score_calibration, CalibrationGrid, CalibrationReport};
pub use cases::CaseSpec;
pub use config::{canonical_hash, ExperimentConfig, StrategyCodec};
pub use experiment::{
    run_experiment, run_experiment_observed, run_replication, run_replication_with,
    ExperimentResult, ReplicationResult,
};
pub use scenarios::{builtin_scenarios, find_scenario, resolve_scenario, AttackerShare, Scenario};
pub use sweeps::{
    cell_from_result, merge_sweep, run_sweep, run_sweep_observed, SweepCell, SweepCellSpec,
    SweepGrid, SweepObservation, SweepReport,
};

// Re-exports used by downstream tooling (the `ahn-exp trace` command and
// similar inspection code) so the CLI depends on one crate only.
pub use ahn_game::game::Scratch as AhnScratch;
pub use ahn_game::play_game as ahn_play_game;
pub use ahn_game::Arena as AhnArena;
pub use ahn_net::NodeId as AhnNodeId;

/// Builds the [`ahn_game::GameConfig`] an [`ExperimentConfig`] implies
/// for a case — shared by the experiment runner, baselines and tooling.
pub fn game_config_of(config: &ExperimentConfig, case: &CaseSpec) -> ahn_game::GameConfig {
    ahn_game::GameConfig {
        payoff: config.payoff,
        trust: config.trust,
        activity: config.activity,
        paths: ahn_net::PathGenerator::for_mode(case.mode),
        route_selection: config.route_selection,
        gossip: config.gossip,
    }
}
