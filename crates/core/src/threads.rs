//! Surfacing the effective worker-thread count.
//!
//! The vendored rayon shim silently caps its fan-out at the
//! `AHN_THREADS` environment variable — useful for processes that
//! already parallelize at a higher level, but historically invisible:
//! nothing reported whether a sweep ran on 8 cores or was quietly
//! pinned to 1. This module is the single place that reads the cap for
//! reporting purposes; sweep/bench/serve startup call [`log_once`], and
//! the serve `/metrics` endpoint exposes [`effective`].

use std::sync::Once;

/// Worker threads the next parallel fan-out will use:
/// `available_parallelism`, capped by `AHN_THREADS`. Re-read per call,
/// so in-process overrides (the bench thread sweep) are visible
/// immediately.
pub fn effective() -> usize {
    rayon::current_num_threads()
}

/// The host's available parallelism, ignoring any `AHN_THREADS` cap.
pub fn host_cores() -> usize {
    rayon::available_cores()
}

/// Logs the effective thread count to stderr — once per process, no
/// matter how many sweeps/benches/experiments a long-lived process
/// runs. `context` names the caller (`"sweep"`, `"bench"`, `"serve"`).
///
/// Diagnostics go to stderr on purpose: stdout carries machine-readable
/// reports (`--json` et al.) and must stay clean.
pub fn log_once(context: &str) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let effective = effective();
        let cores = host_cores();
        let cap = std::env::var("AHN_THREADS").ok();
        match cap {
            Some(cap) => eprintln!(
                "{context}: using {effective} worker thread{} ({cores} core{} available, AHN_THREADS={cap})",
                plural(effective),
                plural(cores),
            ),
            None => eprintln!(
                "{context}: using {effective} worker thread{} ({cores} core{} available, AHN_THREADS unset)",
                plural(effective),
                plural(cores),
            ),
        }
    });
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_never_exceeds_host_cores() {
        let e = effective();
        assert!(e >= 1);
        assert!(e <= host_cores());
    }

    #[test]
    fn log_once_is_idempotent() {
        // Calling repeatedly must not panic or log more than once; the
        // observable contract here is simply "does not blow up".
        log_once("test");
        log_once("test-again");
    }
}
