//! Plain-text renderers that print each of the paper's result artifacts
//! in its original layout, with the paper's reference numbers alongside
//! the measured ones where the paper states them.

use crate::experiment::ExperimentResult;
use ahn_net::TrustLevel;
use ahn_stats::pct;
use ahn_strategy::analysis::sub_strategy_str;
use std::fmt::Write as _;

/// Figure 4 — cooperation level per generation for several cases, as CSV
/// (`generation,<case 1>,<case 2>,...`).
pub fn fig4_csv(results: &[&ExperimentResult]) -> String {
    assert!(!results.is_empty(), "no results to render");
    let mut out = String::new();
    let _ = write!(out, "generation");
    for r in results {
        let _ = write!(out, ",{}", r.case_name);
    }
    let _ = writeln!(out);
    let columns: Vec<Vec<f64>> = results.iter().map(|r| r.coop_series.means()).collect();
    let gens = columns.iter().map(Vec::len).max().unwrap_or(0);
    for g in 0..gens {
        let _ = write!(out, "{g}");
        for col in &columns {
            match col.get(g) {
                Some(v) => {
                    let _ = write!(out, ",{v:.4}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 4 — the headline final cooperation levels with the paper's
/// reference values (§6.2: 97 %, 19 %, 38 %, 54 % for cases 1–4).
pub fn fig4_summary(results: &[&ExperimentResult]) -> String {
    let paper_ref = [
        ("case 1", "97%"),
        ("case 2", "19%"),
        ("case 3", "38%"),
        ("case 4", "54%"),
    ];
    let mut out = String::from("Figure 4 — final cooperation level (mean ± 95% CI)\n");
    for r in results {
        let mean = r.final_coop.mean().unwrap_or(0.0);
        let ci = r.final_coop.ci95_half_width().unwrap_or(0.0);
        let reference = paper_ref
            .iter()
            .find(|(name, _)| *name == r.case_name)
            .map(|(_, v)| *v)
            .unwrap_or("-");
        let _ = writeln!(
            out,
            "  {:<8} measured {:>6} ± {:>5}   (paper: {})",
            r.case_name,
            pct(mean, 1),
            pct(ci, 1),
            reference,
        );
    }
    out
}

/// Table 5 — per-environment cooperation levels and CSN-free-path shares
/// for two multi-environment cases (the paper's cases 3 and 4).
pub fn table5(case3: &ExperimentResult, case4: &ExperimentResult) -> String {
    assert_eq!(
        case3.per_env_coop.len(),
        case4.per_env_coop.len(),
        "table 5 compares cases over the same environments"
    );
    // Paper values for orientation (Tab. 5).
    let paper = [
        ("TE1", "99%", "99%", "100%", "100%"),
        ("TE2", "66%", "41%", "66%", "41%"),
        ("TE3", "28%", "7%", "29%", "12%"),
        ("TE4", "19%", "5%", "20%", "8%"),
    ];
    let mut out = String::from(
        "Table 5 — cooperation level and CSN-free paths per environment\n\
         env   coop(c3)  coop(c4)  csn-free(c3)  csn-free(c4)   paper(c3/c4 coop, c3/c4 csn-free)\n",
    );
    for e in 0..case3.per_env_coop.len() {
        let name = format!("TE{}", e + 1);
        let p = paper.get(e).copied().unwrap_or(("", "-", "-", "-", "-"));
        let _ = writeln!(
            out,
            "{:<5} {:>8} {:>9} {:>13} {:>13}   ({}/{}, {}/{})",
            name,
            pct(case3.per_env_coop[e].mean().unwrap_or(0.0), 0),
            pct(case4.per_env_coop[e].mean().unwrap_or(0.0), 0),
            pct(case3.per_env_csn_free[e].mean().unwrap_or(0.0), 0),
            pct(case4.per_env_csn_free[e].mean().unwrap_or(0.0), 0),
            p.1,
            p.2,
            p.3,
            p.4,
        );
    }
    out
}

/// Table 6 — responses to forwarding requests from normal nodes and CSN
/// for the two multi-environment cases.
pub fn table6(case3: &ExperimentResult, case4: &ExperimentResult) -> String {
    let mut out = String::from(
        "Table 6 — response to packet forwarding requests, EC3 (EC4)\n\
         (paper: NN accepted 77/78%, NN rej-by-NP 0.23/3.5%, NN rej-by-CSN 22/18%;\n\
          CSN accepted 4/3%, CSN rej-by-NP 53/49%, CSN rej-by-CSN 43/47%)\n",
    );
    let row = |label: &str, v3: &ahn_stats::Summary, v4: &ahn_stats::Summary| -> String {
        format!(
            "  {:<30} {:>7} ({:>7})\n",
            label,
            pct(v3.mean().unwrap_or(0.0), 2),
            pct(v4.mean().unwrap_or(0.0), 2),
        )
    };
    out.push_str("Requests from normal players:\n");
    out.push_str(&row(
        "accepted",
        &case3.req_from_nn.accepted,
        &case4.req_from_nn.accepted,
    ));
    out.push_str(&row(
        "rejected by normal players",
        &case3.req_from_nn.rejected_by_nn,
        &case4.req_from_nn.rejected_by_nn,
    ));
    out.push_str(&row(
        "rejected by CSN",
        &case3.req_from_nn.rejected_by_csn,
        &case4.req_from_nn.rejected_by_csn,
    ));
    out.push_str("Requests from CSN:\n");
    out.push_str(&row(
        "accepted",
        &case3.req_from_csn.accepted,
        &case4.req_from_csn.accepted,
    ));
    out.push_str(&row(
        "rejected by normal players",
        &case3.req_from_csn.rejected_by_nn,
        &case4.req_from_csn.rejected_by_nn,
    ));
    out.push_str(&row(
        "rejected by CSN",
        &case3.req_from_csn.rejected_by_csn,
        &case4.req_from_csn.rejected_by_csn,
    ));
    out
}

/// Table 7 — the five most popular final strategies per case.
pub fn table7(results: &[&ExperimentResult]) -> String {
    let mut out = String::from("Table 7 — most popular strategies in final populations\n");
    for r in results {
        let _ = writeln!(out, "{}:", r.case_name);
        for (s, share) in r.census.top_strategies(5) {
            let _ = writeln!(out, "  {s}   ({})", pct(share, 1));
        }
    }
    out
}

/// Tables 8–9 — sub-strategy distribution per trust level for one case,
/// filtered to shares above `min_share` (the paper shows > 3 %).
pub fn table8_9(result: &ExperimentResult, min_share: f64) -> String {
    let mut out = format!(
        "Table 8/9 — evolved sub-strategies for {} (shares > {})\n",
        result.case_name,
        pct(min_share, 0),
    );
    for t in TrustLevel::ALL {
        let _ = write!(out, "  Trust {}: ", t.value());
        let rows = result.census.sub_strategies(t, min_share);
        if rows.is_empty() {
            let _ = writeln!(out, "(none above cutoff)");
            continue;
        }
        let mut first = true;
        for (code, share) in rows {
            if !first {
                let _ = write!(out, ", ");
            }
            first = false;
            let _ = write!(out, "{} ({})", sub_strategy_str(code), pct(share, 0));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "  unknown-node bit forwards in {} of final strategies",
        pct(result.census.unknown_forward_share(), 0),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::CaseSpec;
    use crate::config::ExperimentConfig;
    use crate::experiment::run_experiment;
    use ahn_net::PathMode;

    fn tiny_result(name: &str, csn: &[usize]) -> ExperimentResult {
        let mut cfg = ExperimentConfig::smoke();
        cfg.generations = 4;
        cfg.replications = 2;
        let mut case = CaseSpec::mini(name, csn, 8, PathMode::Shorter);
        case.name = name.to_string();
        run_experiment(&cfg, &case)
    }

    #[test]
    fn fig4_csv_has_header_and_rows() {
        let r = tiny_result("case 1", &[0]);
        let csv = fig4_csv(&[&r]);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "generation,case 1");
        assert_eq!(csv.lines().count(), 5, "header + 4 generations");
        assert!(csv.lines().nth(1).unwrap().starts_with("0,"));
    }

    #[test]
    fn fig4_summary_mentions_paper_reference() {
        let r = tiny_result("case 1", &[0]);
        let s = fig4_summary(&[&r]);
        assert!(s.contains("case 1"));
        assert!(s.contains("(paper: 97%)"));
    }

    #[test]
    fn table5_renders_every_environment() {
        let c3 = tiny_result("case 3", &[0, 2]);
        let c4 = tiny_result("case 4", &[0, 2]);
        let t = table5(&c3, &c4);
        assert!(t.contains("TE1"));
        assert!(t.contains("TE2"));
        assert!(!t.contains("TE3"), "only two environments were run");
    }

    #[test]
    fn table6_has_both_sides() {
        let c3 = tiny_result("case 3", &[2]);
        let c4 = tiny_result("case 4", &[2]);
        let t = table6(&c3, &c4);
        assert!(t.contains("Requests from normal players"));
        assert!(t.contains("Requests from CSN"));
        assert!(t.contains("rejected by CSN"));
    }

    #[test]
    fn table7_lists_up_to_five() {
        let r = tiny_result("case 3", &[0]);
        let t = table7(&[&r]);
        assert!(t.contains("case 3:"));
        // Each listed strategy renders in the paper's grouped notation.
        assert!(t.lines().skip(2).take(1).all(|l| l.contains(' ')));
    }

    #[test]
    fn table8_lists_trust_levels() {
        let r = tiny_result("case 3", &[0]);
        let t = table8_9(&r, 0.03);
        for lvl in 0..4 {
            assert!(t.contains(&format!("Trust {lvl}:")), "{t}");
        }
        assert!(t.contains("unknown-node bit"));
    }
}
