//! Experiment configuration with the paper's parameters as the reference
//! preset.
//!
//! Paper parameters (§6.1): population 100, tournament size 50, rounds
//! 300, generations 500, crossover 0.9, mutation 0.001, 60 repetitions.
//! The `scaled` preset keeps the model identical but shrinks rounds,
//! generations and repetitions so the full table/figure sweep runs in
//! minutes on a laptop; EXPERIMENTS.md records which preset produced each
//! number.

use ahn_bitstr::BitStr;
use ahn_ga::GaParams;
use ahn_game::PayoffConfig;
use ahn_net::{ActivityBands, GossipConfig, RouteSelection, TrustTable};
use ahn_strategy::{reduced::ReducedStrategy, Strategy};
use serde::{Deserialize, Serialize};

/// Which chromosome the GA evolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StrategyCodec {
    /// The paper's 13-bit trust × activity strategy.
    #[default]
    Full,
    /// The 5-bit trust-only ablation (DESIGN.md A2): same game, smaller
    /// genome, activity information discarded.
    TrustOnly,
}

impl StrategyCodec {
    /// Genome width in bits.
    pub fn genome_bits(self) -> usize {
        match self {
            StrategyCodec::Full => ahn_strategy::STRATEGY_BITS,
            StrategyCodec::TrustOnly => ahn_strategy::reduced::REDUCED_BITS,
        }
    }

    /// Index of the unknown-node bit in this encoding.
    pub fn unknown_bit(self) -> usize {
        match self {
            StrategyCodec::Full => ahn_strategy::UNKNOWN_BIT,
            StrategyCodec::TrustOnly => 4,
        }
    }

    /// Decodes a genome into the playable 13-bit strategy.
    ///
    /// # Panics
    /// Panics if the genome width does not match the codec.
    pub fn decode(self, genome: &BitStr) -> Strategy {
        match self {
            StrategyCodec::Full => Strategy::from_bits(genome.clone()),
            StrategyCodec::TrustOnly => ReducedStrategy::from_bits(genome.clone()).lift(),
        }
    }
}

/// A population member with a reduced radio duty cycle (extension X6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleeperSpec {
    /// Index of the player within the population.
    pub index: usize,
    /// Probability of being awake in any tournament round (0, 1].
    pub duty: f64,
}

/// A named attacker behavior from the adversary zoo (DESIGN.md
/// "Scenarios"), mapping one-to-one onto an [`ahn_game::NodeKind`].
/// Every behavior occupies a selfish-pool slot: excluded from evolution
/// and from the cooperation metrics, participating in tournaments
/// according to each environment's CSN count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackerBehavior {
    /// The paper's constantly selfish node: always discards.
    Selfish,
    /// Drops each request independently with probability `p`.
    RandomDropper {
        /// Per-request drop probability in \[0, 1\].
        p: f64,
    },
    /// Forwards faithfully while poisoning second-hand reputation
    /// (slander + vouching for fellow liars) when chosen as a gossip
    /// teller. Requires a gossip extension to have any effect.
    Liar,
    /// Forwards only for its own clique, discards for everyone else,
    /// and vouches for clique-mates in gossip.
    Colluder {
        /// Clique identifier; members with equal ids cooperate.
        clique: u8,
    },
    /// Forwards for `on` rounds, discards for `off` rounds, repeating.
    OnOff {
        /// Cooperative rounds per cycle.
        on: u16,
        /// Defecting rounds per cycle.
        off: u16,
    },
    /// Always discards; its public history is wiped every `period`
    /// rounds (fresh-identity re-entry).
    Whitewasher {
        /// Rounds between identity resets.
        period: u16,
    },
    /// Always discards and sources `extra` additional packets per round
    /// (energy exhaustion).
    Flooder {
        /// Extra packets sourced per round.
        extra: u8,
    },
}

impl AttackerBehavior {
    /// The node kind implementing this behavior in the game engine.
    pub fn node_kind(self) -> ahn_game::NodeKind {
        match self {
            AttackerBehavior::Selfish => ahn_game::NodeKind::ConstantlySelfish,
            AttackerBehavior::RandomDropper { p } => ahn_game::NodeKind::RandomDropper(p),
            AttackerBehavior::Liar => ahn_game::NodeKind::Liar,
            AttackerBehavior::Colluder { clique } => ahn_game::NodeKind::Colluder(clique),
            AttackerBehavior::OnOff { on, off } => ahn_game::NodeKind::OnOff { on, off },
            AttackerBehavior::Whitewasher { period } => ahn_game::NodeKind::Whitewasher { period },
            AttackerBehavior::Flooder { extra } => ahn_game::NodeKind::Flooder { extra },
        }
    }

    /// Parameter sanity.
    pub fn validate(self) -> Result<(), String> {
        match self {
            AttackerBehavior::RandomDropper { p } if !(0.0..=1.0).contains(&p) => {
                Err(format!("random dropper probability {p} outside [0, 1]"))
            }
            AttackerBehavior::OnOff { on, off } if on == 0 && off == 0 => {
                Err("on-off attacker needs a non-empty cycle".into())
            }
            AttackerBehavior::Whitewasher { period: 0 } => {
                Err("whitewasher period must be positive".into())
            }
            AttackerBehavior::Flooder { extra: 0 } => {
                Err("flooder must source at least one extra packet".into())
            }
            _ => Ok(()),
        }
    }
}

/// `count` identically-behaved attackers occupying consecutive
/// selfish-pool slots (arena tail ids, in group order).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackerGroup {
    /// Behavior of every node in the group.
    pub behavior: AttackerBehavior,
    /// Number of nodes.
    pub count: usize,
}

/// All knobs of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Population size `N` (paper: 100).
    pub population: usize,
    /// Rounds per tournament `R` (paper: 300).
    pub rounds: usize,
    /// Generations (paper: 500).
    pub generations: usize,
    /// Independent repetitions averaged into every report (paper: 60).
    pub replications: usize,
    /// Times each player plays per environment (`L`; DESIGN.md default 1).
    pub plays_per_env: usize,
    /// GA hyper-parameters.
    pub ga: GaParams,
    /// Payoff tables.
    pub payoff: PayoffConfig,
    /// Trust lookup table.
    pub trust: TrustTable,
    /// Activity bands.
    pub activity: ActivityBands,
    /// Route-selection policy (paper: best-rated).
    pub route_selection: RouteSelection,
    /// Genome encoding (paper: 13-bit full).
    pub codec: StrategyCodec,
    /// Optional second-hand reputation exchange (extension A7; the paper
    /// uses first-hand watchdog observation only).
    pub gossip: Option<GossipConfig>,
    /// Population members with reduced duty cycles (extension X6; empty —
    /// the paper's model — means everyone always listens).
    pub sleepers: Vec<SleeperSpec>,
    /// When set, the unknown-node bit is pinned to this value after every
    /// breeding step (ablation A6).
    pub force_unknown: Option<bool>,
    /// When set, the selfish pool is built from these attacker groups
    /// (adversary zoo; see `ahn_core::scenarios`) instead of plain
    /// constantly-selfish nodes. `None` — the paper's model — keeps the
    /// all-CSN pool and the exact legacy construction path.
    pub attackers: Option<Vec<AttackerGroup>>,
    /// Base RNG seed; replication `k` runs with `base_seed + k`.
    pub base_seed: u64,
}

impl ExperimentConfig {
    /// The paper's full-scale parameters.
    pub fn paper() -> Self {
        ExperimentConfig {
            population: 100,
            rounds: 300,
            generations: 500,
            replications: 60,
            plays_per_env: 1,
            ga: GaParams::paper(),
            payoff: PayoffConfig::paper(),
            trust: TrustTable::paper(),
            activity: ActivityBands::paper(),
            route_selection: RouteSelection::BestRated,
            codec: StrategyCodec::Full,
            gossip: None,
            sleepers: Vec::new(),
            force_unknown: None,
            attackers: None,
            base_seed: 0x5EED_2007,
        }
    }

    /// Laptop-scale preset: identical model and tournament length
    /// (R = 300 — the reputation horizon is load-bearing, see
    /// EXPERIMENTS.md), smaller evolution budget (150 generations,
    /// 12 repetitions instead of 500/60).
    pub fn scaled() -> Self {
        ExperimentConfig {
            generations: 150,
            replications: 12,
            ..ExperimentConfig::paper()
        }
    }

    /// Tiny preset for unit/integration tests. 30 rounds is the smallest
    /// reputation horizon at which cooperation can still evolve in
    /// 10-participant tournaments (below that the defection basin
    /// swallows every run; see EXPERIMENTS.md, "scale sensitivity").
    pub fn smoke() -> Self {
        ExperimentConfig {
            population: 20,
            rounds: 30,
            generations: 10,
            replications: 2,
            ..ExperimentConfig::paper()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.population == 0 || self.generations == 0 || self.replications == 0 {
            return Err("population, generations and replications must be positive".into());
        }
        if self.rounds == 0 || self.plays_per_env == 0 {
            return Err("rounds and plays_per_env must be positive".into());
        }
        self.ga.validate()?;
        self.trust.validate()?;
        if let Some(groups) = &self.attackers {
            if groups.is_empty() {
                return Err("attackers, when set, needs at least one group".into());
            }
            let mut total = 0usize;
            for g in groups {
                if g.count == 0 {
                    return Err("attacker groups must be non-empty".into());
                }
                g.behavior.validate()?;
                total += g.count;
            }
            if total >= self.population {
                return Err(format!(
                    "attacker pool ({total}) must stay below the population ({})",
                    self.population
                ));
            }
        }
        Ok(())
    }

    /// Total attacker-pool size, 0 when `attackers` is unset.
    pub fn attacker_count(&self) -> usize {
        self.attackers
            .as_ref()
            .map(|groups| groups.iter().map(|g| g.count).sum())
            .unwrap_or(0)
    }

    /// Applies the `force_unknown` mask to a freshly bred genome.
    pub fn mask_genome(&self, genome: &mut BitStr) {
        if let Some(v) = self.force_unknown {
            genome.set(self.codec.unknown_bit(), v);
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper()
    }
}

/// Canonical structural hash of any serializable value: FNV-1a 64 over
/// the compact JSON encoding.
///
/// The vendored serde derive serializes struct fields in declaration
/// order and the writer is deterministic, so two structurally equal
/// values always produce the same byte stream — the property the
/// `ahn_serve` result cache keys on. The hash is a pure function of the
/// value (no per-process randomness), so keys are stable across
/// processes and restarts.
pub fn canonical_hash<T: ?Sized + serde::Serialize>(value: &T) -> Result<u64, String> {
    let json = serde_json::to_string(value).map_err(|e| format!("cannot canonicalize: {e}"))?;
    Ok(fnv1a_64(json.as_bytes()))
}

/// FNV-1a, 64-bit: the standard offset basis and prime.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_section_6_1() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.population, 100);
        assert_eq!(c.rounds, 300);
        assert_eq!(c.generations, 500);
        assert_eq!(c.replications, 60);
        assert_eq!(c.ga.crossover_prob, 0.9);
        assert_eq!(c.ga.mutation_prob, 0.001);
        c.validate().unwrap();
    }

    #[test]
    fn presets_validate() {
        ExperimentConfig::scaled().validate().unwrap();
        ExperimentConfig::smoke().validate().unwrap();
    }

    #[test]
    fn codec_widths() {
        assert_eq!(StrategyCodec::Full.genome_bits(), 13);
        assert_eq!(StrategyCodec::TrustOnly.genome_bits(), 5);
        assert_eq!(StrategyCodec::Full.unknown_bit(), 12);
        assert_eq!(StrategyCodec::TrustOnly.unknown_bit(), 4);
    }

    #[test]
    fn decode_full_and_reduced() {
        let full = StrategyCodec::Full.decode(&"0101011011111".parse().unwrap());
        assert_eq!(full.to_string(), "010 101 101 111 1");
        let lifted = StrategyCodec::TrustOnly.decode(&"01011".parse().unwrap());
        // Trust-only bit for T1 = 1 -> all three activity cells forward.
        assert_eq!(lifted.sub_strategy(ahn_net::TrustLevel::T1), 0b111);
        assert_eq!(lifted.sub_strategy(ahn_net::TrustLevel::T0), 0b000);
    }

    #[test]
    fn mask_pins_unknown_bit() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.force_unknown = Some(false);
        let mut g: BitStr = BitStr::ones(13);
        cfg.mask_genome(&mut g);
        assert!(!g.get(12));
        cfg.force_unknown = None;
        let mut g2 = BitStr::ones(13);
        cfg.mask_genome(&mut g2);
        assert!(g2.get(12));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ExperimentConfig::smoke();
        c.population = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::smoke();
        c.ga.mutation_prob = 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn attacker_groups_validate() {
        let mut c = ExperimentConfig::smoke();
        assert_eq!(c.attacker_count(), 0);
        c.attackers = Some(vec![
            AttackerGroup {
                behavior: AttackerBehavior::Liar,
                count: 2,
            },
            AttackerGroup {
                behavior: AttackerBehavior::OnOff { on: 5, off: 5 },
                count: 3,
            },
        ]);
        c.validate().unwrap();
        assert_eq!(c.attacker_count(), 5);
        // Bad parameters are rejected.
        for bad in [
            AttackerBehavior::RandomDropper { p: 1.5 },
            AttackerBehavior::OnOff { on: 0, off: 0 },
            AttackerBehavior::Whitewasher { period: 0 },
            AttackerBehavior::Flooder { extra: 0 },
        ] {
            let mut c = ExperimentConfig::smoke();
            c.attackers = Some(vec![AttackerGroup {
                behavior: bad,
                count: 1,
            }]);
            assert!(c.validate().is_err(), "{bad:?} should fail validation");
        }
        // A pool the size of the population leaves nobody to evolve.
        let mut c = ExperimentConfig::smoke();
        c.attackers = Some(vec![AttackerGroup {
            behavior: AttackerBehavior::Selfish,
            count: c.population,
        }]);
        assert!(c.validate().is_err());
        // Empty group list and zero-count groups are rejected.
        let mut c = ExperimentConfig::smoke();
        c.attackers = Some(vec![]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn behaviors_map_to_their_node_kinds() {
        use ahn_game::NodeKind;
        assert_eq!(
            AttackerBehavior::Selfish.node_kind(),
            NodeKind::ConstantlySelfish
        );
        assert_eq!(
            AttackerBehavior::Colluder { clique: 3 }.node_kind(),
            NodeKind::Colluder(3)
        );
        assert_eq!(
            AttackerBehavior::Whitewasher { period: 25 }.node_kind(),
            NodeKind::Whitewasher { period: 25 }
        );
    }

    #[test]
    fn legacy_config_json_without_attackers_still_parses() {
        // Wire-compat: specs serialized before the attackers field
        // existed must keep deserializing (absent Option tolerance).
        let mut json = serde_json::to_string(&ExperimentConfig::smoke()).unwrap();
        let needle = "\"attackers\":null,";
        assert!(json.contains(needle), "field missing from {json}");
        json = json.replace(needle, "");
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ExperimentConfig::smoke());
    }

    #[test]
    fn canonical_hash_is_structural() {
        let a = ExperimentConfig::scaled();
        let b = ExperimentConfig::scaled();
        assert_eq!(canonical_hash(&a).unwrap(), canonical_hash(&b).unwrap());
        // A JSON round-trip must not move the hash (same structure).
        let json = serde_json::to_string(&a).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(canonical_hash(&a).unwrap(), canonical_hash(&back).unwrap());
        // Any field change must move it.
        let mut c = ExperimentConfig::scaled();
        c.base_seed ^= 1;
        assert_ne!(canonical_hash(&a).unwrap(), canonical_hash(&c).unwrap());
    }

    #[test]
    fn canonical_hash_is_fnv1a() {
        // Pin the reference vectors so the on-disk cache-key format can
        // never drift silently (FNV-1a 64 of the compact JSON bytes).
        assert_eq!(canonical_hash("").unwrap(), fnv1a_64(b"\"\""));
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn serde_roundtrip() {
        let c = ExperimentConfig::scaled();
        let json = serde_json::to_string_pretty(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
