//! Forwarding strategies (paper §3.3, Fig. 1c).
//!
//! A strategy is a binary string of length 13. Bits 0–11 give the
//! forward/discard decision for each combination of the source's trust
//! level (0–3) and activity level (LO/MI/HI); bit 12 decides about
//! packets from *unknown* sources:
//!
//! ```text
//! bit:      0   1   2   3   4   5   6   7   8   9  10  11  12
//! trust:    └─ T0 ──┘  └─ T1 ──┘  └─ T2 ──┘  └─ T3 ──┘  unknown
//! activity: LO  MI  HI  LO  MI  HI  LO  MI  HI  LO  MI  HI
//! ```
//!
//! A set (`1`) bit means **F** (forward); a clear (`0`) bit means **D**
//! (discard). The paper prints strategies as `010 101 101 111 1` — four
//! 3-bit *sub-strategies* (one per trust level, LO MI HI order) plus the
//! unknown bit; [`Strategy`]'s `Display` reproduces that notation.
//!
//! The [`analysis`] module implements the population statistics behind
//! Tables 7–9, and [`reduced`] the 5-bit trust-only variant used by the
//! activity-dimension ablation (DESIGN.md A2).

#![deny(missing_docs)]

pub mod analysis;
pub mod reduced;

use ahn_bitstr::{fmt::Grouped, BitStr};
use ahn_net::{ActivityLevel, TrustLevel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of bits in a full strategy.
pub const STRATEGY_BITS: usize = 13;

/// A forward-or-discard decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Drop the packet (`D`, bit = 0).
    Discard,
    /// Relay the packet (`F`, bit = 1).
    Forward,
}

impl Decision {
    /// Builds a decision from a strategy bit.
    #[inline]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Decision::Forward
        } else {
            Decision::Discard
        }
    }

    /// The strategy bit encoding this decision.
    #[inline]
    pub fn bit(self) -> bool {
        self == Decision::Forward
    }
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Decision::Discard => "D",
            Decision::Forward => "F",
        })
    }
}

/// A 13-bit forwarding strategy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Strategy {
    bits: BitStr,
}

impl Strategy {
    /// Wraps a 13-bit string.
    ///
    /// # Panics
    /// Panics unless `bits.len() == 13`.
    pub fn from_bits(bits: BitStr) -> Self {
        assert_eq!(bits.len(), STRATEGY_BITS, "a strategy has exactly 13 bits");
        Strategy { bits }
    }

    /// A uniformly random strategy (initial populations, §5).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Strategy::from_bits(BitStr::random(rng, STRATEGY_BITS))
    }

    /// The fully cooperative strategy (`111 111 111 111 1`).
    pub fn always_forward() -> Self {
        Strategy::from_bits(BitStr::ones(STRATEGY_BITS))
    }

    /// The fully selfish strategy (`000 000 000 000 0`), i.e. the behavior
    /// of a constantly selfish node expressed as a strategy.
    pub fn always_discard() -> Self {
        Strategy::from_bits(BitStr::zeros(STRATEGY_BITS))
    }

    /// A trust-threshold strategy: forward iff the source's trust level is
    /// at least `min_trust` (regardless of activity); `forward_unknown`
    /// sets the unknown-node bit. A useful hand-written baseline.
    pub fn trust_threshold(min_trust: TrustLevel, forward_unknown: bool) -> Self {
        let mut bits = BitStr::zeros(STRATEGY_BITS);
        for t in TrustLevel::ALL {
            if t >= min_trust {
                for a in ActivityLevel::ALL {
                    bits.set(cell_index(t, a), true);
                }
            }
        }
        bits.set(UNKNOWN_BIT, forward_unknown);
        Strategy::from_bits(bits)
    }

    /// The underlying bit string (e.g. for GA operators).
    pub fn bits(&self) -> &BitStr {
        &self.bits
    }

    /// Consumes the strategy, returning the genome.
    pub fn into_bits(self) -> BitStr {
        self.bits
    }

    /// The decision against a *known* source with the given trust and
    /// activity levels (bits 0–11).
    #[inline]
    pub fn decision(&self, trust: TrustLevel, activity: ActivityLevel) -> Decision {
        Decision::from_bit(self.bits.get(cell_index(trust, activity)))
    }

    /// The decision against an *unknown* source (bit 12).
    #[inline]
    pub fn unknown_decision(&self) -> Decision {
        Decision::from_bit(self.bits.get(UNKNOWN_BIT))
    }

    /// The 3-bit sub-strategy for one trust level, as a value 0..=7 with
    /// LO as the most significant bit (so `0b010` = "forward only for MI",
    /// printed `010` like Tables 8–9).
    pub fn sub_strategy(&self, trust: TrustLevel) -> u8 {
        let base = trust.value() as usize * 3;
        self.bits.slice_value(base..base + 3) as u8
    }

    /// Encodes the whole strategy as a 13-bit integer (bit 0 of the paper
    /// = most significant), a compact key for popularity histograms.
    pub fn encode(&self) -> u16 {
        self.bits.slice_value(0..STRATEGY_BITS) as u16
    }

    /// Decodes [`Strategy::encode`]'s integer form.
    ///
    /// # Panics
    /// Panics if `code >= 2^13`.
    pub fn decode(code: u16) -> Self {
        assert!(code < 1 << STRATEGY_BITS, "code {code} exceeds 13 bits");
        Strategy::from_bits(BitStr::from_value(u64::from(code), STRATEGY_BITS))
    }

    /// Fraction of the 12 known-source cells that say Forward — a crude
    /// but useful cooperativeness score for population summaries.
    pub fn cooperativeness(&self) -> f64 {
        let forwards: usize = (0..12).filter(|&i| self.bits.get(i)).count();
        forwards as f64 / 12.0
    }

    /// Renders the decision table like Fig. 1c's caption, for debugging
    /// and the strategy-analysis example.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in TrustLevel::ALL {
            let _ = write!(out, "{t}: ");
            for a in ActivityLevel::ALL {
                let _ = write!(out, "{}={} ", a, self.decision(t, a));
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "unknown: {}", self.unknown_decision());
        out
    }
}

/// Index of the unknown-node bit.
pub const UNKNOWN_BIT: usize = 12;

/// Bit index for a (trust, activity) cell: three bits per trust level in
/// LO, MI, HI order (Fig. 1c).
#[inline]
pub fn cell_index(trust: TrustLevel, activity: ActivityLevel) -> usize {
    trust.value() as usize * 3 + activity.value() as usize
}

impl std::fmt::Display for Strategy {
    /// Prints the paper's grouped notation, e.g. `010 101 101 111 1`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Grouped(&self.bits, 3).fmt(f)
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parses either notation (`"010 101 101 111 1"` or compact).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bits: BitStr = s.parse().map_err(|e| format!("{e}"))?;
        if bits.len() != STRATEGY_BITS {
            return Err(format!(
                "a strategy needs exactly {STRATEGY_BITS} bits, got {}",
                bits.len()
            ));
        }
        Ok(Strategy::from_bits(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of §3.3: strategy `DDD FFF DDD FDD F`
    /// (Fig. 1c), node B has trust 3 in node A, A's activity is LO ->
    /// decision is bit 9 = F.
    #[test]
    fn fig_1c_worked_example() {
        // DDD FFF DDD FDD F -> 000 111 000 100 1
        let s: Strategy = "000 111 000 100 1".parse().unwrap();
        assert_eq!(
            s.decision(TrustLevel::T3, ActivityLevel::Lo),
            Decision::Forward,
            "bit 9 of the example strategy is F"
        );
        assert_eq!(
            s.decision(TrustLevel::T3, ActivityLevel::Mi),
            Decision::Discard
        );
        assert_eq!(
            s.decision(TrustLevel::T0, ActivityLevel::Lo),
            Decision::Discard
        );
        assert_eq!(
            s.decision(TrustLevel::T1, ActivityLevel::Hi),
            Decision::Forward
        );
        assert_eq!(s.unknown_decision(), Decision::Forward);
    }

    #[test]
    fn cell_index_layout_matches_fig_1c() {
        assert_eq!(cell_index(TrustLevel::T0, ActivityLevel::Lo), 0);
        assert_eq!(cell_index(TrustLevel::T0, ActivityLevel::Hi), 2);
        assert_eq!(cell_index(TrustLevel::T1, ActivityLevel::Lo), 3);
        assert_eq!(cell_index(TrustLevel::T3, ActivityLevel::Lo), 9);
        assert_eq!(cell_index(TrustLevel::T3, ActivityLevel::Hi), 11);
    }

    #[test]
    fn extreme_strategies() {
        let allc = Strategy::always_forward();
        let alld = Strategy::always_discard();
        for t in TrustLevel::ALL {
            for a in ActivityLevel::ALL {
                assert_eq!(allc.decision(t, a), Decision::Forward);
                assert_eq!(alld.decision(t, a), Decision::Discard);
            }
        }
        assert_eq!(allc.unknown_decision(), Decision::Forward);
        assert_eq!(alld.unknown_decision(), Decision::Discard);
        assert_eq!(allc.cooperativeness(), 1.0);
        assert_eq!(alld.cooperativeness(), 0.0);
    }

    #[test]
    fn trust_threshold_strategy() {
        let s = Strategy::trust_threshold(TrustLevel::T2, true);
        assert_eq!(
            s.decision(TrustLevel::T1, ActivityLevel::Hi),
            Decision::Discard
        );
        assert_eq!(
            s.decision(TrustLevel::T2, ActivityLevel::Lo),
            Decision::Forward
        );
        assert_eq!(
            s.decision(TrustLevel::T3, ActivityLevel::Mi),
            Decision::Forward
        );
        assert_eq!(s.unknown_decision(), Decision::Forward);
        assert!((s.cooperativeness() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sub_strategy_extraction_matches_tables_8_9() {
        // Table 7 row 1 (case 3): 010 101 101 111 1.
        let s: Strategy = "010 101 101 111 1".parse().unwrap();
        assert_eq!(s.sub_strategy(TrustLevel::T0), 0b010);
        assert_eq!(s.sub_strategy(TrustLevel::T1), 0b101);
        assert_eq!(s.sub_strategy(TrustLevel::T2), 0b101);
        assert_eq!(s.sub_strategy(TrustLevel::T3), 0b111);
    }

    #[test]
    fn display_roundtrip_uses_paper_notation() {
        let s: Strategy = "000 111 111 111 1".parse().unwrap();
        assert_eq!(s.to_string(), "000 111 111 111 1");
        let back: Strategy = s.to_string().parse().unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn parse_rejects_wrong_lengths() {
        assert!("010".parse::<Strategy>().is_err());
        assert!("0101011011111 0".parse::<Strategy>().is_err());
        assert!("01010110111x1".parse::<Strategy>().is_err());
    }

    #[test]
    fn encode_decode_roundtrip_all_8192() {
        for code in 0u16..(1 << 13) {
            let s = Strategy::decode(code);
            assert_eq!(s.encode(), code);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 13 bits")]
    fn decode_rejects_large_codes() {
        let _ = Strategy::decode(1 << 13);
    }

    #[test]
    fn random_strategy_is_deterministic_under_seed() {
        use rand::SeedableRng;
        let mut a = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let mut b = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        assert_eq!(Strategy::random(&mut a), Strategy::random(&mut b));
    }

    #[test]
    fn describe_mentions_all_levels() {
        let d = Strategy::always_forward().describe();
        for needle in ["TL0", "TL3", "LO=F", "HI=F", "unknown: F"] {
            assert!(d.contains(needle), "missing {needle} in {d}");
        }
    }

    #[test]
    fn serde_is_transparent_paper_notation() {
        let s: Strategy = "010 101 101 111 1".parse().unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"0101011011111\"");
        let back: Strategy = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
