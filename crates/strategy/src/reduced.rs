//! Trust-only (5-bit) strategies for the activity-dimension ablation
//! (DESIGN.md A2).
//!
//! The paper's strategy conditions on trust × activity (13 bits). To
//! measure what the activity dimension buys, this module provides the
//! reduced chromosome: one bit per trust level plus the unknown-node bit.
//! A reduced strategy can be *lifted* into a full [`Strategy`] (same
//! decision for every activity level), so the whole game engine runs
//! unchanged for the ablation — only the genome the GA mutates shrinks.

use crate::{Decision, Strategy};
use ahn_bitstr::{fmt::Grouped, BitStr};
use ahn_net::TrustLevel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of bits in a reduced strategy.
pub const REDUCED_BITS: usize = 5;

/// A 5-bit trust-only strategy: bits 0–3 decide for trust levels 0–3,
/// bit 4 decides for unknown sources.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ReducedStrategy {
    bits: BitStr,
}

impl ReducedStrategy {
    /// Wraps a 5-bit string.
    ///
    /// # Panics
    /// Panics unless `bits.len() == 5`.
    pub fn from_bits(bits: BitStr) -> Self {
        assert_eq!(bits.len(), REDUCED_BITS, "a reduced strategy has 5 bits");
        ReducedStrategy { bits }
    }

    /// A uniformly random reduced strategy.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ReducedStrategy::from_bits(BitStr::random(rng, REDUCED_BITS))
    }

    /// The underlying genome.
    pub fn bits(&self) -> &BitStr {
        &self.bits
    }

    /// Decision for a known source at `trust` (activity is ignored — that
    /// is the point of the ablation).
    pub fn decision(&self, trust: TrustLevel) -> Decision {
        Decision::from_bit(self.bits.get(trust.value() as usize))
    }

    /// Decision for an unknown source.
    pub fn unknown_decision(&self) -> Decision {
        Decision::from_bit(self.bits.get(4))
    }

    /// Expands into a full 13-bit [`Strategy`] that makes the same
    /// decision for every activity level.
    pub fn lift(&self) -> Strategy {
        let mut bits = BitStr::zeros(crate::STRATEGY_BITS);
        for t in TrustLevel::ALL {
            let d = self.bits.get(t.value() as usize);
            for a in ahn_net::ActivityLevel::ALL {
                bits.set(crate::cell_index(t, a), d);
            }
        }
        bits.set(crate::UNKNOWN_BIT, self.bits.get(4));
        Strategy::from_bits(bits)
    }

    /// Projects a full strategy down by majority vote within each trust
    /// level (ties round toward Discard). The left inverse of
    /// [`ReducedStrategy::lift`].
    pub fn project(full: &Strategy) -> Self {
        let mut bits = BitStr::zeros(REDUCED_BITS);
        for t in TrustLevel::ALL {
            let forwards = full.sub_strategy(t).count_ones();
            bits.set(t.value() as usize, forwards >= 2);
        }
        bits.set(4, full.unknown_decision() == Decision::Forward);
        ReducedStrategy::from_bits(bits)
    }
}

impl std::fmt::Display for ReducedStrategy {
    /// Prints as `TTTT u`, e.g. `0111 1`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Grouped(&self.bits, 4).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahn_net::ActivityLevel;

    #[test]
    fn lift_is_activity_invariant() {
        let r: ReducedStrategy = ReducedStrategy::from_bits("01011".parse().unwrap());
        let full = r.lift();
        for t in TrustLevel::ALL {
            for a in ActivityLevel::ALL {
                assert_eq!(full.decision(t, a), r.decision(t));
            }
        }
        assert_eq!(full.unknown_decision(), r.unknown_decision());
    }

    #[test]
    fn project_inverts_lift() {
        for code in 0u16..(1 << REDUCED_BITS) {
            let r = ReducedStrategy::from_bits(BitStr::from_value(u64::from(code), REDUCED_BITS));
            assert_eq!(ReducedStrategy::project(&r.lift()), r);
        }
    }

    #[test]
    fn project_majority_votes() {
        // T0 block 010 -> one forward of three -> majority Discard.
        // T1 block 011 -> two forwards -> Forward.
        let full: Strategy = "010 011 111 000 1".parse().unwrap();
        let r = ReducedStrategy::project(&full);
        assert_eq!(r.decision(TrustLevel::T0), Decision::Discard);
        assert_eq!(r.decision(TrustLevel::T1), Decision::Forward);
        assert_eq!(r.decision(TrustLevel::T2), Decision::Forward);
        assert_eq!(r.decision(TrustLevel::T3), Decision::Discard);
        assert_eq!(r.unknown_decision(), Decision::Forward);
    }

    #[test]
    fn display_groups_trust_bits() {
        let r = ReducedStrategy::from_bits("10101".parse().unwrap());
        assert_eq!(r.to_string(), "1010 1");
    }

    #[test]
    #[should_panic(expected = "5 bits")]
    fn wrong_width_panics() {
        let _ = ReducedStrategy::from_bits(BitStr::zeros(13));
    }

    #[test]
    fn random_is_seedable() {
        use rand::SeedableRng;
        let mut a = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let mut b = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            ReducedStrategy::random(&mut a),
            ReducedStrategy::random(&mut b)
        );
    }
}
