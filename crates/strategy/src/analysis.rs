//! Strategy-population analysis (paper §6.3, Tables 7–9).
//!
//! Table 7 lists the five most popular full strategies in final
//! populations; Tables 8–9 break populations down into 3-bit
//! *sub-strategies* per trust level, showing those above a 3 % share.
//! [`StrategyCensus`] accumulates both views across runs.

use crate::{Strategy, STRATEGY_BITS};
use ahn_net::TrustLevel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Population census: full-strategy popularity plus per-trust-level
/// sub-strategy popularity.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrategyCensus {
    /// Count per encoded full strategy (13-bit code).
    full: BTreeMap<u16, u64>,
    /// Count per 3-bit sub-strategy, one table per trust level.
    sub: [BTreeMap<u8, u64>; 4],
    /// Count of strategies whose unknown-node bit says Forward.
    unknown_forward: u64,
    /// Total strategies observed.
    total: u64,
}

impl StrategyCensus {
    /// Creates an empty census.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one strategy observation.
    pub fn add(&mut self, s: &Strategy) {
        *self.full.entry(s.encode()).or_insert(0) += 1;
        for t in TrustLevel::ALL {
            *self.sub[t.value() as usize]
                .entry(s.sub_strategy(t))
                .or_insert(0) += 1;
        }
        if s.unknown_decision() == crate::Decision::Forward {
            self.unknown_forward += 1;
        }
        self.total += 1;
    }

    /// Adds every strategy of a population.
    pub fn add_population<'a, I: IntoIterator<Item = &'a Strategy>>(&mut self, pop: I) {
        for s in pop {
            self.add(s);
        }
    }

    /// Merges another census (e.g. from another replication).
    pub fn merge(&mut self, other: &StrategyCensus) {
        for (&k, &n) in &other.full {
            *self.full.entry(k).or_insert(0) += n;
        }
        for t in 0..4 {
            for (&k, &n) in &other.sub[t] {
                *self.sub[t].entry(k).or_insert(0) += n;
            }
        }
        self.unknown_forward += other.unknown_forward;
        self.total += other.total;
    }

    /// Total strategies observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `n` most popular full strategies with their share, ties broken
    /// by code for determinism (Table 7).
    pub fn top_strategies(&self, n: usize) -> Vec<(Strategy, f64)> {
        let mut v: Vec<(u16, u64)> = self.full.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter()
            .take(n)
            .map(|(k, c)| (Strategy::decode(k), c as f64 / self.total.max(1) as f64))
            .collect()
    }

    /// Sub-strategy shares for one trust level, descending, filtered to
    /// shares strictly above `min_share` (Tables 8–9 use 0.03).
    pub fn sub_strategies(&self, trust: TrustLevel, min_share: f64) -> Vec<(u8, f64)> {
        let table = &self.sub[trust.value() as usize];
        let mut v: Vec<(u8, u64)> = table.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter()
            .map(|(k, c)| (k, c as f64 / self.total.max(1) as f64))
            .filter(|&(_, share)| share > min_share)
            .collect()
    }

    /// Share of strategies that forward for unknown nodes (the paper
    /// observes this converges to ~1: "a decision against an unknown
    /// player (last bit) is to forward").
    pub fn unknown_forward_share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.unknown_forward as f64 / self.total as f64
        }
    }

    /// Share of strategies whose sub-strategy for `trust` forwards in at
    /// least `k` of the three activity levels — the lens the paper uses
    /// when it says e.g. "93 % of strategies said to forward packets for
    /// at least two activity levels" (§6.3).
    pub fn forward_at_least(&self, trust: TrustLevel, k: u32) -> f64 {
        let table = &self.sub[trust.value() as usize];
        let matching: u64 = table
            .iter()
            .filter(|(&code, _)| code.count_ones() >= k)
            .map(|(_, &c)| c)
            .sum();
        if self.total == 0 {
            0.0
        } else {
            matching as f64 / self.total as f64
        }
    }
}

/// Renders a 3-bit sub-strategy the way the paper prints it (`"010"`).
pub fn sub_strategy_str(code: u8) -> String {
    assert!(code < 8, "sub-strategy code {code} exceeds 3 bits");
    format!("{code:03b}")
}

/// Mean pairwise-distinct diversity of a population: number of distinct
/// strategies divided by population size.
pub fn diversity<'a, I: IntoIterator<Item = &'a Strategy>>(pop: I) -> f64 {
    let mut seen = std::collections::BTreeSet::new();
    let mut n = 0u64;
    for s in pop {
        seen.insert(s.encode());
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        seen.len() as f64 / n as f64
    }
}

/// Mean Hamming distance from every strategy to the population's most
/// popular strategy — a convergence diagnostic.
pub fn convergence_spread(pop: &[Strategy]) -> f64 {
    if pop.is_empty() {
        return 0.0;
    }
    let mut census = StrategyCensus::new();
    census.add_population(pop);
    let center = census.top_strategies(1)[0].0.clone();
    let total: usize = pop.iter().map(|s| s.bits().hamming(center.bits())).sum();
    total as f64 / (pop.len() * STRATEGY_BITS) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strat(s: &str) -> Strategy {
        s.parse().unwrap()
    }

    #[test]
    fn top_strategies_ranking() {
        let mut c = StrategyCensus::new();
        let a = strat("010 101 101 111 1");
        let b = strat("000 111 111 111 1");
        c.add_population([&a, &a, &a, &b]);
        let top = c.top_strategies(2);
        assert_eq!(top[0].0, a);
        assert!((top[0].1 - 0.75).abs() < 1e-12);
        assert_eq!(top[1].0, b);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn sub_strategy_table_with_cutoff() {
        let mut c = StrategyCensus::new();
        // 97 strategies with T3 = 111, 3 with T3 = 000: the 3% cutoff
        // hides the minority (3/100 is not > 0.03).
        for _ in 0..97 {
            c.add(&strat("000 000 000 111 1"));
        }
        for _ in 0..3 {
            c.add(&strat("000 000 000 000 1"));
        }
        let t3 = c.sub_strategies(TrustLevel::T3, 0.03);
        assert_eq!(t3, vec![(0b111, 0.97)]);
        // Without cutoff both appear.
        let all = c.sub_strategies(TrustLevel::T3, 0.0);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn unknown_forward_share() {
        let mut c = StrategyCensus::new();
        c.add(&strat("000 000 000 000 1"));
        c.add(&strat("000 000 000 000 0"));
        c.add(&strat("111 111 111 111 1"));
        assert!((c.unknown_forward_share() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn forward_at_least_counts_activity_levels() {
        let mut c = StrategyCensus::new();
        c.add(&strat("010 000 000 000 0")); // T0: one F
        c.add(&strat("011 000 000 000 0")); // T0: two F
        c.add(&strat("111 000 000 000 0")); // T0: three F
        assert!((c.forward_at_least(TrustLevel::T0, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.forward_at_least(TrustLevel::T0, 1), 1.0);
        assert_eq!(c.forward_at_least(TrustLevel::T1, 1), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = StrategyCensus::new();
        a.add(&strat("111 111 111 111 1"));
        let mut b = StrategyCensus::new();
        b.add(&strat("111 111 111 111 1"));
        b.add(&strat("000 000 000 000 0"));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        let top = a.top_strategies(1);
        assert_eq!(top[0].0, strat("111 111 111 111 1"));
    }

    #[test]
    fn sub_strategy_string_formats_like_paper() {
        assert_eq!(sub_strategy_str(0b010), "010");
        assert_eq!(sub_strategy_str(0), "000");
        assert_eq!(sub_strategy_str(7), "111");
    }

    #[test]
    #[should_panic(expected = "exceeds 3 bits")]
    fn sub_strategy_string_rejects_wide_codes() {
        let _ = sub_strategy_str(8);
    }

    #[test]
    fn diversity_metric() {
        let a = strat("111 111 111 111 1");
        let b = strat("000 000 000 000 0");
        assert_eq!(diversity([&a, &a, &a, &a]), 0.25);
        assert_eq!(diversity([&a, &b]), 1.0);
        assert_eq!(diversity(std::iter::empty()), 0.0);
    }

    #[test]
    fn convergence_spread_zero_for_converged() {
        let pop = vec![strat("111 111 111 111 1"); 10];
        assert_eq!(convergence_spread(&pop), 0.0);
        let mixed = vec![strat("111 111 111 111 1"), strat("000 000 000 000 0")];
        assert!(convergence_spread(&mixed) > 0.0);
        assert_eq!(convergence_spread(&[]), 0.0);
    }

    #[test]
    fn empty_census_is_safe() {
        let c = StrategyCensus::new();
        assert!(c.top_strategies(5).is_empty());
        assert!(c.sub_strategies(TrustLevel::T0, 0.0).is_empty());
        assert_eq!(c.unknown_forward_share(), 0.0);
        assert_eq!(c.forward_at_least(TrustLevel::T2, 1), 0.0);
    }
}
