//! Property-based tests for the strategy codec.

use ahn_bitstr::BitStr;
use ahn_net::{ActivityLevel, TrustLevel};
use ahn_strategy::{
    analysis::StrategyCensus, cell_index, reduced::ReducedStrategy, Decision,
    Strategy as FwdStrategy, STRATEGY_BITS, UNKNOWN_BIT,
};
use proptest::prelude::*;

/// An arbitrary 13-bit forwarding strategy (`FwdStrategy` aliases our
/// `Strategy` to dodge the clash with proptest's trait of the same name).
fn any_strategy() -> impl Strategy<Value = FwdStrategy> {
    (0u16..(1 << 13)).prop_map(FwdStrategy::decode)
}

proptest! {
    /// Every decision a strategy makes equals the bit at the Fig. 1c
    /// index.
    #[test]
    fn decisions_match_bit_layout(s in any_strategy()) {
        for t in TrustLevel::ALL {
            for a in ActivityLevel::ALL {
                let bit = s.bits().get(cell_index(t, a));
                prop_assert_eq!(s.decision(t, a) == Decision::Forward, bit);
            }
        }
        prop_assert_eq!(
            s.unknown_decision() == Decision::Forward,
            s.bits().get(UNKNOWN_BIT)
        );
    }

    /// encode/decode and text round-trips are lossless.
    #[test]
    fn roundtrips(s in any_strategy()) {
        prop_assert_eq!(FwdStrategy::decode(s.encode()), s.clone());
        let text: FwdStrategy = s.to_string().parse().unwrap();
        prop_assert_eq!(text, s.clone());
        let json: FwdStrategy = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        prop_assert_eq!(json, s);
    }

    /// Sub-strategies reassemble into the original 12 decision bits.
    #[test]
    fn sub_strategies_partition_the_genome(s in any_strategy()) {
        let mut bits = BitStr::zeros(STRATEGY_BITS);
        for t in TrustLevel::ALL {
            let sub = s.sub_strategy(t);
            for a in ActivityLevel::ALL {
                let bit = (sub >> (2 - a.value())) & 1 == 1;
                bits.set(cell_index(t, a), bit);
            }
        }
        bits.set(UNKNOWN_BIT, s.unknown_decision() == Decision::Forward);
        prop_assert_eq!(FwdStrategy::from_bits(bits), s);
    }

    /// Cooperativeness equals the density of forward bits over the 12
    /// known-source cells.
    #[test]
    fn cooperativeness_is_forward_density(s in any_strategy()) {
        let forwards = TrustLevel::ALL
            .iter()
            .flat_map(|&t| ActivityLevel::ALL.iter().map(move |&a| (t, a)))
            .filter(|&(t, a)| s.decision(t, a) == Decision::Forward)
            .count();
        prop_assert!((s.cooperativeness() - forwards as f64 / 12.0).abs() < 1e-12);
    }

    /// lift∘project is the identity on reduced strategies and project is
    /// total on full strategies.
    #[test]
    fn reduced_lift_project(code in 0u64..32) {
        let r = ReducedStrategy::from_bits(BitStr::from_value(code, 5));
        prop_assert_eq!(ReducedStrategy::project(&r.lift()), r);
    }

    /// Census shares sum to 1 over the full table and the top-k is sorted.
    #[test]
    fn census_shares_sum_to_one(codes in proptest::collection::vec(0u16..(1 << 13), 1..60)) {
        let pop: Vec<FwdStrategy> = codes.into_iter().map(FwdStrategy::decode).collect();
        let mut census = StrategyCensus::new();
        census.add_population(&pop);
        prop_assert_eq!(census.total(), pop.len() as u64);
        let all = census.top_strategies(usize::MAX);
        let total_share: f64 = all.iter().map(|(_, f)| f).sum();
        prop_assert!((total_share - 1.0).abs() < 1e-9);
        for w in all.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "top-k must be sorted by share");
        }
        // Per-trust sub-strategy shares also sum to 1.
        for t in TrustLevel::ALL {
            let sum: f64 = census.sub_strategies(t, 0.0).iter().map(|(_, f)| f).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
