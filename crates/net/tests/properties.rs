//! Property-based tests for the network substrate.

use ahn_net::watchdog::apply_route_outcome;
use ahn_net::{
    paths::{path_rating, select_best_path, UNKNOWN_RATE},
    ActivityBands, NodeId, PathGenerator, PathMode, ReputationMatrix, RouteOutcome, TrustLevel,
    TrustTable,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An arbitrary sequence of reputation operations on a small network.
#[derive(Debug, Clone)]
enum RepOp {
    Forward(u8, u8),
    Drop(u8, u8),
}

fn rep_ops(n_nodes: u8, max_len: usize) -> impl Strategy<Value = Vec<RepOp>> {
    proptest::collection::vec(
        (0..n_nodes, 0..n_nodes, any::<bool>()).prop_map(|(o, s, fwd)| {
            if fwd {
                RepOp::Forward(o, s)
            } else {
                RepOp::Drop(o, s)
            }
        }),
        0..max_len,
    )
}

proptest! {
    /// After any operation sequence: pf <= ps, rates in [0,1], diagonal
    /// untouched, and the structural invariant checker agrees.
    #[test]
    fn reputation_invariants_hold(ops in rep_ops(8, 200)) {
        let mut m = ReputationMatrix::new(8);
        for op in &ops {
            match *op {
                RepOp::Forward(o, s) if o != s => {
                    m.record_forward(NodeId(o.into()), NodeId(s.into()))
                }
                RepOp::Drop(o, s) if o != s => {
                    m.record_drop(NodeId(o.into()), NodeId(s.into()))
                }
                _ => {}
            }
        }
        m.check_invariants().unwrap();
        for o in 0..8u32 {
            for s in 0..8u32 {
                if let Some(r) = m.rate(NodeId(o), NodeId(s)) {
                    prop_assert!((0.0..=1.0).contains(&r));
                }
            }
        }
    }

    /// Trust levels are monotone in the forwarding rate.
    #[test]
    fn trust_is_monotone(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let t = TrustTable::paper();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.level(lo) <= t.level(hi));
    }

    /// The activity classification is monotone in the source's forwarded
    /// count and LO/HI flank MI.
    #[test]
    fn activity_is_monotone(av in 0.1f64..1000.0, x in 0.0f64..1000.0, y in 0.0f64..1000.0) {
        let bands = ActivityBands::paper();
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(bands.classify(lo, av) <= bands.classify(hi, av));
    }

    /// Path ratings multiply rates, so they are in [0,1] and adding a
    /// relay never increases the rating.
    #[test]
    fn path_rating_shrinks_with_length(ops in rep_ops(8, 100), len in 1usize..6) {
        let mut m = ReputationMatrix::new(8);
        for op in &ops {
            match *op {
                RepOp::Forward(o, s) if o != s => {
                    m.record_forward(NodeId(o.into()), NodeId(s.into()))
                }
                RepOp::Drop(o, s) if o != s => {
                    m.record_drop(NodeId(o.into()), NodeId(s.into()))
                }
                _ => {}
            }
        }
        let path: Vec<NodeId> = (1..=len as u32).map(NodeId).collect();
        let r_full = path_rating(&m, NodeId(0), &path);
        let r_prefix = path_rating(&m, NodeId(0), &path[..len - 1]);
        prop_assert!((0.0..=1.0).contains(&r_full));
        prop_assert!(r_full <= r_prefix + 1e-12);
    }

    /// select_best_path returns the argmax of path_rating.
    #[test]
    fn best_path_is_argmax(seed in any::<u64>(), n_paths in 1usize..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = ReputationMatrix::new(10);
        // Random reputation state.
        use rand::Rng as _;
        for _ in 0..100 {
            let o = NodeId(rng.gen_range(0..10));
            let s = NodeId(rng.gen_range(0..10));
            if o == s { continue; }
            if rng.gen_bool(0.5) { m.record_forward(o, s) } else { m.record_drop(o, s) }
        }
        let generator = PathGenerator::for_mode(PathMode::Shorter);
        let pool: Vec<NodeId> = (1..10u32).map(NodeId).collect();
        let mut scratch = Vec::new();
        let candidates: Vec<Vec<NodeId>> = (0..n_paths)
            .map(|_| generator.generate(&mut rng, &pool, &mut scratch).remove(0))
            .collect();
        let chosen = select_best_path(&m, NodeId(0), &candidates);
        let best = candidates
            .iter()
            .map(|c| path_rating(&m, NodeId(0), c))
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((path_rating(&m, NodeId(0), &candidates[chosen]) - best).abs() < 1e-12);
    }

    /// Generated candidate paths always satisfy the structural contract.
    #[test]
    fn generated_paths_are_wellformed(seed in any::<u64>(), pool_size in 1usize..40) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let generator = PathGenerator::for_mode(PathMode::Longer);
        let pool: Vec<NodeId> = (0..pool_size as u32).map(NodeId).collect();
        let mut scratch = Vec::new();
        let candidates = generator.generate(&mut rng, &pool, &mut scratch);
        prop_assert!((1..=3).contains(&candidates.len()));
        for path in &candidates {
            prop_assert!(!path.is_empty() || pool_size == 0);
            prop_assert!(path.len() <= pool.len());
            prop_assert!(path.len() <= 9, "at most 10 hops");
            let mut sorted = path.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len(), "relays must be distinct");
            prop_assert!(path.iter().all(|n| pool.contains(n)));
        }
    }

    /// Watchdog updates never touch nodes outside the deciding prefix and
    /// never rate the source.
    #[test]
    fn watchdog_update_scope(
        n_inter in 1usize..8,
        drop_at in proptest::option::of(0usize..8),
    ) {
        let drop_at = drop_at.filter(|&k| k < n_inter);
        let mut m = ReputationMatrix::new(12);
        let source = NodeId(0);
        let inter: Vec<NodeId> = (1..=n_inter as u32).map(NodeId).collect();
        let outcome = match drop_at {
            Some(k) => RouteOutcome::DroppedAt(k),
            None => RouteOutcome::Delivered,
        };
        apply_route_outcome(&mut m, source, &inter, outcome);
        m.check_invariants().unwrap();

        let deciders = outcome.deciders(n_inter);
        // Nobody rates the source; nodes beyond the dropper are unknown.
        for o in 0..12u32 {
            prop_assert!(!m.knows(NodeId(o), source));
            for s in (deciders + 1)..=(n_inter) {
                prop_assert!(!m.knows(NodeId(o), NodeId(s as u32)));
            }
        }
        // Forwarders have rate 1 as seen by the source; the dropper 0.
        for (j, &s) in inter[..deciders].iter().enumerate() {
            let expected = if j < outcome.forwards(n_inter) { 1.0 } else { 0.0 };
            prop_assert_eq!(m.rate(source, s), Some(expected));
        }
    }

    /// Unknown-rate constant is consistent with the unknown trust level.
    #[test]
    fn unknown_rate_maps_to_unknown_trust(_x in 0..1) {
        let t = TrustTable::paper();
        prop_assert_eq!(t.level(UNKNOWN_RATE), t.unknown);
        prop_assert_eq!(t.unknown, TrustLevel::T1);
    }
}
