//! Property-based tests for the network substrate.

use ahn_net::watchdog::apply_route_outcome;
use ahn_net::{
    paths::{path_rating, select_best_path, UNKNOWN_RATE},
    ActivityBands, NodeId, PathGenerator, PathMode, ReputationMatrix, RouteOutcome, TrustLevel,
    TrustTable,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An arbitrary sequence of reputation operations on a small network.
#[derive(Debug, Clone)]
enum RepOp {
    Forward(u8, u8),
    Drop(u8, u8),
}

fn rep_ops(n_nodes: u8, max_len: usize) -> impl Strategy<Value = Vec<RepOp>> {
    proptest::collection::vec(
        (0..n_nodes, 0..n_nodes, any::<bool>()).prop_map(|(o, s, fwd)| {
            if fwd {
                RepOp::Forward(o, s)
            } else {
                RepOp::Drop(o, s)
            }
        }),
        0..max_len,
    )
}

/// The full update surface of the matrix: watchdog observations,
/// gossip-style merges, and generation clears.
#[derive(Debug, Clone)]
enum FullOp {
    Forward(u8, u8),
    Drop(u8, u8),
    Absorb(u8, u8, u8, u8),
    Clear,
}

fn full_ops(n_nodes: u8, max_len: usize) -> impl Strategy<Value = Vec<FullOp>> {
    proptest::collection::vec(
        (0..n_nodes, 0..n_nodes, any::<u8>(), any::<u8>(), 0u8..10).prop_map(
            |(o, s, a, b, kind)| match kind {
                0..=3 => FullOp::Forward(o, s),
                4..=6 => FullOp::Drop(o, s),
                7..=8 => FullOp::Absorb(o, s, a.max(b), a.min(b)),
                _ => FullOp::Clear,
            },
        ),
        0..max_len,
    )
}

/// Applies one op to a matrix, skipping self-pairs (a debug panic).
fn apply_full(m: &mut ReputationMatrix, op: &FullOp) {
    match *op {
        FullOp::Forward(o, s) if o != s => m.record_forward(NodeId(o.into()), NodeId(s.into())),
        FullOp::Drop(o, s) if o != s => m.record_drop(NodeId(o.into()), NodeId(s.into())),
        FullOp::Absorb(o, s, requests, forwarded) if o != s => m.absorb(
            NodeId(o.into()),
            NodeId(s.into()),
            requests.into(),
            forwarded.into(),
        ),
        FullOp::Clear => m.clear(),
        _ => {}
    }
}

proptest! {
    /// After any operation sequence: pf <= ps, rates in [0,1], diagonal
    /// untouched, and the structural invariant checker agrees.
    #[test]
    fn reputation_invariants_hold(ops in rep_ops(8, 200)) {
        let mut m = ReputationMatrix::new(8);
        for op in &ops {
            match *op {
                RepOp::Forward(o, s) if o != s => {
                    m.record_forward(NodeId(o.into()), NodeId(s.into()))
                }
                RepOp::Drop(o, s) if o != s => {
                    m.record_drop(NodeId(o.into()), NodeId(s.into()))
                }
                _ => {}
            }
        }
        m.check_invariants().unwrap();
        for o in 0..8u32 {
            for s in 0..8u32 {
                if let Some(r) = m.rate(NodeId(o), NodeId(s)) {
                    prop_assert!((0.0..=1.0).contains(&r));
                }
            }
        }
    }

    /// Trust levels are monotone in the forwarding rate.
    #[test]
    fn trust_is_monotone(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let t = TrustTable::paper();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.level(lo) <= t.level(hi));
    }

    /// The activity classification is monotone in the source's forwarded
    /// count and LO/HI flank MI.
    #[test]
    fn activity_is_monotone(av in 0.1f64..1000.0, x in 0.0f64..1000.0, y in 0.0f64..1000.0) {
        let bands = ActivityBands::paper();
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(bands.classify(lo, av) <= bands.classify(hi, av));
    }

    /// Path ratings multiply rates, so they are in [0,1] and adding a
    /// relay never increases the rating.
    #[test]
    fn path_rating_shrinks_with_length(ops in rep_ops(8, 100), len in 1usize..6) {
        let mut m = ReputationMatrix::new(8);
        for op in &ops {
            match *op {
                RepOp::Forward(o, s) if o != s => {
                    m.record_forward(NodeId(o.into()), NodeId(s.into()))
                }
                RepOp::Drop(o, s) if o != s => {
                    m.record_drop(NodeId(o.into()), NodeId(s.into()))
                }
                _ => {}
            }
        }
        let path: Vec<NodeId> = (1..=len as u32).map(NodeId).collect();
        let r_full = path_rating(&m, NodeId(0), &path);
        let r_prefix = path_rating(&m, NodeId(0), &path[..len - 1]);
        prop_assert!((0.0..=1.0).contains(&r_full));
        prop_assert!(r_full <= r_prefix + 1e-12);
    }

    /// select_best_path returns the argmax of path_rating.
    #[test]
    fn best_path_is_argmax(seed in any::<u64>(), n_paths in 1usize..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = ReputationMatrix::new(10);
        // Random reputation state.
        use rand::Rng as _;
        for _ in 0..100 {
            let o = NodeId(rng.gen_range(0..10));
            let s = NodeId(rng.gen_range(0..10));
            if o == s { continue; }
            if rng.gen_bool(0.5) { m.record_forward(o, s) } else { m.record_drop(o, s) }
        }
        let generator = PathGenerator::for_mode(PathMode::Shorter);
        let pool: Vec<NodeId> = (1..10u32).map(NodeId).collect();
        let mut scratch = Vec::new();
        let candidates: Vec<Vec<NodeId>> = (0..n_paths)
            .map(|_| generator.generate(&mut rng, &pool, &mut scratch).remove(0))
            .collect();
        let chosen = select_best_path(&m, NodeId(0), &candidates);
        let best = candidates
            .iter()
            .map(|c| path_rating(&m, NodeId(0), c))
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((path_rating(&m, NodeId(0), &candidates[chosen]) - best).abs() < 1e-12);
    }

    /// Generated candidate paths always satisfy the structural contract.
    #[test]
    fn generated_paths_are_wellformed(seed in any::<u64>(), pool_size in 1usize..40) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let generator = PathGenerator::for_mode(PathMode::Longer);
        let pool: Vec<NodeId> = (0..pool_size as u32).map(NodeId).collect();
        let mut scratch = Vec::new();
        let candidates = generator.generate(&mut rng, &pool, &mut scratch);
        prop_assert!((1..=3).contains(&candidates.len()));
        for path in &candidates {
            prop_assert!(!path.is_empty() || pool_size == 0);
            prop_assert!(path.len() <= pool.len());
            prop_assert!(path.len() <= 9, "at most 10 hops");
            let mut sorted = path.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len(), "relays must be distinct");
            prop_assert!(path.iter().all(|n| pool.contains(n)));
        }
    }

    /// Watchdog updates never touch nodes outside the deciding prefix and
    /// never rate the source.
    #[test]
    fn watchdog_update_scope(
        n_inter in 1usize..8,
        drop_at in proptest::option::of(0usize..8),
    ) {
        let drop_at = drop_at.filter(|&k| k < n_inter);
        let mut m = ReputationMatrix::new(12);
        let source = NodeId(0);
        let inter: Vec<NodeId> = (1..=n_inter as u32).map(NodeId).collect();
        let outcome = match drop_at {
            Some(k) => RouteOutcome::DroppedAt(k),
            None => RouteOutcome::Delivered,
        };
        apply_route_outcome(&mut m, source, &inter, outcome);
        m.check_invariants().unwrap();

        let deciders = outcome.deciders(n_inter);
        // Nobody rates the source; nodes beyond the dropper are unknown.
        for o in 0..12u32 {
            prop_assert!(!m.knows(NodeId(o), source));
            for s in (deciders + 1)..=(n_inter) {
                prop_assert!(!m.knows(NodeId(o), NodeId(s as u32)));
            }
        }
        // Forwarders have rate 1 as seen by the source; the dropper 0.
        for (j, &s) in inter[..deciders].iter().enumerate() {
            let expected = if j < outcome.forwards(n_inter) { 1.0 } else { 0.0 };
            prop_assert_eq!(m.rate(source, s), Some(expected));
        }
    }

    /// Unknown-rate constant is consistent with the unknown trust level.
    #[test]
    fn unknown_rate_maps_to_unknown_trust(_x in 0..1) {
        let t = TrustTable::paper();
        prop_assert_eq!(t.level(UNKNOWN_RATE), t.unknown);
        prop_assert_eq!(t.unknown, TrustLevel::T1);
    }

    /// The sparse and dense backings are observationally equivalent
    /// under arbitrary update sequences: every read-side method agrees
    /// bit for bit, the aggregates match, both survive a serde round
    /// trip, and serialization (the deterministic iteration order) is
    /// stable across repeated renderings.
    #[test]
    fn sparse_and_dense_backings_are_observationally_equivalent(
        ops in full_ops(12, 250),
    ) {
        let n = 12usize;
        let mut dense = ReputationMatrix::new_dense(n);
        let mut sparse = ReputationMatrix::new_sparse(n);
        for op in &ops {
            apply_full(&mut dense, op);
            apply_full(&mut sparse, op);
        }
        dense.check_invariants().unwrap();
        sparse.check_invariants().unwrap();

        // Every lookup agrees, bit for bit.
        for o in 0..n as u32 {
            let o_id = NodeId(o);
            prop_assert_eq!(dense.known_count(o_id), sparse.known_count(o_id));
            prop_assert_eq!(
                dense.mean_forwarded_of_known(o_id).map(f64::to_bits),
                sparse.mean_forwarded_of_known(o_id).map(f64::to_bits)
            );
            for s in 0..n as u32 {
                let s_id = NodeId(s);
                prop_assert_eq!(dense.record(o_id, s_id), sparse.record(o_id, s_id));
                prop_assert_eq!(dense.knows(o_id, s_id), sparse.knows(o_id, s_id));
                prop_assert_eq!(
                    dense.rate(o_id, s_id).map(f64::to_bits),
                    sparse.rate(o_id, s_id).map(f64::to_bits)
                );
                prop_assert_eq!(
                    dense.rate_or_unknown(o_id, s_id).to_bits(),
                    sparse.rate_or_unknown(o_id, s_id).to_bits()
                );
                let (dr, df) = dense.rate_and_forwarded(o_id, s_id);
                let (sr, sf) = sparse.rate_and_forwarded(o_id, s_id);
                prop_assert_eq!((dr.map(f64::to_bits), df), (sr.map(f64::to_bits), sf));
                prop_assert_eq!(
                    dense.forwarded_count(o_id, s_id),
                    sparse.forwarded_count(o_id, s_id)
                );
            }
        }
        prop_assert_eq!(dense.observed_pairs(), sparse.observed_pairs());

        // Cross-backing equality in both directions.
        prop_assert_eq!(&dense, &sparse);
        prop_assert_eq!(&sparse, &dense);

        // Serde round trips preserve the observations on both wire
        // forms, and the sparse form's iteration order is deterministic.
        let dense_json = serde_json::to_string(&dense).unwrap();
        let sparse_json = serde_json::to_string(&sparse).unwrap();
        prop_assert_eq!(&sparse_json, &serde_json::to_string(&sparse).unwrap());
        let dense_back: ReputationMatrix = serde_json::from_str(&dense_json).unwrap();
        let sparse_back: ReputationMatrix = serde_json::from_str(&sparse_json).unwrap();
        prop_assert_eq!(&dense_back, &dense);
        prop_assert_eq!(&sparse_back, &sparse);
        prop_assert_eq!(&dense_back, &sparse_back);
        dense_back.check_invariants().unwrap();
        sparse_back.check_invariants().unwrap();
    }
}
