//! Trust levels and the forwarding-rate lookup table (paper Fig. 1b).
//!
//! A node's forwarding rate is mapped onto four discrete trust levels:
//!
//! | forwarding rate | trust level |
//! |-----------------|-------------|
//! | 0.9 – 1.0       | 3 (highest) |
//! | 0.6 – 0.9       | 2           |
//! | 0.3 – 0.6       | 1           |
//! | 0.0 – 0.3       | 0 (lowest)  |
//!
//! The paper's example pins the boundary semantics: "forwarding rate of
//! 0.95 results in the trust level 3", and an unknown node has "a default
//! trust value assigned to 1" (§6.1) with forwarding rate 0.5 for path
//! rating (§3.1) — note 0.5 also maps to level 1, so the two defaults are
//! consistent.

use serde::{Deserialize, Serialize};

/// A discrete trust level, 0 (lowest) to 3 (highest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrustLevel {
    /// Forwarding rate below the first threshold (untrusted).
    T0,
    /// Low trust.
    T1,
    /// Medium trust.
    T2,
    /// High trust.
    T3,
}

impl TrustLevel {
    /// All levels in ascending order.
    pub const ALL: [TrustLevel; 4] = [
        TrustLevel::T0,
        TrustLevel::T1,
        TrustLevel::T2,
        TrustLevel::T3,
    ];

    /// Numeric value 0..=3.
    #[inline]
    pub fn value(self) -> u8 {
        match self {
            TrustLevel::T0 => 0,
            TrustLevel::T1 => 1,
            TrustLevel::T2 => 2,
            TrustLevel::T3 => 3,
        }
    }

    /// Builds a level from its numeric value.
    ///
    /// # Panics
    /// Panics if `v > 3`.
    pub fn from_value(v: u8) -> Self {
        match v {
            0 => TrustLevel::T0,
            1 => TrustLevel::T1,
            2 => TrustLevel::T2,
            3 => TrustLevel::T3,
            _ => panic!("trust level {v} out of range 0..=3"),
        }
    }
}

impl std::fmt::Display for TrustLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TL{}", self.value())
    }
}

/// The forwarding-rate → trust-level lookup table.
///
/// The thresholds are the *lower bounds* of levels 1..=3: a rate `r` maps
/// to the highest level whose lower bound is ≤ `r`. The paper's table
/// (Fig. 1b) is the default; ablation A5 sweeps alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustTable {
    /// Lower bound of T1 (T0 covers everything below it).
    pub t1: f64,
    /// Lower bound of T2.
    pub t2: f64,
    /// Lower bound of T3.
    pub t3: f64,
    /// Level assigned to nodes with no reputation data. The paper assigns
    /// default trust 1 (§6.1).
    pub unknown: TrustLevel,
}

impl Default for TrustTable {
    fn default() -> Self {
        TrustTable::paper()
    }
}

impl TrustTable {
    /// The paper's Fig. 1b table: `[0,0.3) → 0`, `[0.3,0.6) → 1`,
    /// `[0.6,0.9) → 2`, `[0.9,1] → 3`, unknown → 1.
    pub fn paper() -> Self {
        TrustTable {
            t1: 0.3,
            t2: 0.6,
            t3: 0.9,
            unknown: TrustLevel::T1,
        }
    }

    /// Maps a forwarding rate to a trust level.
    ///
    /// # Panics
    /// Panics if `rate` is not within `[0, 1]` (forwarding rates are
    /// counts ratios, so anything else is a bug upstream).
    #[inline]
    pub fn level(&self, rate: f64) -> TrustLevel {
        assert!(
            (0.0..=1.0).contains(&rate),
            "forwarding rate {rate} outside [0,1]"
        );
        if rate >= self.t3 {
            TrustLevel::T3
        } else if rate >= self.t2 {
            TrustLevel::T2
        } else if rate >= self.t1 {
            TrustLevel::T1
        } else {
            TrustLevel::T0
        }
    }

    /// Maps an optional forwarding rate (`None` = unknown node) to a trust
    /// level, applying the unknown-node default.
    #[inline]
    pub fn level_opt(&self, rate: Option<f64>) -> TrustLevel {
        rate.map_or(self.unknown, |r| self.level(r))
    }

    /// Validates the threshold ordering `0 < t1 < t2 < t3 ≤ 1`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.t1 && self.t1 < self.t2 && self.t2 < self.t3 && self.t3 <= 1.0) {
            return Err(format!(
                "trust thresholds must satisfy 0 < t1 < t2 < t3 <= 1, got {} {} {}",
                self.t1, self.t2, self.t3
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_rate_095_is_t3() {
        assert_eq!(TrustTable::paper().level(0.95), TrustLevel::T3);
    }

    #[test]
    fn boundaries_belong_to_the_higher_level() {
        let t = TrustTable::paper();
        assert_eq!(t.level(0.0), TrustLevel::T0);
        assert_eq!(t.level(0.29999), TrustLevel::T0);
        assert_eq!(t.level(0.3), TrustLevel::T1);
        assert_eq!(t.level(0.59999), TrustLevel::T1);
        assert_eq!(t.level(0.6), TrustLevel::T2);
        assert_eq!(t.level(0.89999), TrustLevel::T2);
        assert_eq!(t.level(0.9), TrustLevel::T3);
        assert_eq!(t.level(1.0), TrustLevel::T3);
    }

    #[test]
    fn unknown_default_is_t1_and_matches_rate_half() {
        let t = TrustTable::paper();
        assert_eq!(t.level_opt(None), TrustLevel::T1);
        // The path-rating default rate (0.5) maps to the same level.
        assert_eq!(t.level_opt(Some(0.5)), TrustLevel::T1);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_range_rate_panics() {
        let _ = TrustTable::paper().level(1.5);
    }

    #[test]
    fn level_value_roundtrip() {
        for lvl in TrustLevel::ALL {
            assert_eq!(TrustLevel::from_value(lvl.value()), lvl);
        }
        assert_eq!(TrustLevel::T2.to_string(), "TL2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_value_rejects_4() {
        let _ = TrustLevel::from_value(4);
    }

    #[test]
    fn validate_catches_bad_thresholds() {
        assert!(TrustTable::paper().validate().is_ok());
        let bad = TrustTable {
            t1: 0.6,
            t2: 0.3,
            t3: 0.9,
            unknown: TrustLevel::T1,
        };
        assert!(bad.validate().is_err());
        let bad = TrustTable {
            t1: 0.0,
            ..TrustTable::paper()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn levels_are_ordered() {
        assert!(TrustLevel::T0 < TrustLevel::T1);
        assert!(TrustLevel::T2 < TrustLevel::T3);
    }
}
