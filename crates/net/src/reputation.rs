//! Reputation tables (paper §3.1).
//!
//! Every node keeps, for every other node it has observed, two counters:
//! `ps` — the number of packets *sent to* that node for forwarding, and
//! `pf` — the number of packets that node actually *forwarded*. The
//! forwarding rate `fr = pf / ps` feeds the trust lookup (Fig. 1b) and the
//! `pf` counters feed the activity classification (§3.2).
//!
//! This is the hot data structure of the simulation — every game touches
//! a handful of observer→subject cells — and it is also the structure
//! that decides how large a network can be *instantiated*: reputation in
//! the CONFIDANT/CORE lineage is naturally sparse (a node only holds
//! opinions about nodes it has actually observed), so the backing store
//! adapts to the network size:
//!
//! * **dense** (`n <` [`SPARSE_CROSSOVER`]) — a flat `n × n` matrix of
//!   counter pairs (row = observer, column = subject). No hashing, one
//!   indexed load per lookup; O(n²) memory. This is the paper's scale
//!   (50-node tournaments, ≤ 130-node arenas) and the historical
//!   behavior, bit for bit.
//! * **sparse** (`n >=` [`SPARSE_CROSSOVER`]) — one open-addressed row
//!   per observer holding only the subjects that observer has actually
//!   observed. O(observed pairs) memory, a short linear probe per
//!   lookup, and row capacities that persist across
//!   [`ReputationMatrix::clear`] so warmed-up tournaments stay
//!   allocation-free (tests/zero_alloc.rs).
//!
//! Both backings sit behind one API and are *observationally
//! equivalent* (pinned by a property test in `tests/properties.rs`):
//! the same update sequence produces the same rates, aggregates and
//! serialized counters, so seeded RNG streams never depend on the
//! backing. Two derived caches are maintained incrementally at update
//! time so lookups stay branch- and division-free:
//!
//! * the forwarding **rate** of every observed pair
//!   ([`ReputationMatrix::rate_or_unknown`] — [`UNKNOWN_RATE`] until the
//!   first observation), making [`crate::paths::path_rating`] a pure
//!   multiply loop;
//! * per-observer **row aggregates** (known-subject count and summed
//!   forwarded packets), making the activity average of §3.2
//!   ([`ReputationMatrix::mean_forwarded_of_known`]) O(1) instead of a
//!   row scan per forwarding decision.
//!
//! Only the raw counters are serialized and compared; the caches are
//! rebuilt on deserialization and checked by
//! [`ReputationMatrix::check_invariants`]. Dense matrices serialize in
//! the historical `{n, records}` form; sparse matrices serialize as a
//! `{n, entries}` list sorted by (observer, subject) — O(observed
//! pairs), deterministic, and accepted interchangeably on input.

use crate::NodeId;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Forwarding rate assumed for nodes the rater has no data about (§3.1).
pub const UNKNOWN_RATE: f64 = 0.5;

/// Node count at and above which [`ReputationMatrix::new`] picks the
/// sparse backing. Below it the dense matrix is both smaller (no slot
/// overhead at the paper's near-full occupancy) and faster (no probe);
/// above it O(n²) zero-initialization and memory dominate. 256 keeps
/// every paper-scale arena (≤ 100 normal + 30 CSN) on the historical
/// dense path.
pub const SPARSE_CROSSOVER: usize = 256;

/// One observer→subject reputation record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepRecord {
    /// Packets the subject was asked to forward (observed by this observer).
    pub requests: u32,
    /// Packets the subject actually forwarded.
    pub forwarded: u32,
}

impl RepRecord {
    /// Forwarding rate `pf / ps`; `None` when the subject is unknown
    /// (no observed requests).
    #[inline]
    pub fn rate(&self) -> Option<f64> {
        (self.requests > 0).then(|| f64::from(self.forwarded) / f64::from(self.requests))
    }
}

/// Slot marker for an empty sparse-row cell. Node ids are dense indices
/// well below `u32::MAX`, so the sentinel can never collide with a key.
const EMPTY_KEY: u32 = u32::MAX;

/// Initial slot count of a sparse row on its first insertion.
const ROW_INITIAL_CAPACITY: usize = 8;

/// One observer's open-addressed reputation row: parallel slot arrays
/// (subject key, raw record, cached rate) with power-of-two capacity,
/// linear probing and a ≤ 1/2 load factor. [`SparseRow::clear`] empties
/// the row without releasing capacity, so a matrix that is cleared every
/// generation (§4.4 Step 1) stops allocating once each row has reached
/// its high-water subject count.
#[derive(Debug, Clone, Default)]
struct SparseRow {
    /// Subject id per slot; [`EMPTY_KEY`] marks a free slot.
    keys: Vec<u32>,
    /// Raw counters per slot (parallel to `keys`).
    records: Vec<RepRecord>,
    /// Cached forwarding rate per slot (parallel to `keys`).
    rates: Vec<f64>,
    /// Occupied slots.
    len: usize,
}

impl SparseRow {
    /// Preferred slot of `key` for the current capacity (Fibonacci
    /// hashing: multiply, take high bits, mask).
    #[inline]
    fn home_slot(key: u32, mask: usize) -> usize {
        ((u64::from(key).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & mask
    }

    /// The slot holding `key`, or `None`.
    #[inline]
    fn find(&self, key: u32) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut slot = Self::home_slot(key, mask);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(slot);
            }
            if k == EMPTY_KEY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The slot holding `key`, inserting a fresh default cell (and
    /// growing the row) when absent.
    fn find_or_insert(&mut self, key: u32) -> usize {
        if self.keys.is_empty() || (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = Self::home_slot(key, mask);
        loop {
            let k = self.keys[slot];
            if k == key {
                return slot;
            }
            if k == EMPTY_KEY {
                self.keys[slot] = key;
                self.records[slot] = RepRecord::default();
                self.rates[slot] = UNKNOWN_RATE;
                self.len += 1;
                return slot;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the slot count (or allocates the initial block) and
    /// rehashes every occupied slot.
    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(ROW_INITIAL_CAPACITY);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let old_records = std::mem::replace(&mut self.records, vec![RepRecord::default(); new_cap]);
        let old_rates = std::mem::replace(&mut self.rates, vec![UNKNOWN_RATE; new_cap]);
        let mask = new_cap - 1;
        for (i, key) in old_keys.into_iter().enumerate() {
            if key == EMPTY_KEY {
                continue;
            }
            let mut slot = Self::home_slot(key, mask);
            while self.keys[slot] != EMPTY_KEY {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = key;
            self.records[slot] = old_records[i];
            self.rates[slot] = old_rates[i];
        }
    }

    /// Empties the row, keeping its capacity.
    fn clear(&mut self) {
        self.keys.fill(EMPTY_KEY);
        self.len = 0;
    }

    /// Removes `key`'s cell (backward-shift deletion, so later probes
    /// in the same cluster stay reachable), returning its record.
    fn remove(&mut self, key: u32) -> Option<RepRecord> {
        let mut slot = self.find(key)?;
        let removed = self.records[slot];
        let mask = self.keys.len() - 1;
        self.keys[slot] = EMPTY_KEY;
        let mut next = (slot + 1) & mask;
        while self.keys[next] != EMPTY_KEY {
            let home = Self::home_slot(self.keys[next], mask);
            // Shift `next` into the vacated slot unless its home lies
            // cyclically inside (slot, next] — then it is already as
            // close to home as the probe sequence allows.
            let in_cluster_tail = if slot <= next {
                home > slot && home <= next
            } else {
                home > slot || home <= next
            };
            if !in_cluster_tail {
                self.keys[slot] = self.keys[next];
                self.records[slot] = self.records[next];
                self.rates[slot] = self.rates[next];
                self.keys[next] = EMPTY_KEY;
                slot = next;
            }
            next = (next + 1) & mask;
        }
        self.len -= 1;
        Some(removed)
    }

    /// Occupied `(subject, record, rate)` cells in subject order — the
    /// deterministic iteration order used by serialization and the
    /// invariant checker (slot order depends on insertion history).
    fn sorted_cells(&self) -> Vec<(u32, RepRecord, f64)> {
        let mut cells: Vec<(u32, RepRecord, f64)> = self
            .keys
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k != EMPTY_KEY)
            .map(|(i, &k)| (k, self.records[i], self.rates[i]))
            .collect();
        cells.sort_unstable_by_key(|&(s, _, _)| s);
        cells
    }

    /// Heap bytes held by the row's slot arrays.
    fn resident_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u32>()
            + self.records.capacity() * std::mem::size_of::<RepRecord>()
            + self.rates.capacity() * std::mem::size_of::<f64>()
    }
}

/// The storage behind a [`ReputationMatrix`]; see the module docs for
/// the crossover rule.
#[derive(Debug, Clone)]
enum Backing {
    /// Row-major `n × n` records + cached rates; the diagonal stays zero
    /// (nodes never rate themselves).
    Dense {
        /// Raw counters, `observer * n + subject`.
        records: Vec<RepRecord>,
        /// Cached forwarding rate per record ([`UNKNOWN_RATE`] while
        /// unknown), maintained on every counter update.
        rates: Vec<f64>,
    },
    /// One open-addressed row per observer.
    Sparse(Vec<SparseRow>),
}

/// Observer × subject reputation store for `n` nodes (dense below
/// [`SPARSE_CROSSOVER`], sparse at and above it).
#[derive(Debug, Clone)]
pub struct ReputationMatrix {
    n: usize,
    backing: Backing,
    /// Per-observer count of known subjects (`requests > 0`).
    row_known: Vec<u32>,
    /// Per-observer sum of `forwarded` over known subjects (the
    /// numerator of §3.2's activity average `av`).
    row_forwarded: Vec<u64>,
}

impl ReputationMatrix {
    /// Creates an all-unknown matrix for `n` nodes, choosing the backing
    /// by the [`SPARSE_CROSSOVER`] rule.
    pub fn new(n: usize) -> Self {
        if n >= SPARSE_CROSSOVER {
            Self::new_sparse(n)
        } else {
            Self::new_dense(n)
        }
    }

    /// Creates an all-unknown matrix on the dense backing regardless of
    /// `n` (tests, benchmarks, and memory comparisons).
    pub fn new_dense(n: usize) -> Self {
        ReputationMatrix {
            n,
            backing: Backing::Dense {
                records: vec![RepRecord::default(); n * n],
                rates: vec![UNKNOWN_RATE; n * n],
            },
            row_known: vec![0; n],
            row_forwarded: vec![0; n],
        }
    }

    /// Creates an all-unknown matrix on the sparse backing regardless of
    /// `n` (tests, benchmarks, and memory comparisons).
    pub fn new_sparse(n: usize) -> Self {
        ReputationMatrix {
            n,
            backing: Backing::Sparse(vec![SparseRow::default(); n]),
            row_known: vec![0; n],
            row_forwarded: vec![0; n],
        }
    }

    /// `true` when the matrix uses the sparse (O(observed-pairs))
    /// backing.
    pub fn is_sparse(&self) -> bool {
        matches!(self.backing, Backing::Sparse(_))
    }

    /// Heap bytes resident in the backing store and the row aggregates —
    /// the number PERFORMANCE.md's scaling table reports. Dense cost is
    /// O(n²) up front; sparse cost is O(observed pairs) (times a small
    /// open-addressing factor) plus O(n) row headers.
    pub fn resident_bytes(&self) -> usize {
        let backing = match &self.backing {
            Backing::Dense { records, rates } => {
                records.capacity() * std::mem::size_of::<RepRecord>()
                    + rates.capacity() * std::mem::size_of::<f64>()
            }
            Backing::Sparse(rows) => {
                rows.capacity() * std::mem::size_of::<SparseRow>()
                    + rows.iter().map(SparseRow::resident_bytes).sum::<usize>()
            }
        };
        backing
            + self.row_known.capacity() * std::mem::size_of::<u32>()
            + self.row_forwarded.capacity() * std::mem::size_of::<u64>()
    }

    /// Number of observer→subject pairs with at least one observation.
    pub fn observed_pairs(&self) -> usize {
        self.row_known.iter().map(|&k| k as usize).sum()
    }

    /// Rebuilds a matrix from raw dense counters (the historical
    /// serialized form), recomputing every cache.
    fn from_parts(n: usize, records: Vec<RepRecord>) -> Result<Self, String> {
        if records.len() != n * n {
            return Err(format!(
                "reputation matrix for {n} nodes needs {} records, got {}",
                n * n,
                records.len()
            ));
        }
        let mut m = Self::new(n);
        for o in 0..n {
            for s in 0..n {
                let r = records[o * n + s];
                if r != RepRecord::default() {
                    m.set_raw(o, s, r);
                }
            }
        }
        Ok(m)
    }

    /// Rebuilds a matrix from a sparse entry list (the sparse serialized
    /// form), recomputing every cache. Duplicate (observer, subject)
    /// entries accumulate, mirroring repeated observations.
    fn from_entries(n: usize, entries: Vec<EntryRepr>) -> Result<Self, String> {
        let mut m = Self::new(n);
        for e in entries {
            let (o, s) = (e.observer as usize, e.subject as usize);
            if o >= n || s >= n {
                return Err(format!("entry n{o} -> n{s} outside a {n}-node matrix"));
            }
            let mut r = m.record_raw(o, s);
            r.requests += e.requests;
            r.forwarded += e.forwarded;
            if r != RepRecord::default() {
                m.set_raw(o, s, r);
            }
        }
        Ok(m)
    }

    /// Overwrites the raw cell (o, s) and repairs the caches for it —
    /// deliberately permissive (no `pf <= ps` or diagonal validation) so
    /// deserialization can materialize corrupt state for
    /// [`ReputationMatrix::check_invariants`] to reject.
    fn set_raw(&mut self, o: usize, s: usize, r: RepRecord) {
        let old = self.record_raw(o, s);
        if old.requests > 0 {
            self.row_known[o] -= 1;
            self.row_forwarded[o] -= u64::from(old.forwarded);
        }
        if r.requests > 0 {
            self.row_known[o] += 1;
            self.row_forwarded[o] += u64::from(r.forwarded);
        }
        let (record, rate) = Self::cell_mut(&mut self.backing, self.n, o, s);
        *record = r;
        *rate = r.rate().unwrap_or(UNKNOWN_RATE);
    }

    /// Raw record at (o, s) by index (default when never touched).
    #[inline]
    fn record_raw(&self, o: usize, s: usize) -> RepRecord {
        match &self.backing {
            Backing::Dense { records, .. } => records[o * self.n + s],
            Backing::Sparse(rows) => rows[o]
                .find(s as u32)
                .map(|slot| rows[o].records[slot])
                .unwrap_or_default(),
        }
    }

    /// Mutable (record, cached rate) refs for cell (o, s), materializing
    /// a sparse cell when absent. An associated function of the backing
    /// so callers can keep the row aggregates independently borrowed.
    #[inline]
    fn cell_mut(backing: &mut Backing, n: usize, o: usize, s: usize) -> (&mut RepRecord, &mut f64) {
        match backing {
            Backing::Dense { records, rates } => {
                let i = o * n + s;
                (&mut records[i], &mut rates[i])
            }
            Backing::Sparse(rows) => {
                let row = &mut rows[o];
                let slot = row.find_or_insert(s as u32);
                (&mut row.records[slot], &mut row.rates[slot])
            }
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn idx(&self, observer: NodeId, subject: NodeId) -> (usize, usize) {
        let (o, s) = (observer.index(), subject.index());
        debug_assert!(o < self.n && s < self.n, "node id out of range");
        (o, s)
    }

    /// The record `observer` holds about `subject`.
    #[inline]
    pub fn record(&self, observer: NodeId, subject: NodeId) -> RepRecord {
        let (o, s) = self.idx(observer, subject);
        self.record_raw(o, s)
    }

    /// Records that `observer` saw `subject` forward a packet
    /// (`ps += 1`, `pf += 1`).
    ///
    /// # Panics
    /// Panics (debug) if observer == subject — nodes never rate themselves.
    #[inline]
    pub fn record_forward(&mut self, observer: NodeId, subject: NodeId) {
        debug_assert_ne!(observer, subject, "self-rating is a logic error");
        let (o, s) = self.idx(observer, subject);
        let (r, rate) = Self::cell_mut(&mut self.backing, self.n, o, s);
        if r.requests == 0 {
            self.row_known[o] += 1;
        }
        r.requests += 1;
        r.forwarded += 1;
        *rate = f64::from(r.forwarded) / f64::from(r.requests);
        self.row_forwarded[o] += 1;
    }

    /// Records that `observer` saw (or was told about) `subject`
    /// discarding a packet (`ps += 1`).
    #[inline]
    pub fn record_drop(&mut self, observer: NodeId, subject: NodeId) {
        debug_assert_ne!(observer, subject, "self-rating is a logic error");
        let (o, s) = self.idx(observer, subject);
        let (r, rate) = Self::cell_mut(&mut self.backing, self.n, o, s);
        if r.requests == 0 {
            self.row_known[o] += 1;
        }
        r.requests += 1;
        *rate = f64::from(r.forwarded) / f64::from(r.requests);
    }

    /// Forwarding rate of `subject` as known by `observer`; `None` when
    /// unknown.
    #[inline]
    pub fn rate(&self, observer: NodeId, subject: NodeId) -> Option<f64> {
        let (o, s) = self.idx(observer, subject);
        match &self.backing {
            Backing::Dense { records, rates } => {
                let i = o * self.n + s;
                (records[i].requests > 0).then(|| rates[i])
            }
            Backing::Sparse(rows) => {
                let row = &rows[o];
                row.find(s as u32)
                    .filter(|&slot| row.records[slot].requests > 0)
                    .map(|slot| row.rates[slot])
            }
        }
    }

    /// Forwarding rate of `subject` as known by `observer`, with
    /// [`UNKNOWN_RATE`] standing in for unknown subjects — the hot-path
    /// lookup behind [`crate::paths::path_rating`]: one cached load on
    /// the dense backing, one short probe on the sparse one; no
    /// division either way.
    #[inline]
    pub fn rate_or_unknown(&self, observer: NodeId, subject: NodeId) -> f64 {
        let (o, s) = self.idx(observer, subject);
        match &self.backing {
            Backing::Dense { rates, .. } => rates[o * self.n + s],
            Backing::Sparse(rows) => {
                let row = &rows[o];
                match row.find(s as u32) {
                    Some(slot) => row.rates[slot],
                    None => UNKNOWN_RATE,
                }
            }
        }
    }

    /// Everything a forwarding decision needs about `subject` in one
    /// cell access: the rate (`None` when unknown) and the observed
    /// forwarded-packet count (§3.2's activity datum).
    #[inline]
    pub fn rate_and_forwarded(&self, observer: NodeId, subject: NodeId) -> (Option<f64>, u32) {
        let (o, s) = self.idx(observer, subject);
        match &self.backing {
            Backing::Dense { records, rates } => {
                let i = o * self.n + s;
                let rec = records[i];
                ((rec.requests > 0).then(|| rates[i]), rec.forwarded)
            }
            Backing::Sparse(rows) => {
                let row = &rows[o];
                match row.find(s as u32) {
                    Some(slot) => {
                        let rec = row.records[slot];
                        ((rec.requests > 0).then(|| row.rates[slot]), rec.forwarded)
                    }
                    None => (None, 0),
                }
            }
        }
    }

    /// `true` when `observer` has at least one observation about
    /// `subject`.
    #[inline]
    pub fn knows(&self, observer: NodeId, subject: NodeId) -> bool {
        self.record(observer, subject).requests > 0
    }

    /// Number of packets `observer` knows `subject` to have forwarded
    /// (the activity datum of §3.2).
    #[inline]
    pub fn forwarded_count(&self, observer: NodeId, subject: NodeId) -> u32 {
        self.record(observer, subject).forwarded
    }

    /// Mean forwarded-packet count over all nodes known to `observer`
    /// (the `av` of §3.2); `None` when the observer knows nobody.
    ///
    /// O(1): reads the incrementally maintained row aggregates instead
    /// of scanning the observer's row per forwarding decision.
    #[inline]
    pub fn mean_forwarded_of_known(&self, observer: NodeId) -> Option<f64> {
        let o = observer.index();
        let known = u64::from(self.row_known[o]);
        (known > 0).then(|| self.row_forwarded[o] as f64 / known as f64)
    }

    /// Number of subjects known to `observer`.
    #[inline]
    pub fn known_count(&self, observer: NodeId) -> usize {
        self.row_known[observer.index()] as usize
    }

    /// Merges externally supplied observation counts into
    /// `observer`'s record about `subject` — the entry point for
    /// second-hand reputation ([`crate::gossip`]).
    ///
    /// # Panics
    /// Panics if `forwarded > requests` (would corrupt the `pf <= ps`
    /// invariant) or (debug) if observer == subject.
    pub fn absorb(&mut self, observer: NodeId, subject: NodeId, requests: u32, forwarded: u32) {
        assert!(forwarded <= requests, "absorb would set pf > ps");
        debug_assert_ne!(observer, subject, "self-rating is a logic error");
        if requests == 0 {
            // Nothing observed, nothing to merge (and no reason to
            // materialize a sparse cell).
            return;
        }
        let (o, s) = self.idx(observer, subject);
        let (r, rate) = Self::cell_mut(&mut self.backing, self.n, o, s);
        if r.requests == 0 {
            self.row_known[o] += 1;
        }
        r.requests += requests;
        r.forwarded += forwarded;
        *rate = f64::from(r.forwarded) / f64::from(r.requests);
        self.row_forwarded[o] += u64::from(forwarded);
    }

    /// Erases every observation *about* `subject`, as if the node had
    /// re-entered the network under a fresh identity — the whitewashing
    /// attack of the CONFIDANT literature. Each observer's record of
    /// `subject` reverts to unknown; observations the subject holds
    /// about others are untouched (a rejoining node keeps its own
    /// memory in this model, only its public history resets).
    pub fn forget_subject(&mut self, subject: NodeId) {
        let s = subject.index();
        debug_assert!(s < self.n, "node id out of range");
        for o in 0..self.n {
            let old = match &mut self.backing {
                Backing::Dense { records, rates } => {
                    let i = o * self.n + s;
                    let old = records[i];
                    records[i] = RepRecord::default();
                    rates[i] = UNKNOWN_RATE;
                    old
                }
                Backing::Sparse(rows) => rows[o].remove(s as u32).unwrap_or_default(),
            };
            if old.requests > 0 {
                self.row_known[o] -= 1;
                self.row_forwarded[o] -= u64::from(old.forwarded);
            }
        }
    }

    /// Resets every record to unknown. Called at the start of each
    /// generation's evaluation (§4.4, Step 1: "Clear the memory
    /// (reputation/activity data) of all N players"). Sparse rows keep
    /// their capacity, so steady-state generations never reallocate.
    pub fn clear(&mut self) {
        match &mut self.backing {
            Backing::Dense { records, rates } => {
                records.fill(RepRecord::default());
                rates.fill(UNKNOWN_RATE);
            }
            Backing::Sparse(rows) => {
                for row in rows {
                    row.clear();
                }
            }
        }
        self.row_known.fill(0);
        self.row_forwarded.fill(0);
    }

    /// Occupied `(observer, subject, record)` cells in (observer,
    /// subject) order — the deterministic iteration behind the sparse
    /// serialized form and cross-backing equality. Dense matrices report
    /// only non-default cells, so observationally equal matrices yield
    /// identical lists regardless of backing.
    fn sorted_entries(&self) -> Vec<EntryRepr> {
        let mut out = Vec::new();
        match &self.backing {
            Backing::Dense { records, .. } => {
                for o in 0..self.n {
                    for s in 0..self.n {
                        let r = records[o * self.n + s];
                        if r != RepRecord::default() {
                            out.push(EntryRepr {
                                observer: o as u32,
                                subject: s as u32,
                                requests: r.requests,
                                forwarded: r.forwarded,
                            });
                        }
                    }
                }
            }
            Backing::Sparse(rows) => {
                for (o, row) in rows.iter().enumerate() {
                    for (s, r, _) in row.sorted_cells() {
                        if r != RepRecord::default() {
                            out.push(EntryRepr {
                                observer: o as u32,
                                subject: s,
                                requests: r.requests,
                                forwarded: r.forwarded,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Checks the structural invariants (used by tests and debug builds):
    /// `pf ≤ ps` everywhere, an all-zero diagonal, derived caches
    /// (rates, row aggregates) bit-identical to a from-scratch rebuild,
    /// and — on the sparse backing — well-formed rows (no duplicate or
    /// out-of-range keys, occupancy counts in sync).
    pub fn check_invariants(&self) -> Result<(), String> {
        if let Backing::Sparse(rows) = &self.backing {
            for (o, row) in rows.iter().enumerate() {
                let cells = row.sorted_cells();
                if cells.len() != row.len {
                    return Err(format!(
                        "row n{o} occupancy {} disagrees with its len {}",
                        cells.len(),
                        row.len
                    ));
                }
                for window in cells.windows(2) {
                    if window[0].0 == window[1].0 {
                        return Err(format!("duplicate key n{} in row n{o}", window[0].0));
                    }
                }
                for &(s, r, _) in &cells {
                    if s as usize >= self.n {
                        return Err(format!("row n{o} holds out-of-range subject n{s}"));
                    }
                    if r == RepRecord::default() {
                        return Err(format!("row n{o} holds an empty cell for subject n{s}"));
                    }
                }
            }
        }
        for o in 0..self.n {
            let (mut known, mut forwarded) = (0u32, 0u64);
            for s in 0..self.n {
                let r = self.record_raw(o, s);
                if r.forwarded > r.requests {
                    return Err(format!("pf > ps for observer n{o} subject n{s}: {r:?}"));
                }
                if o == s && r != RepRecord::default() {
                    return Err(format!("non-empty self-record at n{o}"));
                }
                let expected_rate = if r.requests > 0 {
                    known += 1;
                    forwarded += u64::from(r.forwarded);
                    f64::from(r.forwarded) / f64::from(r.requests)
                } else {
                    UNKNOWN_RATE
                };
                let cached = self.rate_or_unknown(NodeId::from(o), NodeId::from(s));
                if cached.to_bits() != expected_rate.to_bits() {
                    return Err(format!(
                        "stale rate cache for observer n{o} subject n{s}: {cached} vs {expected_rate}"
                    ));
                }
            }
            if self.row_known[o] != known || self.row_forwarded[o] != forwarded {
                return Err(format!(
                    "stale row aggregates for observer n{o}: known {} vs {known}, forwarded {} vs {forwarded}",
                    self.row_known[o], self.row_forwarded[o]
                ));
            }
        }
        Ok(())
    }
}

impl PartialEq for ReputationMatrix {
    /// Counters are the state; the caches (and the backing choice) are
    /// derived from them. Two matrices holding the same observations are
    /// equal whether stored densely or sparsely.
    fn eq(&self, other: &Self) -> bool {
        if self.n != other.n {
            return false;
        }
        match (&self.backing, &other.backing) {
            (Backing::Dense { records: a, .. }, Backing::Dense { records: b, .. }) => a == b,
            _ => self.sorted_entries() == other.sorted_entries(),
        }
    }
}

impl Eq for ReputationMatrix {}

/// One non-empty cell of the sparse serialized form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct EntryRepr {
    /// Observer node id.
    observer: u32,
    /// Subject node id.
    subject: u32,
    /// Raw `ps` counter.
    requests: u32,
    /// Raw `pf` counter.
    forwarded: u32,
}

/// The dense serialized shape (the historical format): raw counters
/// only, caches rebuilt on deserialization.
#[derive(Serialize)]
struct DenseRepr {
    n: usize,
    records: Vec<RepRecord>,
}

/// The sparse serialized shape: one entry per observed pair, sorted by
/// (observer, subject).
#[derive(Serialize)]
struct SparseRepr {
    n: usize,
    entries: Vec<EntryRepr>,
}

/// The union the deserializer accepts: either `records` (dense) or
/// `entries` (sparse) must be present.
#[derive(Deserialize)]
struct MatrixRepr {
    n: usize,
    records: Option<Vec<RepRecord>>,
    entries: Option<Vec<EntryRepr>>,
}

impl Serialize for ReputationMatrix {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match &self.backing {
            Backing::Dense { records, .. } => DenseRepr {
                n: self.n,
                records: records.clone(),
            }
            .serialize(serializer),
            Backing::Sparse(_) => SparseRepr {
                n: self.n,
                entries: self.sorted_entries(),
            }
            .serialize(serializer),
        }
    }
}

impl<'de> Deserialize<'de> for ReputationMatrix {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = MatrixRepr::deserialize(deserializer)?;
        let matrix = match (repr.records, repr.entries) {
            (Some(records), None) => ReputationMatrix::from_parts(repr.n, records),
            (None, Some(entries)) => ReputationMatrix::from_entries(repr.n, entries),
            (Some(_), Some(_)) => Err("matrix has both records and entries".into()),
            (None, None) => Err("matrix needs records (dense) or entries (sparse)".into()),
        };
        matrix.map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> NodeId {
        NodeId(v)
    }

    /// Every matrix test runs against both backings.
    fn both(n: usize) -> [ReputationMatrix; 2] {
        [
            ReputationMatrix::new_dense(n),
            ReputationMatrix::new_sparse(n),
        ]
    }

    #[test]
    fn fresh_matrix_is_all_unknown() {
        for m in both(4) {
            assert_eq!(m.len(), 4);
            assert!(!m.knows(id(0), id(1)));
            assert_eq!(m.rate(id(0), id(1)), None);
            assert_eq!(m.rate_or_unknown(id(0), id(1)), UNKNOWN_RATE);
            assert_eq!(m.mean_forwarded_of_known(id(0)), None);
            assert_eq!(m.known_count(id(2)), 0);
            assert_eq!(m.observed_pairs(), 0);
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn crossover_selects_the_backing() {
        assert!(!ReputationMatrix::new(SPARSE_CROSSOVER - 1).is_sparse());
        assert!(ReputationMatrix::new(SPARSE_CROSSOVER).is_sparse());
        assert!(!ReputationMatrix::new_dense(1000).is_sparse());
        assert!(ReputationMatrix::new_sparse(4).is_sparse());
    }

    #[test]
    fn forwarding_rate_matches_fig1b_example() {
        // Fig 1b: forwarding rate 0.95 -> 19 of 20 packets forwarded.
        for mut m in both(2) {
            for _ in 0..19 {
                m.record_forward(id(1), id(0));
            }
            m.record_drop(id(1), id(0));
            assert!((m.rate(id(1), id(0)).unwrap() - 0.95).abs() < 1e-12);
            assert!(m.knows(id(1), id(0)));
            assert!(!m.knows(id(0), id(1)), "reputation is directional");
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn drops_only_give_rate_zero() {
        for mut m in both(2) {
            m.record_drop(id(0), id(1));
            m.record_drop(id(0), id(1));
            assert_eq!(m.rate(id(0), id(1)), Some(0.0));
            assert_eq!(m.forwarded_count(id(0), id(1)), 0);
        }
    }

    #[test]
    fn mean_forwarded_counts_only_known_nodes() {
        for mut m in both(4) {
            // Node 0 knows node 1 (3 forwards) and node 2 (1 forward, 1
            // drop); node 3 is unknown.
            for _ in 0..3 {
                m.record_forward(id(0), id(1));
            }
            m.record_forward(id(0), id(2));
            m.record_drop(id(0), id(2));
            assert_eq!(m.mean_forwarded_of_known(id(0)), Some(2.0));
            assert_eq!(m.known_count(id(0)), 2);
            assert_eq!(m.observed_pairs(), 2);
        }
    }

    #[test]
    fn forget_subject_erases_only_that_column() {
        for mut m in both(4) {
            m.record_forward(id(0), id(1));
            m.record_drop(id(0), id(1));
            m.record_forward(id(2), id(1));
            m.record_forward(id(0), id(3));
            m.forget_subject(id(1));
            assert!(!m.knows(id(0), id(1)));
            assert!(!m.knows(id(2), id(1)));
            assert_eq!(m.rate(id(0), id(1)), None);
            assert_eq!(m.rate_or_unknown(id(2), id(1)), UNKNOWN_RATE);
            // Unrelated observations survive, aggregates stay in sync.
            assert!(m.knows(id(0), id(3)));
            assert_eq!(m.known_count(id(0)), 1);
            assert_eq!(m.mean_forwarded_of_known(id(0)), Some(1.0));
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn forget_subject_of_unknown_node_is_a_no_op() {
        for mut m in both(3) {
            m.record_forward(id(0), id(1));
            let before = m.clone();
            m.forget_subject(id(2));
            assert_eq!(m, before);
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn sparse_remove_keeps_probe_clusters_reachable() {
        // Fill a sparse row well past several grow cycles, then delete
        // every other subject and verify the survivors are all still
        // findable (backward-shift deletion must not orphan cluster
        // tails) and the invariant checker stays green.
        let n = 64;
        let mut m = ReputationMatrix::new_sparse(n);
        for s in 1..n {
            for _ in 0..s {
                m.record_forward(id(0), id(s as u32));
            }
        }
        for s in (1..n).step_by(2) {
            m.forget_subject(id(s as u32));
        }
        for s in 1..n {
            let rec = m.record(id(0), id(s as u32));
            if s % 2 == 1 {
                assert_eq!(rec, RepRecord::default(), "n{s} should be forgotten");
            } else {
                assert_eq!(rec.forwarded, s as u32, "n{s} lost its record");
            }
        }
        assert_eq!(m.known_count(id(0)), (n - 1) / 2);
        m.check_invariants().unwrap();
    }

    #[test]
    fn clear_resets_everything() {
        for mut m in both(3) {
            m.record_forward(id(0), id(1));
            m.record_drop(id(2), id(1));
            m.clear();
            assert_eq!(m, ReputationMatrix::new(3));
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn sparse_clear_keeps_capacity() {
        let mut m = ReputationMatrix::new_sparse(16);
        for s in 1..16u32 {
            m.record_forward(id(0), id(s));
        }
        let warm = m.resident_bytes();
        m.clear();
        assert_eq!(m.resident_bytes(), warm, "clear must not shrink rows");
        assert_eq!(m.observed_pairs(), 0);
    }

    #[test]
    fn invariant_checker_catches_corruption() {
        let mut m = ReputationMatrix::new(2);
        m.record_forward(id(0), id(1));
        assert!(m.check_invariants().is_ok());
        // Corrupt: forwarded > requests.
        let mut bad = m.clone();
        // Reach in through serde to simulate corruption without exposing
        // mutable internals.
        let mut json: serde_json::Value = serde_json::to_value(&bad).unwrap();
        json["records"][1]["forwarded"] = serde_json::json!(5);
        bad = serde_json::from_value(json).unwrap();
        assert!(bad.check_invariants().is_err());
    }

    #[test]
    fn sparse_invariant_checker_catches_corruption() {
        let mut m = ReputationMatrix::new_sparse(2);
        m.record_forward(id(0), id(1));
        let mut json: serde_json::Value = serde_json::to_value(&m).unwrap();
        json["entries"][0]["forwarded"] = serde_json::json!(5);
        let bad: ReputationMatrix = serde_json::from_value(json).unwrap();
        assert!(bad.check_invariants().unwrap_err().contains("pf > ps"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "self-rating")]
    fn self_rating_panics_in_debug() {
        let mut m = ReputationMatrix::new(2);
        m.record_forward(id(1), id(1));
    }

    #[test]
    fn serde_roundtrip() {
        for mut m in both(2) {
            m.record_forward(id(0), id(1));
            let json = serde_json::to_string(&m).unwrap();
            let back: ReputationMatrix = serde_json::from_str(&json).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn dense_wire_format_is_unchanged() {
        // The historical `{n, records}` shape, byte for byte.
        let mut m = ReputationMatrix::new_dense(2);
        m.record_forward(id(0), id(1));
        assert_eq!(
            serde_json::to_string(&m).unwrap(),
            "{\"n\":2,\"records\":[{\"requests\":0,\"forwarded\":0},\
             {\"requests\":1,\"forwarded\":1},{\"requests\":0,\"forwarded\":0},\
             {\"requests\":0,\"forwarded\":0}]}"
        );
    }

    #[test]
    fn sparse_wire_format_is_o_observed_pairs() {
        let mut m = ReputationMatrix::new_sparse(1000);
        m.record_forward(id(999), id(3));
        m.record_drop(id(2), id(7));
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(
            json,
            "{\"n\":1000,\"entries\":[\
             {\"observer\":2,\"subject\":7,\"requests\":1,\"forwarded\":0},\
             {\"observer\":999,\"subject\":3,\"requests\":1,\"forwarded\":1}]}"
        );
        let back: ReputationMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        assert!(
            back.is_sparse(),
            "n=1000 deserializes onto the sparse backing"
        );
    }

    #[test]
    fn backings_deserialize_interchangeably() {
        // A dense wire form with sparse-scale n lands on the sparse
        // backing (and vice versa) without changing the observations.
        let mut small_sparse = ReputationMatrix::new_sparse(3);
        small_sparse.record_forward(id(0), id(2));
        let json = serde_json::to_string(&small_sparse).unwrap();
        let back: ReputationMatrix = serde_json::from_str(&json).unwrap();
        assert!(!back.is_sparse(), "n=3 lands on the dense backing");
        assert_eq!(back, small_sparse);
        back.check_invariants().unwrap();
    }

    #[test]
    fn cross_backing_equality_and_serde_agree() {
        let mut d = ReputationMatrix::new_dense(6);
        let mut s = ReputationMatrix::new_sparse(6);
        for m in [&mut d, &mut s] {
            m.record_forward(id(1), id(4));
            m.record_drop(id(1), id(2));
            m.absorb(id(5), id(0), 4, 3);
        }
        assert_eq!(d, s);
        assert_eq!(s, d);
        // And their canonical entry lists match, so any consumer that
        // serializes both sees the same observations.
        let via_sparse: ReputationMatrix =
            serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(via_sparse, d);
    }

    #[test]
    fn absorb_zero_is_a_no_op() {
        for mut m in both(3) {
            m.absorb(id(0), id(1), 0, 0);
            assert!(!m.knows(id(0), id(1)));
            assert_eq!(m, ReputationMatrix::new(3));
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn sparse_rows_survive_growth() {
        // Push one row through several capacity doublings and verify
        // every cell survives the rehashes.
        let mut m = ReputationMatrix::new_sparse(200);
        for s in 1..200u32 {
            for _ in 0..(s % 5) {
                m.record_forward(id(0), id(s));
            }
            if s % 3 == 0 {
                m.record_drop(id(0), id(s));
            }
        }
        m.check_invariants().unwrap();
        for s in 1..200u32 {
            let r = m.record(id(0), id(s));
            assert_eq!(r.forwarded, s % 5, "subject {s}");
            assert_eq!(r.requests, s % 5 + u32::from(s % 3 == 0), "subject {s}");
        }
    }

    #[test]
    fn sparse_memory_stays_o_observed_pairs() {
        let sparse_empty = ReputationMatrix::new_sparse(1000).resident_bytes();
        let dense = ReputationMatrix::new_dense(1000).resident_bytes();
        assert!(
            sparse_empty * 100 < dense,
            "empty sparse {sparse_empty}B vs dense {dense}B"
        );
        // Paper-style traffic: each of the 1000 observers knows ~50
        // subjects.
        let mut m = ReputationMatrix::new_sparse(1000);
        for o in 0..1000u32 {
            for k in 1..=50u32 {
                m.record_forward(id(o), id((o + k) % 1000));
            }
        }
        let loaded = m.resident_bytes();
        assert!(
            loaded * 5 < dense,
            "50-of-1000 occupancy sparse {loaded}B vs dense {dense}B"
        );
    }
}
