//! Reputation tables (paper §3.1).
//!
//! Every node keeps, for every other node it has observed, two counters:
//! `ps` — the number of packets *sent to* that node for forwarding, and
//! `pf` — the number of packets that node actually *forwarded*. The
//! forwarding rate `fr = pf / ps` feeds the trust lookup (Fig. 1b) and the
//! `pf` counters feed the activity classification (§3.2).
//!
//! Because node ids are dense (`0..n`), the whole network's reputation
//! state is a flat `n × n` matrix of counter pairs: row = observer,
//! column = subject. This is the hot data structure of the simulation —
//! every game touches up to ~10 × 9 entries — so it avoids hashing
//! entirely, and it maintains two derived caches *incrementally* at
//! update time so lookups stay branch- and division-free:
//!
//! * the forwarding **rate** of every pair ([`ReputationMatrix::rate_or_unknown`]
//!   — [`UNKNOWN_RATE`] until the first observation), making
//!   [`crate::paths::path_rating`] a pure multiply loop;
//! * per-observer **row aggregates** (known-subject count and summed
//!   forwarded packets), making the activity average of §3.2
//!   ([`ReputationMatrix::mean_forwarded_of_known`]) O(1) instead of an
//!   O(n) row scan per forwarding decision.
//!
//! Only the raw counters are serialized and compared; the caches are
//! rebuilt on deserialization and checked by
//! [`ReputationMatrix::check_invariants`].

use crate::NodeId;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Forwarding rate assumed for nodes the rater has no data about (§3.1).
pub const UNKNOWN_RATE: f64 = 0.5;

/// One observer→subject reputation record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepRecord {
    /// Packets the subject was asked to forward (observed by this observer).
    pub requests: u32,
    /// Packets the subject actually forwarded.
    pub forwarded: u32,
}

impl RepRecord {
    /// Forwarding rate `pf / ps`; `None` when the subject is unknown
    /// (no observed requests).
    #[inline]
    pub fn rate(&self) -> Option<f64> {
        (self.requests > 0).then(|| f64::from(self.forwarded) / f64::from(self.requests))
    }
}

/// Dense observer × subject reputation matrix for `n` nodes.
#[derive(Debug, Clone)]
pub struct ReputationMatrix {
    n: usize,
    /// Row-major `n × n` records; the diagonal stays zero (nodes never
    /// rate themselves).
    records: Vec<RepRecord>,
    /// Cached forwarding rate per record ([`UNKNOWN_RATE`] while
    /// unknown), maintained on every counter update.
    rates: Vec<f64>,
    /// Per-observer count of known subjects (`requests > 0`).
    row_known: Vec<u32>,
    /// Per-observer sum of `forwarded` over known subjects (the
    /// numerator of §3.2's activity average `av`).
    row_forwarded: Vec<u64>,
}

impl ReputationMatrix {
    /// Creates an all-unknown matrix for `n` nodes.
    pub fn new(n: usize) -> Self {
        ReputationMatrix {
            n,
            records: vec![RepRecord::default(); n * n],
            rates: vec![UNKNOWN_RATE; n * n],
            row_known: vec![0; n],
            row_forwarded: vec![0; n],
        }
    }

    /// Rebuilds a matrix from raw counters (the serialized form),
    /// recomputing every cache.
    fn from_parts(n: usize, records: Vec<RepRecord>) -> Result<Self, String> {
        if records.len() != n * n {
            return Err(format!(
                "reputation matrix for {n} nodes needs {} records, got {}",
                n * n,
                records.len()
            ));
        }
        let mut m = ReputationMatrix {
            n,
            records,
            rates: vec![UNKNOWN_RATE; n * n],
            row_known: vec![0; n],
            row_forwarded: vec![0; n],
        };
        for o in 0..n {
            for s in 0..n {
                let i = o * n + s;
                let r = m.records[i];
                if r.requests > 0 {
                    m.rates[i] = f64::from(r.forwarded) / f64::from(r.requests);
                    m.row_known[o] += 1;
                    m.row_forwarded[o] += u64::from(r.forwarded);
                }
            }
        }
        Ok(m)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn idx(&self, observer: NodeId, subject: NodeId) -> usize {
        let (o, s) = (observer.index(), subject.index());
        debug_assert!(o < self.n && s < self.n, "node id out of range");
        o * self.n + s
    }

    /// The record `observer` holds about `subject`.
    #[inline]
    pub fn record(&self, observer: NodeId, subject: NodeId) -> RepRecord {
        self.records[self.idx(observer, subject)]
    }

    /// Records that `observer` saw `subject` forward a packet
    /// (`ps += 1`, `pf += 1`).
    ///
    /// # Panics
    /// Panics (debug) if observer == subject — nodes never rate themselves.
    #[inline]
    pub fn record_forward(&mut self, observer: NodeId, subject: NodeId) {
        debug_assert_ne!(observer, subject, "self-rating is a logic error");
        let o = observer.index();
        let i = self.idx(observer, subject);
        let r = &mut self.records[i];
        if r.requests == 0 {
            self.row_known[o] += 1;
        }
        r.requests += 1;
        r.forwarded += 1;
        self.rates[i] = f64::from(r.forwarded) / f64::from(r.requests);
        self.row_forwarded[o] += 1;
    }

    /// Records that `observer` saw (or was told about) `subject`
    /// discarding a packet (`ps += 1`).
    #[inline]
    pub fn record_drop(&mut self, observer: NodeId, subject: NodeId) {
        debug_assert_ne!(observer, subject, "self-rating is a logic error");
        let o = observer.index();
        let i = self.idx(observer, subject);
        let r = &mut self.records[i];
        if r.requests == 0 {
            self.row_known[o] += 1;
        }
        r.requests += 1;
        self.rates[i] = f64::from(r.forwarded) / f64::from(r.requests);
    }

    /// Forwarding rate of `subject` as known by `observer`; `None` when
    /// unknown.
    #[inline]
    pub fn rate(&self, observer: NodeId, subject: NodeId) -> Option<f64> {
        let i = self.idx(observer, subject);
        (self.records[i].requests > 0).then(|| self.rates[i])
    }

    /// Forwarding rate of `subject` as known by `observer`, with
    /// [`UNKNOWN_RATE`] standing in for unknown subjects — the hot-path
    /// lookup behind [`crate::paths::path_rating`]: one cached load, no
    /// division, no branch.
    #[inline]
    pub fn rate_or_unknown(&self, observer: NodeId, subject: NodeId) -> f64 {
        self.rates[self.idx(observer, subject)]
    }

    /// Everything a forwarding decision needs about `subject` in one
    /// indexed access: the rate (`None` when unknown) and the observed
    /// forwarded-packet count (§3.2's activity datum).
    #[inline]
    pub fn rate_and_forwarded(&self, observer: NodeId, subject: NodeId) -> (Option<f64>, u32) {
        let i = self.idx(observer, subject);
        let rec = self.records[i];
        ((rec.requests > 0).then(|| self.rates[i]), rec.forwarded)
    }

    /// `true` when `observer` has at least one observation about
    /// `subject`.
    #[inline]
    pub fn knows(&self, observer: NodeId, subject: NodeId) -> bool {
        self.record(observer, subject).requests > 0
    }

    /// Number of packets `observer` knows `subject` to have forwarded
    /// (the activity datum of §3.2).
    #[inline]
    pub fn forwarded_count(&self, observer: NodeId, subject: NodeId) -> u32 {
        self.record(observer, subject).forwarded
    }

    /// Mean forwarded-packet count over all nodes known to `observer`
    /// (the `av` of §3.2); `None` when the observer knows nobody.
    ///
    /// O(1): reads the incrementally maintained row aggregates instead
    /// of scanning the observer's row per forwarding decision.
    #[inline]
    pub fn mean_forwarded_of_known(&self, observer: NodeId) -> Option<f64> {
        let o = observer.index();
        let known = u64::from(self.row_known[o]);
        (known > 0).then(|| self.row_forwarded[o] as f64 / known as f64)
    }

    /// Number of subjects known to `observer`.
    #[inline]
    pub fn known_count(&self, observer: NodeId) -> usize {
        self.row_known[observer.index()] as usize
    }

    /// Merges externally supplied observation counts into
    /// `observer`'s record about `subject` — the entry point for
    /// second-hand reputation ([`crate::gossip`]).
    ///
    /// # Panics
    /// Panics if `forwarded > requests` (would corrupt the `pf <= ps`
    /// invariant) or (debug) if observer == subject.
    pub fn absorb(&mut self, observer: NodeId, subject: NodeId, requests: u32, forwarded: u32) {
        assert!(forwarded <= requests, "absorb would set pf > ps");
        debug_assert_ne!(observer, subject, "self-rating is a logic error");
        let o = observer.index();
        let i = self.idx(observer, subject);
        let r = &mut self.records[i];
        if r.requests == 0 && requests > 0 {
            self.row_known[o] += 1;
        }
        r.requests += requests;
        r.forwarded += forwarded;
        if r.requests > 0 {
            self.rates[i] = f64::from(r.forwarded) / f64::from(r.requests);
        }
        self.row_forwarded[o] += u64::from(forwarded);
    }

    /// Resets every record to unknown. Called at the start of each
    /// generation's evaluation (§4.4, Step 1: "Clear the memory
    /// (reputation/activity data) of all N players").
    pub fn clear(&mut self) {
        self.records.fill(RepRecord::default());
        self.rates.fill(UNKNOWN_RATE);
        self.row_known.fill(0);
        self.row_forwarded.fill(0);
    }

    /// Checks the structural invariants (used by tests and debug builds):
    /// `pf ≤ ps` everywhere, an all-zero diagonal, and derived caches
    /// (rates, row aggregates) bit-identical to a from-scratch rebuild.
    pub fn check_invariants(&self) -> Result<(), String> {
        for o in 0..self.n {
            let (mut known, mut forwarded) = (0u32, 0u64);
            for s in 0..self.n {
                let i = o * self.n + s;
                let r = self.records[i];
                if r.forwarded > r.requests {
                    return Err(format!("pf > ps for observer n{o} subject n{s}: {r:?}"));
                }
                if o == s && r != RepRecord::default() {
                    return Err(format!("non-empty self-record at n{o}"));
                }
                let expected_rate = if r.requests > 0 {
                    known += 1;
                    forwarded += u64::from(r.forwarded);
                    f64::from(r.forwarded) / f64::from(r.requests)
                } else {
                    UNKNOWN_RATE
                };
                if self.rates[i].to_bits() != expected_rate.to_bits() {
                    return Err(format!(
                        "stale rate cache for observer n{o} subject n{s}: {} vs {expected_rate}",
                        self.rates[i]
                    ));
                }
            }
            if self.row_known[o] != known || self.row_forwarded[o] != forwarded {
                return Err(format!(
                    "stale row aggregates for observer n{o}: known {} vs {known}, forwarded {} vs {forwarded}",
                    self.row_known[o], self.row_forwarded[o]
                ));
            }
        }
        Ok(())
    }
}

impl PartialEq for ReputationMatrix {
    /// Counters are the state; the caches are derived from them.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.records == other.records
    }
}

impl Eq for ReputationMatrix {}

/// The serialized shape of a [`ReputationMatrix`]: raw counters only,
/// caches rebuilt on deserialization.
#[derive(Serialize, Deserialize)]
struct MatrixRepr {
    n: usize,
    records: Vec<RepRecord>,
}

impl Serialize for ReputationMatrix {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        MatrixRepr {
            n: self.n,
            records: self.records.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for ReputationMatrix {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = MatrixRepr::deserialize(deserializer)?;
        ReputationMatrix::from_parts(repr.n, repr.records).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn fresh_matrix_is_all_unknown() {
        let m = ReputationMatrix::new(4);
        assert_eq!(m.len(), 4);
        assert!(!m.knows(id(0), id(1)));
        assert_eq!(m.rate(id(0), id(1)), None);
        assert_eq!(m.mean_forwarded_of_known(id(0)), None);
        assert_eq!(m.known_count(id(2)), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn forwarding_rate_matches_fig1b_example() {
        // Fig 1b: forwarding rate 0.95 -> 19 of 20 packets forwarded.
        let mut m = ReputationMatrix::new(2);
        for _ in 0..19 {
            m.record_forward(id(1), id(0));
        }
        m.record_drop(id(1), id(0));
        assert!((m.rate(id(1), id(0)).unwrap() - 0.95).abs() < 1e-12);
        assert!(m.knows(id(1), id(0)));
        assert!(!m.knows(id(0), id(1)), "reputation is directional");
        m.check_invariants().unwrap();
    }

    #[test]
    fn drops_only_give_rate_zero() {
        let mut m = ReputationMatrix::new(2);
        m.record_drop(id(0), id(1));
        m.record_drop(id(0), id(1));
        assert_eq!(m.rate(id(0), id(1)), Some(0.0));
        assert_eq!(m.forwarded_count(id(0), id(1)), 0);
    }

    #[test]
    fn mean_forwarded_counts_only_known_nodes() {
        let mut m = ReputationMatrix::new(4);
        // Node 0 knows node 1 (3 forwards) and node 2 (1 forward, 1 drop);
        // node 3 is unknown.
        for _ in 0..3 {
            m.record_forward(id(0), id(1));
        }
        m.record_forward(id(0), id(2));
        m.record_drop(id(0), id(2));
        assert_eq!(m.mean_forwarded_of_known(id(0)), Some(2.0));
        assert_eq!(m.known_count(id(0)), 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = ReputationMatrix::new(3);
        m.record_forward(id(0), id(1));
        m.record_drop(id(2), id(1));
        m.clear();
        assert_eq!(m, ReputationMatrix::new(3));
    }

    #[test]
    fn invariant_checker_catches_corruption() {
        let mut m = ReputationMatrix::new(2);
        m.record_forward(id(0), id(1));
        assert!(m.check_invariants().is_ok());
        // Corrupt: forwarded > requests.
        let mut bad = m.clone();
        // Reach in through serde to simulate corruption without exposing
        // mutable internals.
        let mut json: serde_json::Value = serde_json::to_value(&bad).unwrap();
        json["records"][1]["forwarded"] = serde_json::json!(5);
        bad = serde_json::from_value(json).unwrap();
        assert!(bad.check_invariants().is_err());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "self-rating")]
    fn self_rating_panics_in_debug() {
        let mut m = ReputationMatrix::new(2);
        m.record_forward(id(1), id(1));
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = ReputationMatrix::new(2);
        m.record_forward(id(0), id(1));
        let json = serde_json::to_string(&m).unwrap();
        let back: ReputationMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
