//! Activity levels (paper §3.2).
//!
//! Nodes that keep their radio in sleep mode cannot be distinguished from
//! nodes that temporarily left the network, so sleeping is invisible to
//! the reputation system. The paper therefore rewards *activity*: an
//! intermediate node classifies the packet's source as LO / MI / HI
//! active by comparing the number of packets the source is known to have
//! forwarded with the average over all known nodes (`av`):
//!
//! * within `[av − 0.2·av, av + 0.2·av]` → medium (MI),
//! * below that band → low (LO),
//! * above it → high (HI).

use crate::{NodeId, ReputationMatrix};
use serde::{Deserialize, Serialize};

/// A discrete activity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ActivityLevel {
    /// Below the medium band.
    Lo,
    /// Within ±band of the known-node average.
    Mi,
    /// Above the medium band.
    Hi,
}

impl ActivityLevel {
    /// All levels in ascending order.
    pub const ALL: [ActivityLevel; 3] = [ActivityLevel::Lo, ActivityLevel::Mi, ActivityLevel::Hi];

    /// Numeric value 0..=2 (LO..HI) — the column index inside a
    /// trust-level block of the 13-bit strategy (Fig. 1c).
    #[inline]
    pub fn value(self) -> u8 {
        match self {
            ActivityLevel::Lo => 0,
            ActivityLevel::Mi => 1,
            ActivityLevel::Hi => 2,
        }
    }

    /// Builds a level from its numeric value.
    ///
    /// # Panics
    /// Panics if `v > 2`.
    pub fn from_value(v: u8) -> Self {
        match v {
            0 => ActivityLevel::Lo,
            1 => ActivityLevel::Mi,
            2 => ActivityLevel::Hi,
            _ => panic!("activity level {v} out of range 0..=2"),
        }
    }
}

impl std::fmt::Display for ActivityLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ActivityLevel::Lo => "LO",
            ActivityLevel::Mi => "MI",
            ActivityLevel::Hi => "HI",
        })
    }
}

/// The activity classification rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityBands {
    /// Half-width of the medium band as a fraction of the average
    /// (the paper uses 0.2).
    pub band: f64,
    /// Level assigned when the observer has no data at all (vacuous
    /// average). The paper leaves this unspecified; MI is the neutral
    /// choice and is what we document in DESIGN.md §4.
    pub empty_default: ActivityLevel,
}

impl Default for ActivityBands {
    fn default() -> Self {
        ActivityBands::paper()
    }
}

impl ActivityBands {
    /// The paper's rule: ±20 % band, MI when no information exists.
    pub fn paper() -> Self {
        ActivityBands {
            band: 0.2,
            empty_default: ActivityLevel::Mi,
        }
    }

    /// Classifies a raw forwarded-count against a known-node average.
    #[inline]
    pub fn classify(&self, source_forwarded: f64, average: f64) -> ActivityLevel {
        let lo = average - self.band * average;
        let hi = average + self.band * average;
        if source_forwarded < lo {
            ActivityLevel::Lo
        } else if source_forwarded > hi {
            ActivityLevel::Hi
        } else {
            ActivityLevel::Mi
        }
    }

    /// Classifies a forwarded-count against an *optional* known-node
    /// average, applying [`ActivityBands::empty_default`] when the
    /// observer knows nobody — the single home of the §3.2 policy,
    /// shared by [`ActivityBands::level`] and the game crate's fused
    /// decision path.
    #[inline]
    pub fn classify_opt(&self, source_forwarded: f64, average: Option<f64>) -> ActivityLevel {
        match average {
            None => self.empty_default,
            Some(av) => self.classify(source_forwarded, av),
        }
    }

    /// Activity level of `source` as seen by `observer` through its
    /// reputation table (§3.2).
    ///
    /// The comparison value is the observer's `pf` count for the source
    /// (0 for an unknown source — the *trust* side separately handles
    /// unknowns via strategy bit 12).
    pub fn level(
        &self,
        matrix: &ReputationMatrix,
        observer: NodeId,
        source: NodeId,
    ) -> ActivityLevel {
        self.classify_opt(
            f64::from(matrix.forwarded_count(observer, source)),
            matrix.mean_forwarded_of_known(observer),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_edges_are_medium() {
        let b = ActivityBands::paper();
        // av = 10 -> band [8, 12].
        assert_eq!(b.classify(8.0, 10.0), ActivityLevel::Mi);
        assert_eq!(b.classify(12.0, 10.0), ActivityLevel::Mi);
        assert_eq!(b.classify(7.999, 10.0), ActivityLevel::Lo);
        assert_eq!(b.classify(12.001, 10.0), ActivityLevel::Hi);
        assert_eq!(b.classify(10.0, 10.0), ActivityLevel::Mi);
    }

    #[test]
    fn zero_average_makes_everything_mi_or_hi() {
        let b = ActivityBands::paper();
        assert_eq!(b.classify(0.0, 0.0), ActivityLevel::Mi);
        assert_eq!(b.classify(1.0, 0.0), ActivityLevel::Hi);
    }

    #[test]
    fn level_through_reputation_matrix() {
        let mut m = ReputationMatrix::new(4);
        let (obs, a, b, c) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        // a forwarded 10, b forwarded 2 -> av = 6, band [4.8, 7.2].
        for _ in 0..10 {
            m.record_forward(obs, a);
        }
        for _ in 0..2 {
            m.record_forward(obs, b);
        }
        let bands = ActivityBands::paper();
        assert_eq!(bands.level(&m, obs, a), ActivityLevel::Hi);
        assert_eq!(bands.level(&m, obs, b), ActivityLevel::Lo);
        // Unknown source compares as 0 forwards -> LO here.
        assert_eq!(bands.level(&m, obs, c), ActivityLevel::Lo);
    }

    #[test]
    fn empty_observer_uses_default() {
        let m = ReputationMatrix::new(2);
        let bands = ActivityBands::paper();
        assert_eq!(bands.level(&m, NodeId(0), NodeId(1)), ActivityLevel::Mi);
    }

    #[test]
    fn value_roundtrip_and_display() {
        for lvl in ActivityLevel::ALL {
            assert_eq!(ActivityLevel::from_value(lvl.value()), lvl);
        }
        assert_eq!(ActivityLevel::Lo.to_string(), "LO");
        assert_eq!(ActivityLevel::Mi.to_string(), "MI");
        assert_eq!(ActivityLevel::Hi.to_string(), "HI");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_value_rejects_3() {
        let _ = ActivityLevel::from_value(3);
    }

    #[test]
    fn wider_band_absorbs_more() {
        let wide = ActivityBands {
            band: 0.5,
            empty_default: ActivityLevel::Mi,
        };
        assert_eq!(wide.classify(6.0, 10.0), ActivityLevel::Mi);
        assert_eq!(
            ActivityBands::paper().classify(6.0, 10.0),
            ActivityLevel::Lo
        );
    }
}
