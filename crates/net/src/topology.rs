//! Geometric topology extension (not part of the paper's model).
//!
//! The paper abstracts mobility away by drawing intermediates uniformly at
//! random ("simulates a network with a high mobility level", §4.1). This
//! module provides the concrete thing being abstracted: nodes moving over
//! a unit square under the random-waypoint model, a disc radio range, and
//! BFS route discovery. It lets users of the library test how sensitive
//! the evolved strategies are to the random-relay abstraction (see
//! DESIGN.md, substitution 1).

use crate::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A position in the unit square (coordinates in meters when `side` ≠ 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Random-waypoint mobility parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointParams {
    /// Side length of the square arena (m).
    pub side: f64,
    /// Lower bound of the uniform speed range (m/s).
    pub speed_min: f64,
    /// Upper bound of the uniform speed range (m/s).
    pub speed_max: f64,
    /// Pause time at each waypoint (s).
    pub pause: f64,
}

impl Default for WaypointParams {
    fn default() -> Self {
        // A common MANET simulation setup: 1000 m arena, pedestrian-to-
        // vehicular speeds, short pauses.
        WaypointParams {
            side: 1000.0,
            speed_min: 1.0,
            speed_max: 20.0,
            pause: 5.0,
        }
    }
}

/// Per-node mobility state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct NodeMotion {
    pos: Point,
    target: Point,
    speed: f64,
    pause_left: f64,
}

/// A mobile network of `n` nodes under random waypoint motion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobileNetwork {
    params: WaypointParams,
    /// Radio range (m); two nodes are neighbors iff within this distance.
    radio_range: f64,
    nodes: Vec<NodeMotion>,
}

impl MobileNetwork {
    /// Creates a network of `n` nodes at uniform random positions.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        n: usize,
        params: WaypointParams,
        radio_range: f64,
    ) -> Self {
        assert!(radio_range > 0.0, "radio range must be positive");
        assert!(
            params.speed_min > 0.0 && params.speed_max >= params.speed_min,
            "bad speed range"
        );
        let nodes = (0..n)
            .map(|_| {
                let pos = Point {
                    x: rng.gen::<f64>() * params.side,
                    y: rng.gen::<f64>() * params.side,
                };
                NodeMotion {
                    pos,
                    target: pos,
                    speed: 0.0,
                    pause_left: 0.0,
                }
            })
            .collect();
        MobileNetwork {
            params,
            radio_range,
            nodes,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current position of a node.
    pub fn position(&self, node: NodeId) -> Point {
        self.nodes[node.index()].pos
    }

    /// Advances the mobility model by `dt` seconds.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) {
        let p = self.params;
        for m in &mut self.nodes {
            let mut remaining = dt;
            while remaining > 0.0 {
                if m.pause_left > 0.0 {
                    let t = m.pause_left.min(remaining);
                    m.pause_left -= t;
                    remaining -= t;
                    continue;
                }
                let dist_to_target = m.pos.distance(&m.target);
                if dist_to_target < 1e-9 || m.speed == 0.0 {
                    // Pick a fresh waypoint and speed; pause first.
                    m.target = Point {
                        x: rng.gen::<f64>() * p.side,
                        y: rng.gen::<f64>() * p.side,
                    };
                    m.speed = rng.gen_range(p.speed_min..=p.speed_max);
                    m.pause_left = p.pause;
                    continue;
                }
                let travel = (m.speed * remaining).min(dist_to_target);
                let f = travel / dist_to_target;
                m.pos.x += (m.target.x - m.pos.x) * f;
                m.pos.y += (m.target.y - m.pos.y) * f;
                remaining -= travel / m.speed;
                if m.pos.distance(&m.target) < 1e-9 {
                    m.speed = 0.0; // arrive; next loop picks a waypoint
                }
            }
        }
    }

    /// `true` when two nodes are within radio range.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        a != b
            && self.nodes[a.index()]
                .pos
                .distance(&self.nodes[b.index()].pos)
                <= self.radio_range
    }

    /// All neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&o| self.connected(node, o))
            .collect()
    }

    /// BFS shortest relay chain from `src` to `dst` (exclusive of both),
    /// or `None` when unreachable. `max_hops` bounds the search (the
    /// paper's model caps paths at 10 hops).
    pub fn shortest_route(&self, src: NodeId, dst: NodeId, max_hops: usize) -> Option<Vec<NodeId>> {
        self.route_avoiding(src, dst, max_hops, &[])
    }

    /// BFS route that avoids the `banned` relays — used to discover
    /// *alternate* paths by banning the relays of already-found routes.
    pub fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        max_hops: usize,
        banned: &[NodeId],
    ) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        if src == dst || src.index() >= n || dst.index() >= n {
            return None;
        }
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if dist[u.index()] >= max_hops {
                continue;
            }
            for v in 0..n as u32 {
                let v = NodeId(v);
                if dist[v.index()] != usize::MAX || !self.connected(u, v) {
                    continue;
                }
                if v != dst && banned.contains(&v) {
                    continue;
                }
                dist[v.index()] = dist[u.index()] + 1;
                prev[v.index()] = Some(u);
                if v == dst {
                    // Reconstruct relay chain (exclusive of endpoints).
                    let mut chain = Vec::new();
                    let mut cur = prev[dst.index()];
                    while let Some(c) = cur {
                        if c == src {
                            break;
                        }
                        chain.push(c);
                        cur = prev[c.index()];
                    }
                    chain.reverse();
                    return Some(chain);
                }
                queue.push_back(v);
            }
        }
        None
    }

    /// Up to `k` relay-disjoint routes from `src` to `dst`, shortest
    /// first. Mirrors the paper's "number of available alternate paths"
    /// concept on a concrete topology.
    pub fn disjoint_routes(
        &self,
        src: NodeId,
        dst: NodeId,
        max_hops: usize,
        k: usize,
    ) -> Vec<Vec<NodeId>> {
        let mut banned: Vec<NodeId> = Vec::new();
        let mut routes = Vec::new();
        for _ in 0..k {
            match self.route_avoiding(src, dst, max_hops, &banned) {
                Some(r) => {
                    banned.extend_from_slice(&r);
                    routes.push(r);
                }
                None => break,
            }
        }
        routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// A hand-placed 4-node line topology: 0 - 1 - 2 - 3.
    fn line() -> MobileNetwork {
        let mut net = MobileNetwork::new(&mut rng(0), 4, WaypointParams::default(), 110.0);
        for (i, x) in [0.0, 100.0, 200.0, 300.0].into_iter().enumerate() {
            net.nodes[i].pos = Point { x, y: 0.0 };
            net.nodes[i].target = net.nodes[i].pos;
        }
        net
    }

    #[test]
    fn connectivity_is_symmetric_and_irreflexive() {
        let net = line();
        assert!(net.connected(NodeId(0), NodeId(1)));
        assert!(net.connected(NodeId(1), NodeId(0)));
        assert!(!net.connected(NodeId(0), NodeId(2)));
        assert!(!net.connected(NodeId(2), NodeId(2)));
    }

    #[test]
    fn neighbors_on_the_line() {
        let net = line();
        assert_eq!(net.neighbors(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(net.neighbors(NodeId(1)), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn shortest_route_walks_the_line() {
        let net = line();
        let r = net.shortest_route(NodeId(0), NodeId(3), 10).unwrap();
        assert_eq!(r, vec![NodeId(1), NodeId(2)]);
        // Direct neighbors need no relays.
        assert_eq!(
            net.shortest_route(NodeId(0), NodeId(1), 10).unwrap(),
            vec![]
        );
    }

    #[test]
    fn hop_limit_is_enforced() {
        let net = line();
        // 0 -> 3 needs 3 hops; a 2-hop cap makes it unreachable.
        assert!(net.shortest_route(NodeId(0), NodeId(3), 2).is_none());
        assert!(net.shortest_route(NodeId(0), NodeId(3), 3).is_some());
    }

    #[test]
    fn disjoint_routes_ban_reused_relays() {
        // Diamond: 0 - {1,2} - 3.
        let mut net = MobileNetwork::new(&mut rng(0), 4, WaypointParams::default(), 115.0);
        net.nodes[0].pos = Point { x: 0.0, y: 50.0 };
        net.nodes[1].pos = Point { x: 100.0, y: 0.0 };
        net.nodes[2].pos = Point { x: 100.0, y: 100.0 };
        net.nodes[3].pos = Point { x: 200.0, y: 50.0 };
        for m in &mut net.nodes {
            m.target = m.pos;
        }
        let routes = net.disjoint_routes(NodeId(0), NodeId(3), 5, 3);
        assert_eq!(routes.len(), 2);
        assert_ne!(routes[0], routes[1]);
        let all: Vec<NodeId> = routes.iter().flatten().copied().collect();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "routes share a relay");
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = line();
        net.nodes[3].pos = Point {
            x: 9000.0,
            y: 9000.0,
        };
        assert!(net.shortest_route(NodeId(0), NodeId(3), 10).is_none());
        assert!(net.shortest_route(NodeId(0), NodeId(0), 10).is_none());
    }

    #[test]
    fn step_keeps_nodes_in_arena() {
        let params = WaypointParams {
            side: 500.0,
            ..WaypointParams::default()
        };
        let mut r = rng(77);
        let mut net = MobileNetwork::new(&mut r, 20, params, 100.0);
        for _ in 0..200 {
            net.step(&mut r, 1.0);
            for i in 0..net.len() {
                let p = net.position(NodeId(i as u32));
                assert!((0.0..=500.0).contains(&p.x), "x={}", p.x);
                assert!((0.0..=500.0).contains(&p.y), "y={}", p.y);
            }
        }
    }

    #[test]
    fn step_actually_moves_nodes() {
        let mut r = rng(3);
        let mut net = MobileNetwork::new(&mut r, 5, WaypointParams::default(), 100.0);
        let before: Vec<Point> = (0..5).map(|i| net.position(NodeId(i))).collect();
        // Enough time to exhaust the initial pause and travel.
        for _ in 0..50 {
            net.step(&mut r, 1.0);
        }
        let moved = (0..5).any(|i| {
            let p = net.position(NodeId(i));
            p.distance(&before[i as usize]) > 1.0
        });
        assert!(moved, "no node moved after 50 s");
    }

    #[test]
    fn determinism_under_seed() {
        let build = |seed| {
            let mut r = rng(seed);
            let mut net = MobileNetwork::new(&mut r, 10, WaypointParams::default(), 150.0);
            for _ in 0..20 {
                net.step(&mut r, 0.5);
            }
            (0..10).map(|i| net.position(NodeId(i))).collect::<Vec<_>>()
        };
        assert_eq!(build(5), build(5));
    }
}
