//! The watchdog reputation-update rule (paper §3.1, Fig. 1a).
//!
//! Every node on a source route monitors its next hop; when a packet is
//! discarded the observing node sends an alert back toward the source. The
//! net effect, shown in Fig. 1a for the route `A → B → C → D → E` with `D`
//! dropping, is:
//!
//! * `A` updates reputation about `B`, `C`, `D`;
//! * `B` updates about `C`, `D`;
//! * `C` updates about `B`, `D`;
//! * `D` (the dropper) and `E` (which never received anything) update
//!   nothing.
//!
//! Generalized rule implemented here:
//!
//! * **success** — raters are the source and every intermediate; subjects
//!   are every intermediate (each forwarded once); every rater records a
//!   *forward* for every subject other than itself.
//! * **drop at index k** — raters are the source and the intermediates
//!   *before* the dropper; subjects are the intermediates up to and
//!   including the dropper (the only nodes whose behavior was exercised);
//!   forwarders get a *forward* record, the dropper a *drop* record.
//!   Intermediates after the dropper never saw the packet: no updates.

use crate::{NodeId, ReputationMatrix};
use serde::{Deserialize, Serialize};

/// Outcome of routing one packet along a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteOutcome {
    /// Every intermediate forwarded; the packet reached the destination.
    Delivered,
    /// The intermediate at this index (into the intermediate list)
    /// discarded the packet.
    DroppedAt(usize),
}

impl RouteOutcome {
    /// `true` for [`RouteOutcome::Delivered`].
    pub fn delivered(self) -> bool {
        matches!(self, RouteOutcome::Delivered)
    }

    /// Number of intermediates that actually forwarded the packet.
    pub fn forwards(self, intermediate_count: usize) -> usize {
        match self {
            RouteOutcome::Delivered => intermediate_count,
            RouteOutcome::DroppedAt(k) => k,
        }
    }

    /// Number of intermediates that received (and decided on) the packet.
    pub fn deciders(self, intermediate_count: usize) -> usize {
        match self {
            RouteOutcome::Delivered => intermediate_count,
            RouteOutcome::DroppedAt(k) => k + 1,
        }
    }
}

/// Applies the Fig. 1a update rule for one routed packet.
///
/// `source` originated the packet; `intermediates` is the relay list in
/// order. The destination is not a game participant and is deliberately
/// not an argument.
///
/// # Panics
/// Panics if `outcome` is `DroppedAt(k)` with `k >= intermediates.len()`.
pub fn apply_route_outcome(
    matrix: &mut ReputationMatrix,
    source: NodeId,
    intermediates: &[NodeId],
    outcome: RouteOutcome,
) {
    let deciders = match outcome {
        RouteOutcome::Delivered => intermediates.len(),
        RouteOutcome::DroppedAt(k) => {
            assert!(k < intermediates.len(), "drop index {k} out of range");
            k + 1
        }
    };
    let forwards = outcome.forwards(intermediates.len());

    // Raters: the source plus every intermediate that *forwarded* (on a
    // drop, the dropper does not update; on success everyone does).
    let rater_count = forwards;
    let subjects = &intermediates[..deciders];

    let mut rate = |rater: NodeId| {
        for (j, &subject) in subjects.iter().enumerate() {
            if subject == rater {
                continue;
            }
            if j < forwards {
                matrix.record_forward(rater, subject);
            } else {
                matrix.record_drop(rater, subject);
            }
        }
    };

    rate(source);
    for &r in &intermediates[..rater_count] {
        rate(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    /// Reproduces Fig. 1a: A(0) -> B(1) C(2) D(3) -> E, D drops.
    #[test]
    fn fig_1a_drop_pattern() {
        let mut m = ReputationMatrix::new(5);
        let inter = ids(&[1, 2, 3]);
        apply_route_outcome(&mut m, NodeId(0), &inter, RouteOutcome::DroppedAt(2));
        m.check_invariants().unwrap();

        // A knows about B, C (forwards) and D (drop).
        assert_eq!(m.rate(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(m.rate(NodeId(0), NodeId(2)), Some(1.0));
        assert_eq!(m.rate(NodeId(0), NodeId(3)), Some(0.0));
        // B knows about C and D.
        assert_eq!(m.rate(NodeId(1), NodeId(2)), Some(1.0));
        assert_eq!(m.rate(NodeId(1), NodeId(3)), Some(0.0));
        // C knows about B and D.
        assert_eq!(m.rate(NodeId(2), NodeId(1)), Some(1.0));
        assert_eq!(m.rate(NodeId(2), NodeId(3)), Some(0.0));
        // The dropper D updates nothing (matches the figure).
        assert!(!m.knows(NodeId(3), NodeId(1)));
        assert!(!m.knows(NodeId(3), NodeId(2)));
        // Nobody learned anything about the source or destination.
        for o in 0..5u32 {
            assert!(!m.knows(NodeId(o), NodeId(0)));
            assert!(!m.knows(NodeId(o), NodeId(4)));
        }
    }

    #[test]
    fn successful_delivery_updates_everyone_about_every_intermediate() {
        let mut m = ReputationMatrix::new(5);
        let inter = ids(&[1, 2, 3]);
        apply_route_outcome(&mut m, NodeId(0), &inter, RouteOutcome::Delivered);
        m.check_invariants().unwrap();
        let raters = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        for r in raters {
            for &s in &inter {
                if r == s {
                    continue;
                }
                assert_eq!(m.rate(r, s), Some(1.0), "rater {r} subject {s}");
            }
        }
    }

    #[test]
    fn first_hop_drop_only_informs_source() {
        let mut m = ReputationMatrix::new(4);
        let inter = ids(&[1, 2]);
        apply_route_outcome(&mut m, NodeId(0), &inter, RouteOutcome::DroppedAt(0));
        assert_eq!(m.rate(NodeId(0), NodeId(1)), Some(0.0));
        // Node 2 never received the packet: no records at all about it or by it.
        assert!(!m.knows(NodeId(0), NodeId(2)));
        assert!(!m.knows(NodeId(2), NodeId(1)));
        // Dropper learned nothing.
        assert!(!m.knows(NodeId(1), NodeId(2)));
    }

    #[test]
    fn single_hop_route_success() {
        let mut m = ReputationMatrix::new(3);
        apply_route_outcome(&mut m, NodeId(0), &ids(&[1]), RouteOutcome::Delivered);
        assert_eq!(m.rate(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(m.known_count(NodeId(1)), 0);
    }

    #[test]
    fn outcome_accessors() {
        assert!(RouteOutcome::Delivered.delivered());
        assert!(!RouteOutcome::DroppedAt(0).delivered());
        assert_eq!(RouteOutcome::Delivered.forwards(3), 3);
        assert_eq!(RouteOutcome::DroppedAt(1).forwards(3), 1);
        assert_eq!(RouteOutcome::Delivered.deciders(3), 3);
        assert_eq!(RouteOutcome::DroppedAt(1).deciders(3), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn drop_index_out_of_range_panics() {
        let mut m = ReputationMatrix::new(3);
        apply_route_outcome(&mut m, NodeId(0), &ids(&[1]), RouteOutcome::DroppedAt(1));
    }

    #[test]
    fn repeated_games_accumulate_rates() {
        let mut m = ReputationMatrix::new(3);
        let inter = ids(&[1]);
        // 3 forwards, 1 drop -> rate 0.75 from the source's perspective.
        for _ in 0..3 {
            apply_route_outcome(&mut m, NodeId(0), &inter, RouteOutcome::Delivered);
        }
        apply_route_outcome(&mut m, NodeId(0), &inter, RouteOutcome::DroppedAt(0));
        assert_eq!(m.rate(NodeId(0), NodeId(1)), Some(0.75));
    }
}
