//! Per-state energy accounting (paper §1, ref \[4\] Feeney & Nilsson).
//!
//! The paper's motivation for the *activity* dimension is energy: "The
//! power consumption [of sleep mode] is about 98 % lower comparing to the
//! one in the idle mode", so a node can free-ride invisibly by sleeping.
//! This module provides the analytic energy model used by the extended
//! metrics and the `energy_accounting` example. Power figures default to
//! WaveLAN-class measurements with sleep pinned at 2 % of idle to match
//! the paper's claim (DESIGN.md, substitution 2).

use serde::{Deserialize, Serialize};

/// Radio states a node's network interface can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioState {
    /// Interface powered down; the node is invisible to the network.
    Sleep,
    /// Listening to the channel, ready to receive.
    Idle,
    /// Receiving a packet.
    Receive,
    /// Transmitting a packet.
    Transmit,
}

/// Power draw per radio state, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Draw while sleeping.
    pub sleep_mw: f64,
    /// Draw while idle-listening.
    pub idle_mw: f64,
    /// Draw while receiving a packet.
    pub receive_mw: f64,
    /// Draw while transmitting a packet.
    pub transmit_mw: f64,
}

impl Default for PowerProfile {
    fn default() -> Self {
        PowerProfile::wavelan()
    }
}

impl PowerProfile {
    /// WaveLAN-class figures (Feeney & Nilsson report idle ≈ 843 mW,
    /// rx ≈ 1013 mW, tx ≈ 1327 mW for the 2.4 GHz card); sleep is set to
    /// 2 % of idle per the paper's §1 claim.
    pub fn wavelan() -> Self {
        PowerProfile {
            sleep_mw: 843.0 * 0.02,
            idle_mw: 843.0,
            receive_mw: 1013.0,
            transmit_mw: 1327.0,
        }
    }

    /// Power draw for a state, in milliwatts.
    pub fn power_mw(&self, state: RadioState) -> f64 {
        match state {
            RadioState::Sleep => self.sleep_mw,
            RadioState::Idle => self.idle_mw,
            RadioState::Receive => self.receive_mw,
            RadioState::Transmit => self.transmit_mw,
        }
    }

    /// Ratio of sleep to idle power (the paper cites ≈ 0.02).
    pub fn sleep_fraction(&self) -> f64 {
        self.sleep_mw / self.idle_mw
    }

    /// Validates the physically expected ordering
    /// `sleep < idle ≤ receive ≤ transmit` and positivity.
    pub fn validate(&self) -> Result<(), String> {
        if self.sleep_mw <= 0.0 {
            return Err("sleep power must be positive".into());
        }
        if !(self.sleep_mw < self.idle_mw
            && self.idle_mw <= self.receive_mw
            && self.receive_mw <= self.transmit_mw)
        {
            return Err(format!(
                "expected sleep < idle <= receive <= transmit, got {self:?}"
            ));
        }
        Ok(())
    }
}

/// Per-node energy ledger.
///
/// The simulation is event-based rather than time-stepped, so the ledger
/// accounts in two currencies: *time* spent in idle/sleep (seconds) and
/// *events* (packet transmissions / receptions / forwards, each costing a
/// fixed per-packet airtime).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Seconds spent listening idle.
    pub idle_s: f64,
    /// Seconds spent asleep.
    pub sleep_s: f64,
    /// Packets transmitted (origination or forward: one tx each).
    pub tx_packets: u64,
    /// Packets received (forwarding requests that arrived: one rx each).
    pub rx_packets: u64,
}

/// Per-packet airtime assumed by [`EnergyLedger::total_mj`]; 1500-byte
/// frame at 2 Mbit/s ≈ 6 ms.
pub const PACKET_AIRTIME_S: f64 = 0.006;

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts an amount of idle listening time.
    pub fn add_idle(&mut self, seconds: f64) {
        self.idle_s += seconds;
    }

    /// Accounts an amount of sleep time.
    pub fn add_sleep(&mut self, seconds: f64) {
        self.sleep_s += seconds;
    }

    /// Accounts one received packet.
    pub fn add_rx(&mut self) {
        self.rx_packets += 1;
    }

    /// Accounts one transmitted packet.
    pub fn add_tx(&mut self) {
        self.tx_packets += 1;
    }

    /// Accounts one forward: a reception followed by a retransmission.
    pub fn add_forward(&mut self) {
        self.add_rx();
        self.add_tx();
    }

    /// Accounts a *discard*: the packet was received but not retransmitted.
    pub fn add_discard(&mut self) {
        self.add_rx();
    }

    /// Total energy in millijoules under `profile`.
    pub fn total_mj(&self, profile: &PowerProfile) -> f64 {
        self.idle_s * profile.idle_mw
            + self.sleep_s * profile.sleep_mw
            + self.tx_packets as f64 * PACKET_AIRTIME_S * profile.transmit_mw
            + self.rx_packets as f64 * PACKET_AIRTIME_S * profile.receive_mw
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.idle_s += other.idle_s;
        self.sleep_s += other.sleep_s;
        self.tx_packets += other.tx_packets;
        self.rx_packets += other.rx_packets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelan_profile_matches_paper_sleep_claim() {
        let p = PowerProfile::wavelan();
        p.validate().unwrap();
        // "about 98% lower" -> sleep/idle = 2%.
        assert!((p.sleep_fraction() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn power_lookup_by_state() {
        let p = PowerProfile::wavelan();
        assert_eq!(p.power_mw(RadioState::Idle), 843.0);
        assert_eq!(p.power_mw(RadioState::Transmit), 1327.0);
        assert_eq!(p.power_mw(RadioState::Receive), 1013.0);
        assert!(p.power_mw(RadioState::Sleep) < p.power_mw(RadioState::Idle));
    }

    #[test]
    fn validate_rejects_nonphysical_profiles() {
        let bad = PowerProfile {
            sleep_mw: 900.0,
            ..PowerProfile::wavelan()
        };
        assert!(bad.validate().is_err());
        let bad = PowerProfile {
            sleep_mw: 0.0,
            ..PowerProfile::wavelan()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn sleeping_beats_idling() {
        let p = PowerProfile::wavelan();
        let mut idle = EnergyLedger::new();
        idle.add_idle(100.0);
        let mut asleep = EnergyLedger::new();
        asleep.add_sleep(100.0);
        assert!(asleep.total_mj(&p) < idle.total_mj(&p) * 0.03);
    }

    #[test]
    fn forwarding_costs_rx_plus_tx() {
        let p = PowerProfile::wavelan();
        let mut fwd = EnergyLedger::new();
        fwd.add_forward();
        let mut drop = EnergyLedger::new();
        drop.add_discard();
        assert_eq!(fwd.tx_packets, 1);
        assert_eq!(fwd.rx_packets, 1);
        assert_eq!(drop.tx_packets, 0);
        // Discarding saves exactly the transmit energy.
        let diff = fwd.total_mj(&p) - drop.total_mj(&p);
        assert!((diff - PACKET_AIRTIME_S * p.transmit_mw).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyLedger::new();
        a.add_idle(1.0);
        a.add_tx();
        let mut b = EnergyLedger::new();
        b.add_sleep(2.0);
        b.add_forward();
        a.merge(&b);
        assert_eq!(a.idle_s, 1.0);
        assert_eq!(a.sleep_s, 2.0);
        assert_eq!(a.tx_packets, 2);
        assert_eq!(a.rx_packets, 1);
    }

    #[test]
    fn ledger_energy_is_linear() {
        let p = PowerProfile::wavelan();
        let mut l = EnergyLedger::new();
        l.add_idle(10.0);
        let e1 = l.total_mj(&p);
        l.add_idle(10.0);
        assert!((l.total_mj(&p) - 2.0 * e1).abs() < 1e-9);
    }
}
